"""Setuptools shim.

All package metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works on environments without the ``wheel``
package (offline boxes where ``pip install -e .`` cannot build a wheel).
"""

from setuptools import setup

setup()
