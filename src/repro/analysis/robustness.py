"""Robustness to incorrect input (paper §8 future work).

The paper leaves "robustness to incorrect input" unexplored.  This
extension measures it directly on the simulators: training labels are
flipped at increasing rates and each platform's F-score degradation is
recorded.  The interesting question mirrors the paper's complexity
thesis — do high-control platforms (whose optimized configurations fit
harder) degrade *faster* under label noise than conservative defaults?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controls import Configuration
from repro.datasets.corpus import Dataset
from repro.exceptions import ReproError
from repro.learn.metrics import f_score
from repro.learn.validation import check_random_state
from repro.platforms.base import MLaaSPlatform

__all__ = ["NoiseCurve", "label_noise_curve", "degradation_slope"]


@dataclass
class NoiseCurve:
    """F-score of one platform configuration vs training label noise."""

    platform: str
    dataset: str
    noise_rates: list = field(default_factory=list)
    f_scores: list = field(default_factory=list)
    failures: list = field(default_factory=list)  # (noise rate, error message)

    def degradation(self) -> float:
        """Clean-label F-score minus the worst noisy F-score."""
        if not self.f_scores:
            return float("nan")
        return float(self.f_scores[0] - min(self.f_scores))


def _flip_labels(y: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    if rate <= 0.0:
        return y
    y = y.copy()
    classes = np.unique(y)
    flips = rng.random(y.shape[0]) < rate
    # Binary flip: swap to the other class.
    y[flips] = np.where(y[flips] == classes[0], classes[1], classes[0])
    return y


def label_noise_curve(
    platform: MLaaSPlatform,
    dataset: Dataset,
    configuration: Configuration | None = None,
    noise_rates=(0.0, 0.1, 0.2, 0.3, 0.4),
    split_seed: int = 7,
    random_state=0,
) -> NoiseCurve:
    """Measure a platform's F-score as training labels are corrupted.

    Test labels stay clean — we measure how noise *in training data*
    propagates to deployed-model quality, the situation a researcher with
    an imperfect ground-truth pipeline faces.
    """
    rng = check_random_state(random_state)
    split = dataset.split(random_state=split_seed)
    configuration = configuration or Configuration.make()
    curve = NoiseCurve(platform=platform.name, dataset=dataset.name)
    for rate in noise_rates:
        y_noisy = _flip_labels(split.y_train, float(rate), rng)
        if len(np.unique(y_noisy)) < 2:
            continue
        dataset_id = platform.upload_dataset(split.X_train, y_noisy)
        try:
            model_id = platform.create_model(
                dataset_id,
                classifier=configuration.classifier,
                params=configuration.params_dict or None,
                feature_selection=configuration.feature_selection,
            )
            predictions = platform.batch_predict(model_id, split.X_test)
            score = f_score(split.y_test, predictions)
        except ReproError as exc:
            # A failed job scores 0 — the deployed model is unusable — but
            # the failure is kept visible on the curve, not swallowed.
            curve.failures.append((float(rate), f"{type(exc).__name__}: {exc}"))
            score = 0.0
        finally:
            platform.delete_dataset(dataset_id)
        curve.noise_rates.append(float(rate))
        curve.f_scores.append(float(score))
    return curve


def degradation_slope(curve: NoiseCurve) -> float:
    """Least-squares slope of F-score against noise rate (per unit noise).

    More negative = less robust.  NaN when the curve has < 2 points.
    """
    if len(curve.noise_rates) < 2:
        return float("nan")
    slope = np.polyfit(curve.noise_rates, curve.f_scores, 1)[0]
    return float(slope)
