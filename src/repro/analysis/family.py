"""Classifier-family inference (§6.2, Figs 11 & 12).

The paper trains, *per dataset*, a meta-classifier (a Random Forest) that
predicts whether an ML experiment used a linear or non-linear classifier,
from two observables only: aggregate performance metrics and the
predicted labels on the held-out test set.  Datasets whose meta-classifier
validates at F > 0.95 become probes that are then applied to the
black-box platforms to infer their hidden classifier choices.

This module reproduces that pipeline end to end:

1. :func:`collect_family_observations` sweeps the classifier-exposing
   platforms, recording (feature vector, family label) per experiment.
2. :class:`FamilyPredictor` trains/validates/tests the per-dataset meta
   Random Forest.
3. :func:`infer_blackbox_families` applies qualified predictors to
   Google/ABM (or any black box) and tallies linear vs non-linear picks.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.config_space import enumerate_configurations
from repro.core.controls import Configuration
from repro.core.runner import ExperimentRunner
from repro.datasets.corpus import Dataset
from repro.exceptions import ReproError, ValidationError
from repro.learn import LINEAR_FAMILY, NONLINEAR_FAMILY
from repro.learn.ensemble import RandomForestClassifier
from repro.learn.metrics import classification_summary, f_score
from repro.learn.model_selection import cross_val_score, train_test_split
from repro.learn.validation import check_random_state
from repro.platforms.base import MLaaSPlatform

__all__ = [
    "family_of",
    "FamilyObservation",
    "collect_family_observations",
    "FamilyPredictor",
    "train_family_predictors",
    "infer_blackbox_families",
    "BlackBoxFamilyReport",
]

_log = logging.getLogger(__name__)


def family_of(classifier_abbr: str) -> str:
    """Map a classifier abbreviation to its Table 5 family."""
    if classifier_abbr in LINEAR_FAMILY:
        return "linear"
    if classifier_abbr in NONLINEAR_FAMILY:
        return "nonlinear"
    raise ValidationError(f"unknown classifier {classifier_abbr!r}")


@dataclass(frozen=True)
class FamilyObservation:
    """One labelled training sample for the meta-classifier."""

    dataset: str
    platform: str
    classifier: str
    family: str             # "linear" / "nonlinear"
    features: np.ndarray    # metrics + predicted labels


def _observation_features(y_test: np.ndarray, predictions: np.ndarray) -> np.ndarray:
    """Paper features: aggregated metrics + the predicted labels."""
    summary = classification_summary(y_test, predictions)
    classes = np.unique(y_test)
    label01 = (np.asarray(predictions) == classes[-1]).astype(float)
    return np.concatenate([
        [summary.f_score, summary.precision, summary.recall, summary.accuracy],
        label01,
    ])


def collect_family_observations(
    runner: ExperimentRunner,
    platforms: list[MLaaSPlatform],
    datasets: list[Dataset],
    max_configs_per_classifier: int = 4,
) -> dict[str, list[FamilyObservation]]:
    """Sweep classifier-exposing platforms, recording labelled samples.

    Only platforms with user classifier control contribute (the paper
    uses Microsoft, BigML, PredictionIO and the local library — the
    platforms whose classifier ground truth is known).
    """
    observations: dict[str, list[FamilyObservation]] = {d.name: [] for d in datasets}
    n_failed = 0
    for platform in platforms:
        if not platform.controls.classifiers:
            continue
        configurations = _configs_by_classifier(
            platform, max_configs_per_classifier
        )
        for dataset in datasets:
            for configuration in configurations:
                try:
                    y_test, predictions = runner.predictions_for(
                        platform, dataset, configuration
                    )
                except ReproError as exc:
                    n_failed += 1
                    _log.debug(
                        "family sweep: %s on %s with %s failed: %s",
                        platform.name, dataset.name, configuration, exc,
                    )
                    continue
                if len(np.unique(predictions)) < 2:
                    # A model collapsed to one class carries no family
                    # signal — its predictions are identical whether the
                    # underlying classifier was linear or not.
                    continue
                observations[dataset.name].append(FamilyObservation(
                    dataset=dataset.name,
                    platform=platform.name,
                    classifier=configuration.classifier,
                    family=family_of(configuration.classifier),
                    features=_observation_features(y_test, predictions),
                ))
    if n_failed:
        _log.info("family sweep dropped %d failed experiment(s)", n_failed)
    return observations


def _configs_by_classifier(
    platform: MLaaSPlatform, max_per_classifier: int
) -> list[Configuration]:
    by_classifier: dict[str, list[Configuration]] = {}
    for configuration in enumerate_configurations(
        platform, para_grid="single_axis", include_feat=False
    ):
        bucket = by_classifier.setdefault(configuration.classifier, [])
        if len(bucket) < max_per_classifier:
            bucket.append(configuration)
    return [c for bucket in by_classifier.values() for c in bucket]


@dataclass
class FamilyPredictor:
    """Per-dataset meta Random Forest predicting the classifier family."""

    dataset: str
    validation_f_score: float = 0.0
    test_f_score: float = 0.0
    model: RandomForestClassifier | None = None
    feature_length: int = 0
    classes: tuple = ("linear", "nonlinear")
    qualification_threshold: float = 0.95
    failure_reason: str | None = None

    @property
    def qualified(self) -> bool:
        """Paper criterion: validation F-score above the threshold.

        The paper uses 0.95, estimated from thousands of experiments per
        dataset.  At reduced observation counts the cross-validated
        estimate is noisy and downward-biased, so small-scale runs may
        lower ``qualification_threshold`` (the benches use 0.9 under
        ``REPRO_SCALE=small``).
        """
        return self.validation_f_score > self.qualification_threshold

    def predict(self, y_test: np.ndarray, predictions: np.ndarray) -> str:
        """Infer 'linear' or 'nonlinear' from one prediction vector."""
        if self.model is None:
            raise ValidationError(f"predictor for {self.dataset} is untrained")
        features = _observation_features(y_test, predictions)
        if features.shape[0] != self.feature_length:
            raise ValidationError(
                "prediction vector length mismatch: the probe must use the "
                "same held-out test set the predictor was trained on"
            )
        label = self.model.predict(features[None, :])[0]
        return "nonlinear" if label == 1 else "linear"


def train_family_predictors(
    observations: dict[str, list[FamilyObservation]],
    random_state: int = 0,
    qualification_threshold: float = 0.95,
) -> dict[str, FamilyPredictor]:
    """Train, validate, and test one meta-classifier per dataset.

    Follows the paper's §6.2 protocol: 70% of experiments form the
    train+validation set — validated with 5-fold cross-validation (fewer
    folds on small samples) — and 30% are held out for the test score;
    the meta-classifier is a Random Forest.
    """
    rng = check_random_state(random_state)
    predictors: dict[str, FamilyPredictor] = {}
    # repro: disable=P304 -- one meta-classifier fit per distinct dataset with a fresh seed; no input ever repeats, so a fit cache could not hit
    for dataset, samples in observations.items():
        predictor = FamilyPredictor(
            dataset=dataset,
            qualification_threshold=qualification_threshold,
        )
        families = {s.family for s in samples}
        if len(samples) >= 10 and len(families) == 2:
            X = np.vstack([s.features for s in samples])
            y = np.array([1 if s.family == "nonlinear" else 0 for s in samples])
            seed = int(rng.integers(0, 2**31))
            try:
                X_dev, X_test, y_dev, y_test = train_test_split(
                    X, y, test_size=0.3, random_state=seed
                )
                model = RandomForestClassifier(
                    n_estimators=100, max_depth=10, random_state=seed
                )
                n_folds = min(5, int(np.bincount(y_dev).min()))
                if n_folds >= 2:
                    cv_scores = cross_val_score(
                        model, X_dev, y_dev, cv=n_folds, random_state=seed
                    )
                    predictor.validation_f_score = float(cv_scores.mean())
                else:
                    predictor.validation_f_score = 0.0
                model.fit(X_dev, y_dev)
                predictor.model = model
                predictor.feature_length = X.shape[1]
                predictor.test_f_score = f_score(y_test, model.predict(X_test))
            except ReproError as exc:
                predictor.model = None
                predictor.failure_reason = f"{type(exc).__name__}: {exc}"
        predictors[dataset] = predictor
    return predictors


@dataclass
class BlackBoxFamilyReport:
    """§6.2 outcome for one black-box platform."""

    platform: str
    choices: dict = field(default_factory=dict)   # dataset -> family
    failures: dict = field(default_factory=dict)  # dataset -> error message

    @property
    def n_linear(self) -> int:
        return sum(1 for f in self.choices.values() if f == "linear")

    @property
    def n_nonlinear(self) -> int:
        return sum(1 for f in self.choices.values() if f == "nonlinear")

    def linear_fraction(self) -> float:
        """Fraction of inferred choices that are linear."""
        total = len(self.choices)
        return self.n_linear / total if total else float("nan")


def infer_blackbox_families(
    runner: ExperimentRunner,
    blackbox: MLaaSPlatform,
    datasets: list[Dataset],
    predictors: dict[str, FamilyPredictor],
) -> BlackBoxFamilyReport:
    """Apply qualified per-dataset predictors to a black-box platform."""
    report = BlackBoxFamilyReport(platform=blackbox.name)
    for dataset in datasets:
        predictor = predictors.get(dataset.name)
        if predictor is None or not predictor.qualified:
            continue
        try:
            y_test, predictions = runner.predictions_for(
                blackbox, dataset, Configuration.make()
            )
        except ReproError as exc:
            report.failures[dataset.name] = f"{type(exc).__name__}: {exc}"
            continue
        report.choices[dataset.name] = predictor.predict(y_test, predictions)
    return report
