"""Per-domain result breakdown.

The paper motivates MLaaS with *networking* workloads but evaluates over
a multi-domain corpus (Fig 3a).  This analysis slices any result store by
application domain, answering the practical question behind the paper:
"for my kind of data, which platform — and which classifier family —
should I reach for?"
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultStore
from repro.datasets.registry import CORPUS
from repro.learn import LINEAR_FAMILY

__all__ = ["DomainSlice", "domain_breakdown", "domain_family_preference"]

_DOMAIN_OF = {spec.name: spec.domain for spec in CORPUS}


@dataclass(frozen=True)
class DomainSlice:
    """Best-per-dataset performance of one platform within one domain."""

    domain: str
    platform: str
    n_datasets: int
    mean_f_score: float


def domain_breakdown(store: ResultStore) -> list[DomainSlice]:
    """Slice per-platform optimized performance by dataset domain.

    Datasets not in the corpus registry (e.g. user-supplied) are grouped
    under the domain ``"external"``.
    """
    slices = []
    for platform in store.platforms():
        best = store.for_platform(platform).best_per_dataset()
        by_domain: dict[str, list[float]] = {}
        for dataset, result in best.items():
            domain = _DOMAIN_OF.get(dataset, "external")
            by_domain.setdefault(domain, []).append(result.metrics.f_score)
        for domain, scores in sorted(by_domain.items()):
            slices.append(DomainSlice(
                domain=domain,
                platform=platform,
                n_datasets=len(scores),
                mean_f_score=float(np.mean(scores)),
            ))
    return slices


def domain_family_preference(store: ResultStore) -> dict[str, dict[str, float]]:
    """Per domain: fraction of dataset wins by linear vs non-linear family.

    For each dataset the winning configuration's classifier family is
    tallied; black-box results (no classifier attribution) are ignored.
    Returns ``{domain: {"linear": fraction, "nonlinear": fraction}}``.
    """
    wins: dict[str, dict[str, int]] = {}
    for dataset in store.datasets():
        best_result = None
        best_score = -1.0
        for result in store.for_dataset(dataset).ok():
            abbr = result.configuration.classifier
            if abbr is None:
                continue
            if result.metrics.f_score > best_score:
                best_score = result.metrics.f_score
                best_result = result
        if best_result is None:
            continue
        domain = _DOMAIN_OF.get(dataset, "external")
        family = (
            "linear"
            if best_result.configuration.classifier in LINEAR_FAMILY
            else "nonlinear"
        )
        domain_wins = wins.setdefault(domain, {"linear": 0, "nonlinear": 0})
        domain_wins[family] += 1
    preferences = {}
    for domain, counts in wins.items():
        total = counts["linear"] + counts["nonlinear"]
        preferences[domain] = {
            "linear": counts["linear"] / total,
            "nonlinear": counts["nonlinear"] / total,
        }
    return preferences
