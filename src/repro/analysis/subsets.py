"""Random k-classifier-subset analysis (Fig 8, §5.2 "Partial Knowledge").

The paper asks: if a user experiments with a random subset of k
classifiers (taking the best of the subset), how close to the full-sweep
optimum do they get?  Fig 8 plots the average best F-score against k and
shows k = 3 already lands within a few percent of optimal.

Rather than sampling subsets, we compute the expectation *exactly*: for
per-classifier best scores sorted ascending ``s_(1) <= ... <= s_(n)``,

    E[max over a uniform random k-subset] =
        sum_i  s_(i) * C(i-1, k-1) / C(n, k)

because ``s_(i)`` is the subset maximum iff the subset contains item i
and k-1 of the i-1 smaller items.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.core.results import ResultStore
from repro.exceptions import ValidationError

__all__ = ["expected_max_of_subset", "subset_performance_curve"]


def expected_max_of_subset(scores, k: int) -> float:
    """Exact E[max of a uniform random k-subset] of ``scores``."""
    values = np.sort(np.asarray(scores, dtype=float))
    n = values.size
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    total_subsets = comb(n, k)
    expectation = 0.0
    for i in range(1, n + 1):  # 1-indexed order statistics
        ways = comb(i - 1, k - 1)
        if ways:
            expectation += values[i - 1] * ways / total_subsets
    return float(expectation)


def _best_per_classifier(
    store: ResultStore, platform: str, dataset: str
) -> dict[str, float]:
    """Each classifier's best F-score on one dataset."""
    best: dict[str, float] = {}
    for result in store.for_platform(platform).for_dataset(dataset).ok():
        abbr = result.configuration.classifier
        if abbr is None:
            continue
        if result.metrics.f_score > best.get(abbr, -1.0):
            best[abbr] = result.metrics.f_score
    return best


def subset_performance_curve(
    store: ResultStore, platform: str
) -> list[tuple[int, float]]:
    """Fig 8 series for one platform: (k, expected best F-score).

    For every dataset, each classifier is represented by its best
    configuration in the sweep; the k-subset expectation is computed per
    dataset and averaged.  k runs from 1 to the number of classifiers the
    platform exposes.
    """
    datasets = store.for_platform(platform).datasets()
    per_dataset: list[dict[str, float]] = []
    n_classifiers = 0
    for dataset in datasets:
        best = _best_per_classifier(store, platform, dataset)
        if best:
            per_dataset.append(best)
            n_classifiers = max(n_classifiers, len(best))
    if not per_dataset or n_classifiers == 0:
        return []
    curve: list[tuple[int, float]] = []
    for k in range(1, n_classifiers + 1):
        expectations = []
        for best in per_dataset:
            scores = list(best.values())
            usable_k = min(k, len(scores))
            expectations.append(expected_max_of_subset(scores, usable_k))
        curve.append((k, float(np.mean(expectations))))
    return curve
