"""Plain-text rendering of tables, bars, and CDFs.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output uniform and dependency-free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["render_table", "render_bar_chart", "cdf_points", "render_cdf"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows))
        if rendered_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    value_format: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Horizontal ASCII bar chart (for Fig 4/6-style panels)."""
    finite = [v for v in values if np.isfinite(v)]
    maximum = max(finite) if finite else 1.0
    maximum = maximum if maximum > 0 else 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if not np.isfinite(value):
            bar, rendered = "", "n/a"
        else:
            bar = "#" * max(0, int(round(width * value / maximum)))
            rendered = value_format.format(value)
        lines.append(f"{label.ljust(label_width)} |{bar} {rendered}")
    return "\n".join(lines)


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) points."""
    data = np.sort(np.asarray([v for v in values if np.isfinite(v)], dtype=float))
    if data.size == 0:
        return []
    fractions = np.arange(1, data.size + 1) / data.size
    return list(zip(data.tolist(), fractions.tolist()))


def render_cdf(
    values: Sequence[float],
    n_points: int = 10,
    value_format: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render an empirical CDF at evenly spaced quantiles."""
    points = cdf_points(values)
    lines = [title] if title else []
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    indices = np.linspace(0, len(points) - 1, min(n_points, len(points)))
    for index in indices.astype(int):
        value, fraction = points[index]
        lines.append(f"  CDF({value_format.format(value)}) = {fraction:.2f}")
    return "\n".join(lines)
