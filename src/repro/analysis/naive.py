"""Naive classifier-selection strategy (§6.3, Table 6, Fig 14).

The paper's probe of black-box optimization quality: train two widely
supported classifiers with default parameters — Logistic Regression
(linear) and Decision Tree (non-linear) — and pick whichever scores
higher on the dataset.  If this two-model strategy beats a black-box
platform, the platform's hidden selection had room to improve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controls import Configuration
from repro.core.runner import ExperimentRunner
from repro.datasets.corpus import Dataset
from repro.exceptions import ReproError
from repro.learn.linear import LogisticRegression
from repro.learn.metrics import f_score
from repro.learn.tree import DecisionTreeClassifier
from repro.platforms.base import MLaaSPlatform

__all__ = ["NaiveChoice", "naive_strategy", "NaiveComparison", "compare_with_blackbox"]


@dataclass(frozen=True)
class NaiveChoice:
    """The naive strategy's outcome on one dataset."""

    dataset: str
    chosen_family: str      # "linear" (LR) or "nonlinear" (DT)
    f_score: float
    lr_f_score: float
    dt_f_score: float


def naive_strategy(
    runner: ExperimentRunner,
    dataset: Dataset,
    random_state: int = 0,
) -> NaiveChoice:
    """Train default LR and default DT; choose the better performer."""
    split = runner.split(dataset)
    lr = LogisticRegression(random_state=random_state)
    lr.fit(split.X_train, split.y_train)
    lr_score = f_score(split.y_test, lr.predict(split.X_test))
    dt = DecisionTreeClassifier(random_state=random_state)
    dt.fit(split.X_train, split.y_train)
    dt_score = f_score(split.y_test, dt.predict(split.X_test))
    if dt_score > lr_score:
        chosen, score = "nonlinear", dt_score
    else:
        chosen, score = "linear", lr_score
    return NaiveChoice(
        dataset=dataset.name,
        chosen_family=chosen,
        f_score=score,
        lr_f_score=lr_score,
        dt_f_score=dt_score,
    )


@dataclass
class NaiveComparison:
    """Comparison of the naive strategy against one black-box platform.

    ``breakdown`` is Table 6: among datasets where naive wins, counts
    keyed by (black-box family, naive family).  ``win_margins`` is the
    Fig 14 series: the F-score differences on winning datasets.
    ``failures`` records datasets the black box failed on (dataset name
    -> error message), so dropped configurations are visible in the
    aggregate instead of silently shrinking ``n_datasets``.
    """

    platform: str
    n_datasets: int = 0
    n_naive_wins: int = 0
    breakdown: dict = field(default_factory=dict)
    win_margins: list = field(default_factory=list)
    failures: dict = field(default_factory=dict)

    @property
    def n_failed(self) -> int:
        """Datasets excluded because the black-box run failed."""
        return len(self.failures)

    def win_fraction(self) -> float:
        """Fraction of datasets where the naive strategy won."""
        return self.n_naive_wins / self.n_datasets if self.n_datasets else float("nan")

    def mean_win_margin(self) -> float:
        """Average F-score margin on datasets the naive strategy won."""
        return float(np.mean(self.win_margins)) if self.win_margins else float("nan")


def compare_with_blackbox(
    runner: ExperimentRunner,
    blackbox: MLaaSPlatform,
    datasets: list[Dataset],
    blackbox_families: dict[str, str] | None = None,
    random_state: int = 0,
) -> NaiveComparison:
    """Run §6.3's comparison on a set of datasets.

    Parameters
    ----------
    blackbox_families : dict or None
        Inferred per-dataset family choices of the black box (from
        :func:`repro.analysis.family.infer_blackbox_families`); when
        given, the Table 6 breakdown is tallied for datasets the naive
        strategy wins.
    """
    comparison = NaiveComparison(platform=blackbox.name)
    for dataset in datasets:
        try:
            y_test, predictions = runner.predictions_for(
                blackbox, dataset, Configuration.make()
            )
        except ReproError as exc:
            comparison.failures[dataset.name] = f"{type(exc).__name__}: {exc}"
            continue
        blackbox_score = f_score(y_test, predictions)
        naive = naive_strategy(runner, dataset, random_state=random_state)
        comparison.n_datasets += 1
        if naive.f_score > blackbox_score:
            comparison.n_naive_wins += 1
            comparison.win_margins.append(naive.f_score - blackbox_score)
            blackbox_family = (blackbox_families or {}).get(dataset.name)
            if blackbox_family is not None:
                key = (blackbox_family, naive.chosen_family)
                comparison.breakdown[key] = comparison.breakdown.get(key, 0) + 1
    return comparison
