"""Decision-boundary probing of black-box platforms (§6.1, Figs 10 & 13).

The paper visualizes a platform's decision boundary "by querying and
plotting the predicted classes of a 100x100 mesh grid" over the feature
range of a 2-feature dataset.  This module performs that probe through
the platform's public batch-prediction API and quantifies the boundary's
*linearity* so tests and benches can assert what the paper eyeballs: a
straight line on LINEAR, a closed curve on CIRCLE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.linear import LogisticRegression
from repro.platforms.base import MLaaSPlatform

__all__ = ["BoundaryProbe", "probe_decision_boundary", "boundary_linearity"]


@dataclass(frozen=True)
class BoundaryProbe:
    """A mesh-grid probe of one model's decision surface."""

    xx: np.ndarray          # (resolution, resolution) feature-1 grid
    yy: np.ndarray          # (resolution, resolution) feature-2 grid
    predictions: np.ndarray  # (resolution, resolution) predicted labels

    def positive_fraction(self) -> float:
        """Fraction of the mesh predicted as the reference class."""
        classes = np.unique(self.predictions)
        return float(np.mean(self.predictions == classes[-1]))

    def render_ascii(self, width: int = 40) -> str:
        """Coarse ASCII rendering of the boundary (for reports/logs)."""
        step = max(1, self.predictions.shape[0] // width)
        rows = []
        classes = np.unique(self.predictions)
        for i in range(0, self.predictions.shape[0], step):
            row = "".join(
                "#" if value == classes[-1] else "."
                for value in self.predictions[i, ::step]
            )
            rows.append(row)
        return "\n".join(reversed(rows))


def probe_decision_boundary(
    platform: MLaaSPlatform,
    X_train: np.ndarray,
    y_train: np.ndarray,
    resolution: int = 100,
    margin: float = 0.5,
) -> BoundaryProbe:
    """Train a default (baseline) model and probe its decision surface.

    Matches the paper's method: train through the service API on a
    2-feature dataset, then batch-predict a ``resolution x resolution``
    mesh spanning the data range.
    """
    X_train = np.asarray(X_train, dtype=float)
    if X_train.ndim != 2 or X_train.shape[1] != 2:
        raise ValidationError(
            "boundary probing requires a 2-feature dataset "
            f"(got shape {X_train.shape})"
        )
    dataset_id = platform.upload_dataset(X_train, y_train, name="boundary-probe")
    model_id = platform.create_model(dataset_id)
    x_low, x_high = X_train[:, 0].min() - margin, X_train[:, 0].max() + margin
    y_low, y_high = X_train[:, 1].min() - margin, X_train[:, 1].max() + margin
    xx, yy = np.meshgrid(
        np.linspace(x_low, x_high, resolution),
        np.linspace(y_low, y_high, resolution),
    )
    mesh = np.column_stack([xx.ravel(), yy.ravel()])
    predictions = platform.batch_predict(model_id, mesh).reshape(xx.shape)
    platform.delete_dataset(dataset_id)
    return BoundaryProbe(xx=xx, yy=yy, predictions=predictions)


def boundary_linearity(probe: BoundaryProbe) -> float:
    """Score in [0, 1]: how well a straight line explains the boundary.

    Fits a linear separator to the probe's mesh predictions; the score is
    its accuracy in reproducing them.  A linear model's own boundary
    scores ~1.0, CIRCLE-style closed boundaries score much lower (a line
    can label at most ~max(p, 1-p) of the mesh correctly plus a margin).
    """
    labels = probe.predictions.ravel()
    classes = np.unique(labels)
    if classes.size < 2:
        return 1.0  # degenerate: one class everywhere is trivially linear
    mesh = np.column_stack([probe.xx.ravel(), probe.yy.ravel()])
    y01 = (labels == classes[-1]).astype(int)
    surrogate = LogisticRegression(
        penalty="none", solver="lbfgs", max_iter=300
    )
    surrogate.fit(mesh, y01)
    agreement = float(np.mean(surrogate.predict(mesh) == y01))
    return agreement
