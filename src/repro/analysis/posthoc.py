"""Post-hoc statistical comparisons of platforms over multiple datasets.

The paper's ranking methodology follows Dietterich (1998) and Demšar
(2006) with the García & Herrera (2008) extension for all pairwise
comparisons — its references [19], [20], [29].  This module implements
that toolkit on top of the Friedman ranking:

* Wilcoxon signed-rank test for one platform pair over datasets;
* all-pairs comparison with Holm step-down correction;
* the Nemenyi critical difference for average Friedman ranks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.analysis.stats import friedman_ranking
from repro.exceptions import ValidationError

__all__ = [
    "wilcoxon_signed_rank",
    "PairwiseComparison",
    "pairwise_comparisons",
    "nemenyi_critical_difference",
    "significantly_different_pairs",
]


def wilcoxon_signed_rank(
    scores_a, scores_b
) -> tuple[float, float]:
    """Wilcoxon signed-rank test on paired per-dataset scores.

    Returns ``(statistic, p_value)`` for the two-sided test.  Ties
    (zero differences) are dropped, per the classic procedure; if every
    pair ties the result is ``(0.0, 1.0)``.
    """
    a = np.asarray(scores_a, dtype=float)
    b = np.asarray(scores_b, dtype=float)
    if a.shape != b.shape:
        raise ValidationError("paired score arrays must have equal length")
    if a.size < 3:
        raise ValidationError("need at least 3 paired scores")
    differences = a - b
    nonzero = differences[differences != 0.0]
    if nonzero.size == 0:
        return 0.0, 1.0
    result = scipy_stats.wilcoxon(nonzero)
    return float(result.statistic), float(result.pvalue)


@dataclass(frozen=True)
class PairwiseComparison:
    """One platform pair's test outcome after multiple-test correction."""

    platform_a: str
    platform_b: str
    statistic: float
    p_value: float
    adjusted_p: float
    significant: bool
    better: str  # which platform has the higher mean score


def pairwise_comparisons(
    scores: dict[str, dict[str, float]],
    alpha: float = 0.05,
) -> list[PairwiseComparison]:
    """All-pairs Wilcoxon tests with Holm step-down correction.

    ``scores`` maps ``{platform: {dataset: score}}``; only datasets
    common to all platforms enter the pairing (complete blocks, as in
    the Friedman procedure).
    """
    platforms = sorted(scores)
    if len(platforms) < 2:
        raise ValidationError("need at least 2 platforms")
    common = sorted(set.intersection(*(set(scores[p]) for p in platforms)))
    if len(common) < 3:
        raise ValidationError("need at least 3 common datasets")

    raw: list[tuple[str, str, float, float, str]] = []
    for i, a in enumerate(platforms):
        for b in platforms[i + 1:]:
            vec_a = np.array([scores[a][d] for d in common])
            vec_b = np.array([scores[b][d] for d in common])
            statistic, p_value = wilcoxon_signed_rank(vec_a, vec_b)
            better = a if vec_a.mean() >= vec_b.mean() else b
            raw.append((a, b, statistic, p_value, better))

    # Holm step-down: sort ascending by p, adjust by remaining tests.
    order = sorted(range(len(raw)), key=lambda i: raw[i][3])
    m = len(raw)
    adjusted = [0.0] * m
    running_max = 0.0
    for rank, index in enumerate(order):
        adjusted_p = min(1.0, (m - rank) * raw[index][3])
        running_max = max(running_max, adjusted_p)  # enforce monotonicity
        adjusted[index] = running_max

    comparisons = []
    for (a, b, statistic, p_value, better), adjusted_p in zip(raw, adjusted):
        comparisons.append(PairwiseComparison(
            platform_a=a,
            platform_b=b,
            statistic=statistic,
            p_value=p_value,
            adjusted_p=adjusted_p,
            significant=adjusted_p < alpha,
            better=better,
        ))
    comparisons.sort(key=lambda c: c.adjusted_p)
    return comparisons


# Upper 5% studentized-range quantiles / sqrt(2) for the Nemenyi test,
# indexed by the number of compared classifiers k (Demšar 2006, Table 5).
_NEMENYI_Q05 = {
    2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850,
    7: 2.949, 8: 3.031, 9: 3.102, 10: 3.164,
}


def nemenyi_critical_difference(n_platforms: int, n_datasets: int) -> float:
    """Nemenyi CD: rank gaps above this are significant at alpha=0.05."""
    if n_platforms < 2:
        raise ValidationError("need at least 2 platforms")
    if n_datasets < 2:
        raise ValidationError("need at least 2 datasets")
    try:
        q = _NEMENYI_Q05[n_platforms]
    except KeyError:
        raise ValidationError(
            f"Nemenyi table covers 2..10 platforms, got {n_platforms}"
        ) from None
    return float(
        q * np.sqrt(n_platforms * (n_platforms + 1) / (6.0 * n_datasets))
    )


def significantly_different_pairs(
    scores: dict[str, dict[str, float]],
) -> list[tuple[str, str, float]]:
    """Platform pairs whose Friedman-rank gap exceeds the Nemenyi CD.

    Returns ``(better, worse, rank_gap)`` tuples sorted by gap size.
    """
    ranks = friedman_ranking(scores)
    platforms = sorted(scores)
    common = set.intersection(*(set(scores[p]) for p in platforms))
    cd = nemenyi_critical_difference(len(platforms), len(common))
    pairs = []
    for i, a in enumerate(platforms):
        for b in platforms[i + 1:]:
            gap = abs(ranks[a] - ranks[b])
            if gap > cd:
                better, worse = (a, b) if ranks[a] < ranks[b] else (b, a)
                pairs.append((better, worse, float(gap)))
    pairs.sort(key=lambda item: -item[2])
    return pairs
