"""Aggregation of sweep results into the paper's headline tables.

* :func:`platform_summary` — per-platform best-per-dataset averages of
  all four metrics plus Friedman rankings (Table 3a/3b, Fig 4).
* :func:`per_control_improvement` — % F-score improvement over baseline
  when tuning one control (Fig 5).
* :func:`classifier_ranking` — fraction of datasets on which each
  classifier is the platform's best (Table 4a/4b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import friedman_ranking, standard_error
from repro.core.results import ResultStore

__all__ = [
    "PlatformSummary",
    "platform_summary",
    "per_control_improvement",
    "classifier_ranking",
]

_METRICS = ("f_score", "accuracy", "precision", "recall")


@dataclass(frozen=True)
class PlatformSummary:
    """One row of Table 3: per-metric averages and Friedman ranks."""

    platform: str
    avg: dict
    friedman: dict
    avg_friedman: float
    stderr_f: float

    def as_row(self) -> str:
        """Render this summary as one Table 3 text row."""
        cells = [
            f"{self.avg[m]:.3f} ({self.friedman[m]:.1f})" for m in _METRICS
        ]
        return (
            f"{self.platform:<13s} {self.avg_friedman:>8.1f}  " + "  ".join(cells)
        )


def _best_scores(store: ResultStore, metric: str) -> dict[str, dict[str, float]]:
    """{platform: {dataset: best score}} from a sweep store."""
    scores: dict[str, dict[str, float]] = {}
    for platform in store.platforms():
        best = store.for_platform(platform).best_per_dataset(metric)
        scores[platform] = {
            dataset: getattr(result.metrics, metric)
            for dataset, result in best.items()
        }
    return scores


def platform_summary(store: ResultStore) -> list[PlatformSummary]:
    """Reproduce a Table 3 block from a sweep's result store.

    For each platform the per-dataset *best* result is aggregated (for a
    baseline store there is exactly one result per dataset, so baseline
    and optimized use the same code path).  Platforms are returned sorted
    by average Friedman ranking (ascending = better), the paper's row
    order.
    """
    summaries = []
    per_metric_ranks: dict[str, dict[str, float]] = {}
    for metric in _METRICS:
        scores = _best_scores(store, metric)
        if len(scores) >= 2:
            per_metric_ranks[metric] = friedman_ranking(scores)
        else:
            per_metric_ranks[metric] = {p: 1.0 for p in scores}
    f_scores = _best_scores(store, "f_score")
    for platform in store.platforms():
        avg = {}
        for metric in _METRICS:
            values = list(_best_scores(store, metric)[platform].values())
            avg[metric] = float(np.mean(values)) if values else float("nan")
        friedman = {
            metric: per_metric_ranks[metric].get(platform, float("nan"))
            for metric in _METRICS
        }
        summaries.append(PlatformSummary(
            platform=platform,
            avg=avg,
            friedman=friedman,
            avg_friedman=float(np.mean(list(friedman.values()))),
            stderr_f=standard_error(list(f_scores[platform].values())),
        ))
    summaries.sort(key=lambda s: s.avg_friedman)
    return summaries


def per_control_improvement(
    baseline: ResultStore,
    control_store: ResultStore,
    platform: str,
) -> float:
    """Percent F-score improvement over baseline from tuning one control.

    Computes the paper's Fig 5 quantity: average per-dataset best F-score
    under the single-control sweep, relative to the baseline average.
    Returns NaN when the platform has no measurements in the sweep (the
    white 'No Data' boxes of Fig 5).
    """
    control_results = control_store.for_platform(platform)
    if len(control_results.ok()) == 0:
        return float("nan")
    baseline_score = baseline.for_platform(platform).mean_score()
    tuned_score = control_results.mean_score()
    if baseline_score <= 0.0:
        return float("nan")
    return 100.0 * (tuned_score - baseline_score) / baseline_score


def classifier_ranking(
    store: ResultStore,
    platform: str,
    optimized_params: bool,
    top: int = 4,
) -> list[tuple[str, float]]:
    """Table 4: which classifiers win most datasets on a platform.

    With ``optimized_params=False`` only default-parameter results
    compete (Table 4a); with ``True`` each classifier is represented by
    its best parameter configuration per dataset (Table 4b).  Returns
    ``(classifier, percent of datasets won)`` sorted descending.
    """
    results = store.for_platform(platform).ok()
    if not optimized_params:
        results = results.where(
            lambda r: "PARA" not in r.configuration.tuned
            and r.configuration.feature_selection is None
        )
    wins: dict[str, int] = {}
    n_datasets = 0
    for dataset in results.datasets():
        dataset_results = results.for_dataset(dataset)
        best_per_classifier: dict[str, float] = {}
        for result in dataset_results:
            abbr = result.configuration.classifier or "auto"
            score = result.metrics.f_score
            if score > best_per_classifier.get(abbr, -1.0):
                best_per_classifier[abbr] = score
        if not best_per_classifier:
            continue
        n_datasets += 1
        winner = max(best_per_classifier, key=lambda a: best_per_classifier[a])
        wins[winner] = wins.get(winner, 0) + 1
    if n_datasets == 0:
        return []
    ranking = [
        (abbr, 100.0 * count / n_datasets) for abbr, count in wins.items()
    ]
    ranking.sort(key=lambda item: -item[1])
    return ranking[:top]
