"""Performance-variation analysis (the paper's §5, Figs 6 and 7).

The risk of a platform is measured by how much its performance varies
across its configuration space: for each configuration the F-score is
averaged across datasets, and the spread of those per-configuration
averages is the platform's variation.  A platform where one poor choice
costs a lot shows a wide range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controls import CLF, FEAT, PARA
from repro.core.results import ResultStore

__all__ = ["VariationSummary", "performance_variation", "per_control_variation"]


@dataclass(frozen=True)
class VariationSummary:
    """Spread of per-configuration average F-scores for one platform."""

    platform: str
    minimum: float
    maximum: float
    mean: float
    spread: float
    n_configurations: int


def _per_configuration_averages(results: ResultStore) -> np.ndarray:
    """Average F-score across datasets for each distinct configuration."""
    by_configuration: dict = {}
    for result in results:
        if not result.ok:
            continue
        by_configuration.setdefault(result.configuration, []).append(
            result.metrics.f_score
        )
    if not by_configuration:
        return np.array([])
    return np.array([
        float(np.mean(scores)) for scores in by_configuration.values()
    ])


def performance_variation(store: ResultStore, platform: str) -> VariationSummary:
    """Fig 6: range of per-configuration average F-scores."""
    averages = _per_configuration_averages(store.for_platform(platform))
    if averages.size == 0:
        nan = float("nan")
        return VariationSummary(platform, nan, nan, nan, nan, 0)
    return VariationSummary(
        platform=platform,
        minimum=float(averages.min()),
        maximum=float(averages.max()),
        mean=float(averages.mean()),
        spread=float(averages.max() - averages.min()),
        n_configurations=int(averages.size),
    )


def per_control_variation(
    control_stores: dict[str, ResultStore],
    overall_store: ResultStore,
    platform: str,
) -> dict[str, float]:
    """Fig 7: per-control variation normalized by the overall variation.

    For each control dimension, the spread of per-configuration averages
    when only that control is tuned, divided by the platform's overall
    spread.  Dimensions the platform does not expose map to NaN (the
    white boxes of Fig 7).
    """
    overall = performance_variation(overall_store, platform).spread
    shares: dict[str, float] = {}
    for dimension in (FEAT, CLF, PARA):
        store = control_stores.get(dimension)
        if store is None:
            shares[dimension] = float("nan")
            continue
        platform_results = store.for_platform(platform)
        if len(platform_results.ok()) == 0:
            shares[dimension] = float("nan")
            continue
        spread = performance_variation(store, platform).spread
        if overall and overall > 0.0 and np.isfinite(overall):
            shares[dimension] = float(min(spread / overall, 1.0))
        else:
            shares[dimension] = float("nan")
    return shares
