"""Training-time and monetary-cost accounting (paper §8 future work).

The paper's limitations section names "training time, cost" as evaluation
dimensions it leaves unexplored.  This extension closes that gap for the
simulators: every training job records its wall-clock time and sample
count, and each platform carries a pricing model shaped like the vendors'
2017 public price sheets (compute-hour training fees, per-1k-prediction
fees, and flat subscriptions).

The absolute dollar figures are only as real as the price sheets they
imitate; what the analysis genuinely shows is the *structure* of the
trade-off the paper hints at — sweeping Microsoft's 17k-configuration
space costs orders of magnitude more than the 119 one-shot calls a black
box needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import ResultStore

__all__ = ["PricingModel", "PRICING", "CostReport", "study_cost_report"]


@dataclass(frozen=True)
class PricingModel:
    """How a platform bills a measurement campaign.

    Attributes
    ----------
    training_usd_per_hour : float
        Compute-hour price for model training.
    prediction_usd_per_1k : float
        Price per 1,000 batch predictions.
    flat_usd_per_month : float
        Subscription component, amortized over a campaign.
    """

    training_usd_per_hour: float
    prediction_usd_per_1k: float
    flat_usd_per_month: float = 0.0

    def campaign_cost(
        self, training_hours: float, n_predictions: int, months: float = 1.0
    ) -> float:
        """Total USD for a campaign of the given training/prediction volume."""
        return (
            self.training_usd_per_hour * training_hours
            + self.prediction_usd_per_1k * n_predictions / 1000.0
            + self.flat_usd_per_month * months
        )


#: 2017-era shaped pricing per platform (see module docstring caveat).
PRICING: dict[str, PricingModel] = {
    "abm": PricingModel(0.0, 0.0, flat_usd_per_month=250.0),
    "google": PricingModel(0.0, 0.50, flat_usd_per_month=10.0),
    "amazon": PricingModel(0.42, 0.10),
    "predictionio": PricingModel(0.10, 0.0),   # self-hosted infra only
    "bigml": PricingModel(0.0, 0.0, flat_usd_per_month=30.0),
    "microsoft": PricingModel(1.00, 0.50, flat_usd_per_month=9.99),
    "local": PricingModel(0.0, 0.0),           # your own hardware
}


@dataclass
class CostReport:
    """Aggregate cost of one platform's share of a measurement campaign."""

    platform: str
    n_measurements: int
    training_hours: float
    n_predictions: int
    estimated_usd: float

    def usd_per_measurement(self) -> float:
        """Estimated cost divided by the number of measurements."""
        if self.n_measurements == 0:
            return float("nan")
        return self.estimated_usd / self.n_measurements


def study_cost_report(store: ResultStore, months: float = 1.0) -> list[CostReport]:
    """Estimate the campaign cost per platform from a result store.

    Uses the per-job ``training_seconds`` and ``n_predictions`` recorded
    by the runner.  Platforms without a pricing entry are costed at zero.
    """
    reports = []
    for platform in store.platforms():
        results = store.for_platform(platform)
        training_seconds = 0.0
        n_predictions = 0
        count = 0
        for result in results:
            count += 1
            training_seconds += float(
                result.metadata.get("training_seconds", 0.0)
            )
            n_predictions += int(result.metadata.get("n_predictions", 0))
        pricing = PRICING.get(platform, PricingModel(0.0, 0.0))
        training_hours = training_seconds / 3600.0
        reports.append(CostReport(
            platform=platform,
            n_measurements=count,
            training_hours=training_hours,
            n_predictions=n_predictions,
            estimated_usd=pricing.campaign_cost(
                training_hours, n_predictions, months
            ),
        ))
    reports.sort(key=lambda r: -r.estimated_usd)
    return reports
