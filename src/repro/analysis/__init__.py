"""repro.analysis — statistical analysis reproducing every table & figure.

==================  =====================================================
Module              Reproduces
==================  =====================================================
``stats``           Friedman rankings / test (Table 3 methodology)
``aggregate``       Fig 4, Fig 5, Table 3, Table 4
``variation``       Fig 6, Fig 7
``subsets``         Fig 8 (random k-classifier subsets, exact expectation)
``boundary``        Fig 10, Fig 13 (mesh-grid decision-boundary probes)
``family``          Fig 11, Fig 12, §6.2 black-box family inference
``naive``           Table 6, Fig 14 (naive LR-vs-DT strategy)
``reporting``       plain-text tables / bar charts / CDFs for benches
``cost``            §8 extension: training-time and campaign-cost model
``robustness``      §8 extension: label-noise degradation curves
==================  =====================================================
"""

from repro.analysis.aggregate import (
    PlatformSummary,
    classifier_ranking,
    per_control_improvement,
    platform_summary,
)
from repro.analysis.domains import (
    DomainSlice,
    domain_breakdown,
    domain_family_preference,
)
from repro.analysis.cost import (
    PRICING,
    CostReport,
    PricingModel,
    study_cost_report,
)
from repro.analysis.robustness import (
    NoiseCurve,
    degradation_slope,
    label_noise_curve,
)
from repro.analysis.boundary import (
    BoundaryProbe,
    boundary_linearity,
    probe_decision_boundary,
)
from repro.analysis.family import (
    BlackBoxFamilyReport,
    FamilyObservation,
    FamilyPredictor,
    collect_family_observations,
    family_of,
    infer_blackbox_families,
    train_family_predictors,
)
from repro.analysis.naive import (
    NaiveChoice,
    NaiveComparison,
    compare_with_blackbox,
    naive_strategy,
)
from repro.analysis.posthoc import (
    PairwiseComparison,
    nemenyi_critical_difference,
    pairwise_comparisons,
    significantly_different_pairs,
    wilcoxon_signed_rank,
)
from repro.analysis.reporting import (
    cdf_points,
    render_bar_chart,
    render_cdf,
    render_table,
)
from repro.analysis.stats import friedman_ranking, friedman_test, standard_error
from repro.analysis.subsets import expected_max_of_subset, subset_performance_curve
from repro.analysis.variation import (
    VariationSummary,
    per_control_variation,
    performance_variation,
)

__all__ = [
    "friedman_ranking", "friedman_test", "standard_error",
    "PlatformSummary", "platform_summary", "per_control_improvement",
    "classifier_ranking",
    "VariationSummary", "performance_variation", "per_control_variation",
    "expected_max_of_subset", "subset_performance_curve",
    "BoundaryProbe", "probe_decision_boundary", "boundary_linearity",
    "family_of", "FamilyObservation", "FamilyPredictor",
    "collect_family_observations", "train_family_predictors",
    "infer_blackbox_families", "BlackBoxFamilyReport",
    "NaiveChoice", "naive_strategy", "NaiveComparison", "compare_with_blackbox",
    "render_table", "render_bar_chart", "cdf_points", "render_cdf",
    # extensions (paper §8 future work)
    "PricingModel", "PRICING", "CostReport", "study_cost_report",
    "NoiseCurve", "label_noise_curve", "degradation_slope",
    "DomainSlice", "domain_breakdown", "domain_family_preference",
    "wilcoxon_signed_rank", "PairwiseComparison", "pairwise_comparisons",
    "nemenyi_critical_difference", "significantly_different_pairs",
]
