"""Statistical machinery: Friedman ranking and related tests.

The paper validates its headline metric by checking that ranking
platforms by average F-score matches their Friedman ranking across all
datasets (§3.2, Table 3).  The Friedman procedure ranks the competitors
within each dataset, then averages ranks across datasets; it is the
standard test for comparing classifiers over multiple datasets (Demšar
2006, cited by the paper).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.exceptions import ValidationError

__all__ = ["friedman_ranking", "friedman_test", "standard_error"]


def _rank_row(values: np.ndarray) -> np.ndarray:
    """Rank one dataset's scores: rank 1 = best, midranks for ties."""
    # rankdata ranks ascending; we want descending (higher score = rank 1).
    return scipy_stats.rankdata(-values, method="average")


def friedman_ranking(scores: dict[str, dict[str, float]]) -> dict[str, float]:
    """Average Friedman rank per competitor (lower = consistently better).

    Parameters
    ----------
    scores : dict
        ``{competitor: {dataset: score}}``.  Only datasets scored by every
        competitor participate (the test requires complete blocks).
    """
    competitors = sorted(scores)
    if len(competitors) < 2:
        raise ValidationError("Friedman ranking needs at least 2 competitors")
    common = set.intersection(*(set(scores[c]) for c in competitors))
    if not common:
        raise ValidationError("no dataset was scored by every competitor")
    datasets = sorted(common)
    matrix = np.array([
        [scores[competitor][dataset] for competitor in competitors]
        for dataset in datasets
    ])
    ranks = np.apply_along_axis(_rank_row, 1, matrix)
    mean_ranks = ranks.mean(axis=0)
    return dict(zip(competitors, mean_ranks.tolist()))


def friedman_test(scores: dict[str, dict[str, float]]) -> tuple[float, float]:
    """Friedman chi-square statistic and p-value over complete blocks."""
    competitors = sorted(scores)
    common = set.intersection(*(set(scores[c]) for c in competitors))
    datasets = sorted(common)
    if len(datasets) < 3 or len(competitors) < 3:
        raise ValidationError(
            "Friedman test needs >= 3 competitors and >= 3 datasets"
        )
    columns = [
        np.array([scores[competitor][dataset] for dataset in datasets])
        for competitor in competitors
    ]
    statistic, p_value = scipy_stats.friedmanchisquare(*columns)
    return float(statistic), float(p_value)


def standard_error(values) -> float:
    """Standard error of the mean (the error bars of Fig 4)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return float("nan")
    if values.size == 1:
        return 0.0
    return float(values.std(ddof=1) / np.sqrt(values.size))
