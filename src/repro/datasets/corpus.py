"""Dataset materialization and the paper's preprocessing pipeline (§3.1).

``load_dataset`` turns a :class:`~repro.datasets.registry.DatasetSpec`
into arrays, optionally rendering some features categorical and blanking
cells; ``preprocess`` then applies exactly the paper's local preprocessing
— ordinal-encode categoricals to {1..N}, median-impute missing values —
and ``Dataset.split`` performs the stratified 70/30 train/test split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.registry import CORPUS, DatasetSpec, get_spec
from repro.datasets.synthetic import (
    make_blobs,
    make_circles,
    make_classification,
    make_gaussian_quantiles,
    make_moons,
    make_polynomial_concept,
    make_rule_concept,
    make_sparse_linear,
    make_spirals,
    make_xor,
)
from repro.exceptions import ValidationError
from repro.learn.model_selection import train_test_split
from repro.learn.preprocessing import MedianImputer, OrdinalEncoder
from repro.learn.validation import check_random_state

__all__ = ["Dataset", "SplitDataset", "load_dataset", "load_corpus", "preprocess"]

_CONCEPT_GENERATORS = {
    "circles": make_circles,
    "linear": make_classification,
    "moons": make_moons,
    "blobs": make_blobs,
    "radial": make_gaussian_quantiles,
    "xor": make_xor,
    "spirals": make_spirals,
    "rule": make_rule_concept,
    "sparse_linear": make_sparse_linear,
    "polynomial": make_polynomial_concept,
}


@dataclass(frozen=True)
class SplitDataset:
    """A 70/30 train/test partition of one corpus dataset."""

    name: str
    X_train: np.ndarray
    X_test: np.ndarray
    y_train: np.ndarray
    y_test: np.ndarray

    @property
    def n_features(self) -> int:
        return self.X_train.shape[1]


@dataclass(frozen=True)
class Dataset:
    """A materialized corpus dataset (already numeric and NaN-free)."""

    spec: DatasetSpec
    X: np.ndarray
    y: np.ndarray

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def domain(self) -> str:
        return self.spec.domain

    def split(self, test_size: float = 0.3, random_state=0) -> SplitDataset:
        """Stratified train/test split (paper default: 70/30)."""
        X_train, X_test, y_train, y_test = train_test_split(
            self.X, self.y, test_size=test_size, random_state=random_state
        )
        return SplitDataset(
            name=self.name,
            X_train=X_train,
            X_test=X_test,
            y_train=y_train,
            y_test=y_test,
        )


def _render_categorical(
    X: np.ndarray, columns: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Render selected numeric columns as string categories.

    Each chosen column is quantile-binned into 3–8 labelled levels,
    producing the kind of mixed numeric/categorical table that 94 of the
    paper's UCI datasets are.
    """
    table = X.astype(object)
    # repro: disable=P301 -- each column draws its own level count from the RNG, so columns are sequential by design; the within-column binning is already vectorized
    for column in columns:
        n_levels = int(rng.integers(3, 9))
        values = X[:, column].astype(float)
        edges = np.quantile(values, np.linspace(0.0, 1.0, n_levels + 1)[1:-1])
        codes = np.digitize(values, edges)
        labels = [f"level_{chr(ord('a') + k)}" for k in range(n_levels)]
        table[:, column] = np.asarray(labels, dtype=object)[codes]
    return table


def _inject_missing(
    X: np.ndarray, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Blank a fraction of cells to NaN/None."""
    if rate <= 0.0:
        return X
    mask = rng.random(X.shape) < rate
    # Never blank an entire row: keep at least one observed value.
    full_rows = mask.all(axis=1)
    mask[full_rows, 0] = False
    if X.dtype == object:
        X = X.copy()
        X[mask] = None
    else:
        X = X.astype(float, copy=True)
        X[mask] = np.nan
    return X


def preprocess(X_raw: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Apply the paper's §3.1 preprocessing to a raw feature table.

    1. Categorical features {C1..CN} -> ordinal integers {1..N}.
    2. Missing values -> per-feature median.

    Returns dense float arrays ready for upload to any platform.
    """
    encoder = OrdinalEncoder()
    X_numeric = encoder.fit_transform(X_raw)
    imputer = MedianImputer(strategy="median")
    X_clean = imputer.fit_transform(X_numeric)
    return X_clean, np.asarray(y)


def load_dataset(
    spec_or_name: DatasetSpec | str,
    size_cap: int | None = None,
    feature_cap: int | None = None,
) -> Dataset:
    """Materialize one corpus dataset, preprocessed and ready to use.

    Parameters
    ----------
    spec_or_name : DatasetSpec or str
        A registry spec or its name.
    size_cap : int or None
        Deterministically subsample rows beyond this count.  The paper
        itself caps its use of >100k-sample datasets for cost reasons;
        benches use this knob to trade fidelity for runtime.
    feature_cap : int or None
        Deterministically subsample columns beyond this count.
    """
    spec = get_spec(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    generator = _CONCEPT_GENERATORS.get(spec.concept)
    if generator is None:
        raise ValidationError(f"unknown concept {spec.concept!r} in {spec.name}")
    rng = check_random_state(spec.seed)

    n_samples = spec.n_samples
    if size_cap is not None:
        n_samples = min(n_samples, max(15, size_cap))
    kwargs = dict(spec.generator_kwargs)
    n_features = spec.n_features
    if feature_cap is not None:
        n_features = min(n_features, max(1, feature_cap))
    if spec.concept not in ("circles", "moons", "spirals"):
        kwargs["n_features"] = n_features
        if spec.concept == "xor":
            kwargs["n_features"] = max(2, n_features)
    generator_seed = int(rng.integers(0, 2**31))
    X, y = generator(n_samples=n_samples, random_state=generator_seed, **kwargs)

    if spec.n_categorical > 0 or spec.missing_rate > 0.0:
        columns = rng.choice(
            X.shape[1],
            size=min(spec.n_categorical, X.shape[1]),
            replace=False,
        ) if spec.n_categorical else np.array([], dtype=int)
        raw = _render_categorical(X, columns, rng) if columns.size else X
        raw = _inject_missing(raw, spec.missing_rate, rng)
        X, y = preprocess(raw, y)

    return Dataset(spec=spec, X=np.asarray(X, dtype=float), y=np.asarray(y))


def load_corpus(
    max_datasets: int | None = None,
    size_cap: int | None = 2000,
    feature_cap: int | None = 100,
    domains: list[str] | None = None,
    random_state: int = 0,
) -> list[Dataset]:
    """Load a (sub)corpus for measurement runs.

    By default caps each dataset at 2,000 samples and 100 features so a
    full-corpus sweep completes in laptop time; pass ``size_cap=None`` /
    ``feature_cap=None`` for paper-scale data.  ``max_datasets`` selects a
    deterministic, domain-stratified subset.
    """
    specs = [s for s in CORPUS if domains is None or s.domain in domains]
    if max_datasets is not None and max_datasets < len(specs):
        rng = check_random_state(random_state)
        # Round-robin across domains keeps every domain represented.
        by_domain: dict[str, list[DatasetSpec]] = {}
        for spec in specs:
            by_domain.setdefault(spec.domain, []).append(spec)
        for members in by_domain.values():
            rng.shuffle(members)  # type: ignore[arg-type]
        chosen: list[DatasetSpec] = []
        while len(chosen) < max_datasets:
            progressed = False
            for members in by_domain.values():
                if members and len(chosen) < max_datasets:
                    chosen.append(members.pop())
                    progressed = True
            if not progressed:
                break
        specs = chosen
    return [
        load_dataset(spec, size_cap=size_cap, feature_cap=feature_cap)
        for spec in specs
    ]
