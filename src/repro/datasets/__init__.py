"""repro.datasets — the 119-dataset corpus of the paper, rebuilt synthetically.

The original study uses 94 UCI datasets, 16 scikit-learn synthetic datasets
and 9 datasets from applied-ML papers (Figure 3).  Those exact datasets are
not redistributable offline, so this package provides a deterministic
synthetic corpus whose *marginals match Figure 3*: the same domain
breakdown, the same sample-count range (15 – 245,057) and the same
feature-count range (1 – 4,702), with heterogeneous decision concepts
(linear, polynomial, rule-based, cluster, radial, sparse) so that — as in
the paper — no single classifier family dominates.

Two probe datasets used throughout §6 are exposed by name: ``CIRCLE``
(non-linearly-separable) and ``LINEAR`` (linearly-separable, noisy).
"""

from repro.datasets.corpus import (
    Dataset,
    SplitDataset,
    load_dataset,
    load_corpus,
    preprocess,
)
from repro.datasets.io import load_csv, save_csv
from repro.datasets.registry import (
    CORPUS,
    DOMAIN_COUNTS,
    DatasetSpec,
    corpus_domain_breakdown,
    get_spec,
)
from repro.datasets.synthetic import (
    make_blobs,
    make_circles,
    make_classification,
    make_moons,
    make_rule_concept,
    make_sparse_linear,
    make_spirals,
    make_xor,
)

__all__ = [
    "Dataset",
    "SplitDataset",
    "DatasetSpec",
    "CORPUS",
    "DOMAIN_COUNTS",
    "get_spec",
    "corpus_domain_breakdown",
    "load_dataset",
    "load_corpus",
    "load_csv",
    "save_csv",
    "preprocess",
    "make_circles",
    "make_classification",
    "make_moons",
    "make_blobs",
    "make_xor",
    "make_spirals",
    "make_rule_concept",
    "make_sparse_linear",
]
