"""Synthetic dataset generators.

The first group mirrors the scikit-learn generators the paper uses for its
16 synthetic datasets (``make_circles``, ``make_classification``/LINEAR,
``make_moons``, ``make_blobs``, gaussian quantiles).  The second group adds
concept generators (rule-based, XOR, spirals, sparse-linear) used by the
UCI-like corpus families to diversify decision-boundary shapes.

Every generator takes a ``random_state`` and is fully deterministic given
it.  All return ``(X, y)`` with ``y`` in {0, 1}.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.validation import check_random_state

__all__ = [
    "make_circles",
    "make_classification",
    "make_moons",
    "make_blobs",
    "make_gaussian_quantiles",
    "make_xor",
    "make_spirals",
    "make_rule_concept",
    "make_sparse_linear",
    "make_polynomial_concept",
]


def _check_n(n_samples: int, minimum: int = 4) -> None:
    if n_samples < minimum:
        raise ValidationError(f"n_samples must be >= {minimum}, got {n_samples}")


def make_circles(
    n_samples: int = 500,
    noise: float = 0.1,
    factor: float = 0.5,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two concentric circles — the paper's CIRCLE probe dataset (Fig 9a).

    Class 0 is the outer circle (radius 1), class 1 the inner circle
    (radius ``factor``), with isotropic Gaussian ``noise``.
    """
    _check_n(n_samples)
    if not 0.0 < factor < 1.0:
        raise ValidationError(f"factor must be in (0, 1), got {factor}")
    rng = check_random_state(random_state)
    n_inner = n_samples // 2
    n_outer = n_samples - n_inner
    angles_outer = rng.uniform(0.0, 2.0 * np.pi, n_outer)
    angles_inner = rng.uniform(0.0, 2.0 * np.pi, n_inner)
    outer = np.column_stack([np.cos(angles_outer), np.sin(angles_outer)])
    inner = factor * np.column_stack([np.cos(angles_inner), np.sin(angles_inner)])
    X = np.vstack([outer, inner])
    if noise > 0.0:
        X = X + rng.normal(scale=noise, size=X.shape)
    y = np.concatenate([np.zeros(n_outer, dtype=int), np.ones(n_inner, dtype=int)])
    order = rng.permutation(n_samples)
    return X[order], y[order]


def make_classification(
    n_samples: int = 500,
    n_features: int = 2,
    n_informative: int | None = None,
    class_sep: float = 1.0,
    flip_y: float = 0.05,
    weights: float = 0.5,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Linearly separable classes with label noise — the LINEAR probe.

    Two Gaussian clusters on opposite sides of a random hyperplane, with
    ``flip_y`` label noise.  The paper's LINEAR dataset (Fig 9b) is this
    generator with 2 features and visible noise.

    Parameters
    ----------
    weights : float
        Fraction of samples in class 0 (class imbalance knob).
    """
    _check_n(n_samples)
    if n_features < 1:
        raise ValidationError(f"n_features must be >= 1, got {n_features}")
    if n_informative is None:
        n_informative = n_features
    n_informative = min(n_informative, n_features)
    if not 0.0 < weights < 1.0:
        raise ValidationError(f"weights must be in (0, 1), got {weights}")
    rng = check_random_state(random_state)
    direction = rng.normal(size=n_informative)
    direction /= np.linalg.norm(direction)
    n_class0 = int(round(weights * n_samples))
    n_class0 = min(max(n_class0, 1), n_samples - 1)
    y = np.concatenate([
        np.zeros(n_class0, dtype=int),
        np.ones(n_samples - n_class0, dtype=int),
    ])
    X = rng.normal(size=(n_samples, n_features))
    signs = np.where(y == 1, 1.0, -1.0)
    X[:, :n_informative] += (
        signs[:, None] * (class_sep / 2.0) * direction[None, :]
    )
    # Always consume the flip draw so that two calls with the same seed and
    # different flip_y produce the same X (only labels differ).
    flips = rng.random(n_samples) < flip_y
    y[flips] = 1 - y[flips]
    order = rng.permutation(n_samples)
    return X[order], y[order]


def make_moons(
    n_samples: int = 500,
    noise: float = 0.1,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half-moons (classic non-linear benchmark)."""
    _check_n(n_samples)
    rng = check_random_state(random_state)
    n_upper = n_samples // 2
    n_lower = n_samples - n_upper
    theta_upper = rng.uniform(0.0, np.pi, n_upper)
    theta_lower = rng.uniform(0.0, np.pi, n_lower)
    upper = np.column_stack([np.cos(theta_upper), np.sin(theta_upper)])
    lower = np.column_stack([1.0 - np.cos(theta_lower), 0.5 - np.sin(theta_lower)])
    X = np.vstack([upper, lower])
    if noise > 0.0:
        X = X + rng.normal(scale=noise, size=X.shape)
    y = np.concatenate([np.zeros(n_upper, dtype=int), np.ones(n_lower, dtype=int)])
    order = rng.permutation(n_samples)
    return X[order], y[order]


def make_blobs(
    n_samples: int = 500,
    n_features: int = 2,
    clusters_per_class: int = 2,
    cluster_std: float = 1.0,
    spread: float = 5.0,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Multiple Gaussian blobs per class scattered in feature space."""
    _check_n(n_samples)
    if clusters_per_class < 1:
        raise ValidationError("clusters_per_class must be >= 1")
    rng = check_random_state(random_state)
    centers = rng.uniform(-spread, spread, size=(2 * clusters_per_class, n_features))
    X = np.empty((n_samples, n_features))
    y = np.empty(n_samples, dtype=int)
    assignments = rng.integers(0, 2 * clusters_per_class, size=n_samples)
    for cluster, center in enumerate(centers):
        members = assignments == cluster
        X[members] = center + cluster_std * rng.normal(
            size=(int(members.sum()), n_features)
        )
        y[members] = cluster % 2
    # Ensure both classes are present.
    if len(np.unique(y)) < 2:
        y[0] = 1 - y[0]
    return X, y


def make_gaussian_quantiles(
    n_samples: int = 500,
    n_features: int = 2,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Label by distance quantile from the origin (radial boundary)."""
    _check_n(n_samples)
    rng = check_random_state(random_state)
    X = rng.normal(size=(n_samples, n_features))
    radius = np.linalg.norm(X, axis=1)
    y = (radius > np.median(radius)).astype(int)
    return X, y


def make_xor(
    n_samples: int = 500,
    n_features: int = 2,
    noise: float = 0.2,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """XOR of the signs of the first two features — hard for linear models."""
    _check_n(n_samples)
    if n_features < 2:
        raise ValidationError("make_xor needs at least 2 features")
    rng = check_random_state(random_state)
    X = rng.uniform(-1.0, 1.0, size=(n_samples, n_features))
    y = ((X[:, 0] > 0.0) ^ (X[:, 1] > 0.0)).astype(int)
    if noise > 0.0:
        X = X + rng.normal(scale=noise, size=X.shape)
    return X, y


def make_spirals(
    n_samples: int = 500,
    noise: float = 0.1,
    turns: float = 1.5,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaved Archimedean spirals."""
    _check_n(n_samples)
    rng = check_random_state(random_state)
    n_a = n_samples // 2
    n_b = n_samples - n_a
    t_a = rng.uniform(0.25, turns, n_a) * 2.0 * np.pi
    t_b = rng.uniform(0.25, turns, n_b) * 2.0 * np.pi
    spiral_a = np.column_stack([t_a * np.cos(t_a), t_a * np.sin(t_a)]) / (2 * np.pi)
    spiral_b = np.column_stack([t_b * np.cos(t_b + np.pi), t_b * np.sin(t_b + np.pi)]) / (2 * np.pi)
    X = np.vstack([spiral_a, spiral_b])
    if noise > 0.0:
        X = X + rng.normal(scale=noise, size=X.shape)
    y = np.concatenate([np.zeros(n_a, dtype=int), np.ones(n_b, dtype=int)])
    order = rng.permutation(n_samples)
    return X[order], y[order]


def make_rule_concept(
    n_samples: int = 500,
    n_features: int = 10,
    n_rules: int = 3,
    flip_y: float = 0.05,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Axis-aligned rule concept (DNF of threshold conjunctions).

    Mimics the tabular UCI datasets where tree classifiers excel: the
    positive class is a union of ``n_rules`` axis-aligned boxes over a
    random pair of features each.
    """
    _check_n(n_samples)
    if n_features < 2:
        raise ValidationError("make_rule_concept needs at least 2 features")
    rng = check_random_state(random_state)
    X = rng.uniform(0.0, 1.0, size=(n_samples, n_features))
    y = np.zeros(n_samples, dtype=int)
    for _ in range(max(1, n_rules)):
        f1, f2 = rng.choice(n_features, size=2, replace=False)
        low1, high1 = np.sort(rng.uniform(0.0, 1.0, 2))
        low2, high2 = np.sort(rng.uniform(0.0, 1.0, 2))
        inside = (
            (X[:, f1] >= low1) & (X[:, f1] <= high1)
            & (X[:, f2] >= low2) & (X[:, f2] <= high2)
        )
        y |= inside.astype(int)
    if flip_y > 0.0:
        flips = rng.random(n_samples) < flip_y
        y[flips] = 1 - y[flips]
    if len(np.unique(y)) < 2:
        y[: max(1, n_samples // 10)] = 1 - y[0]
    return X, y


def make_sparse_linear(
    n_samples: int = 500,
    n_features: int = 100,
    n_informative: int = 5,
    noise: float = 0.5,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """High-dimensional linear concept with few informative features.

    Mimics text-like / micro-array-like datasets (the corpus tail up to
    4,702 features) where feature selection matters most.
    """
    _check_n(n_samples)
    n_informative = min(max(1, n_informative), n_features)
    rng = check_random_state(random_state)
    X = rng.normal(size=(n_samples, n_features))
    informative = rng.choice(n_features, size=n_informative, replace=False)
    w = rng.normal(size=n_informative) + np.sign(rng.normal(size=n_informative))
    score = X[:, informative] @ w + noise * rng.normal(size=n_samples)
    y = (score > np.median(score)).astype(int)
    return X, y


def make_polynomial_concept(
    n_samples: int = 500,
    n_features: int = 5,
    degree: int = 2,
    flip_y: float = 0.05,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Label by the sign of a random degree-``degree`` polynomial.

    Produces smoothly curved boundaries between the linear and rule-based
    extremes; kNN/MLP/boosting tend to win here.
    """
    _check_n(n_samples)
    rng = check_random_state(random_state)
    X = rng.normal(size=(n_samples, n_features))
    score = X @ rng.normal(size=n_features)
    for _ in range(max(0, degree - 1)):
        f1, f2 = rng.integers(0, n_features, size=2)
        score = score + rng.normal() * X[:, f1] * X[:, f2]
    score += 0.3 * rng.normal(size=n_samples)
    y = (score > np.median(score)).astype(int)
    if flip_y > 0.0:
        flips = rng.random(n_samples) < flip_y
        y[flips] = 1 - y[flips]
    return X, y
