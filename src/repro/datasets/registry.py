"""The 119-dataset corpus registry.

Builds a deterministic list of :class:`DatasetSpec` entries whose corpus
marginals match Figure 3 of the paper:

* domain breakdown (Fig 3a): Life Science 44, Computer & Games 18,
  Synthetic 17, Social Science 10, Physical Science 10, Financial &
  Business 7, Other 13 — total 119;
* sample counts (Fig 3b) spanning 15 … 245,057 with a log-scale CDF
  concentrated between 100 and 10k;
* feature counts (Fig 3c) spanning 1 … 4,702 concentrated between 2 and
  100.

Each spec pins a concept generator plus realism knobs (categorical
columns, missing values, class imbalance, label noise) drawn
deterministically from a per-corpus seed, so ``CORPUS[i]`` is identical in
every process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DatasetSpec",
    "CORPUS",
    "DOMAIN_COUNTS",
    "get_spec",
    "corpus_domain_breakdown",
    "PROBE_CIRCLE",
    "PROBE_LINEAR",
]

#: Figure 3(a) domain breakdown.
DOMAIN_COUNTS = {
    "life_science": 44,
    "computer_games": 18,
    "synthetic": 17,
    "social_science": 10,
    "physical_science": 10,
    "financial_business": 7,
    "other": 13,
}

#: Concept mix per domain: (concept, relative weight).  The mixes make
#: tree/rule learners win on game/business data, linear models win on
#: social/physical data, and keep life science heterogeneous — giving the
#: corpus the "no classifier dominates" property of Table 4.
_DOMAIN_CONCEPTS = {
    "life_science": [
        ("polynomial", 0.35), ("rule", 0.25), ("sparse_linear", 0.2),
        ("linear", 0.2),
    ],
    "computer_games": [("rule", 0.6), ("xor", 0.15), ("polynomial", 0.25)],
    "social_science": [("linear", 0.55), ("rule", 0.3), ("polynomial", 0.15)],
    "physical_science": [("polynomial", 0.45), ("linear", 0.4), ("radial", 0.15)],
    "financial_business": [("rule", 0.45), ("linear", 0.4), ("polynomial", 0.15)],
    "other": [
        ("linear", 0.3), ("rule", 0.3), ("polynomial", 0.25),
        ("sparse_linear", 0.15),
    ],
}

#: The 17 synthetic datasets are named generators (the paper's 16
#: scikit-learn synthetic datasets + 1); CIRCLE and LINEAR are §6's probes.
_SYNTHETIC_DATASETS = [
    ("circle", "circles", {"noise": 0.1, "factor": 0.5}),
    ("linear", "linear", {"n_features": 2, "class_sep": 2.0, "flip_y": 0.1}),
    ("moons_easy", "moons", {"noise": 0.1}),
    ("moons_hard", "moons", {"noise": 0.3}),
    ("circles_tight", "circles", {"noise": 0.05, "factor": 0.7}),
    ("circles_noisy", "circles", {"noise": 0.25, "factor": 0.5}),
    ("xor", "xor", {"noise": 0.15}),
    ("xor_high_dim", "xor", {"n_features": 10, "noise": 0.2}),
    ("spirals", "spirals", {"noise": 0.1}),
    ("spirals_long", "spirals", {"noise": 0.1, "turns": 2.5}),
    ("blobs_simple", "blobs", {"clusters_per_class": 1, "cluster_std": 1.5}),
    ("blobs_multi", "blobs", {"clusters_per_class": 3, "cluster_std": 1.0}),
    ("gauss_quantiles", "radial", {}),
    ("linear_overlap", "linear", {"n_features": 2, "class_sep": 0.8, "flip_y": 0.1}),
    ("linear_10d", "linear", {"n_features": 10, "class_sep": 1.5, "flip_y": 0.05}),
    ("linear_imbalanced", "linear", {"n_features": 5, "class_sep": 1.5, "weights": 0.85}),
    ("poly_5d", "polynomial", {"n_features": 5, "degree": 3}),
]

PROBE_CIRCLE = "synthetic/circle"
PROBE_LINEAR = "synthetic/linear"


@dataclass(frozen=True)
class DatasetSpec:
    """Immutable description of one corpus dataset.

    Attributes
    ----------
    name : str
        Unique corpus identifier, ``"<domain>/<slug>"``.
    domain : str
        Application domain (Fig 3a key).
    concept : str
        Concept generator key (see :mod:`repro.datasets.corpus`).
    n_samples : int
        Full dataset size (15 … 245,057 per Fig 3b).
    n_features : int
        Dimensionality (1 … 4,702 per Fig 3c).
    generator_kwargs : dict
        Extra arguments to the concept generator.
    n_categorical : int
        How many features are rendered as categorical strings before
        preprocessing (exercises the ordinal-encoding path of §3.1).
    missing_rate : float
        Fraction of cells blanked to NaN (exercises median imputation).
    seed : int
        Deterministic generation seed.
    """

    name: str
    domain: str
    concept: str
    n_samples: int
    n_features: int
    generator_kwargs: dict = field(default_factory=dict)
    n_categorical: int = 0
    missing_rate: float = 0.0
    seed: int = 0


def _log_uniform(rng: np.random.Generator, low: float, high: float) -> float:
    return float(np.exp(rng.uniform(np.log(low), np.log(high))))


def _draw_concept(rng: np.random.Generator, domain: str) -> str:
    concepts, weights = zip(*_DOMAIN_CONCEPTS[domain])
    probabilities = np.asarray(weights) / np.sum(weights)
    return str(rng.choice(concepts, p=probabilities))


def _sample_size(rng: np.random.Generator) -> int:
    """Sample-count distribution shaped like Fig 3b (log scale 15..245k)."""
    return max(15, int(_log_uniform(rng, 40, 60_000)))


def _feature_count(rng: np.random.Generator, concept: str) -> int:
    """Feature-count distribution shaped like Fig 3c."""
    if concept == "sparse_linear":
        return int(_log_uniform(rng, 100, 3000))
    return max(2, int(_log_uniform(rng, 2, 120)))


def _build_corpus(corpus_seed: int = 20171101) -> list[DatasetSpec]:
    """Construct all 119 specs deterministically."""
    rng = np.random.default_rng(corpus_seed)
    specs: list[DatasetSpec] = []

    # Synthetic datasets: 2 features, no categoricals/missing values —
    # exactly like the paper's sklearn-generated datasets.
    for slug, concept, kwargs in _SYNTHETIC_DATASETS:
        n_samples = max(200, int(_log_uniform(rng, 300, 3000)))
        n_features = int(kwargs.get("n_features", 2))
        specs.append(DatasetSpec(
            name=f"synthetic/{slug}",
            domain="synthetic",
            concept=concept,
            n_samples=n_samples,
            n_features=n_features,
            generator_kwargs=dict(kwargs),
            seed=int(rng.integers(0, 2**31)),
        ))

    for domain, count in DOMAIN_COUNTS.items():
        if domain == "synthetic":
            continue
        for index in range(count):
            concept = _draw_concept(rng, domain)
            n_samples = _sample_size(rng)
            n_features = _feature_count(rng, concept)
            # Social science & business data carry the most categoricals
            # and missing values; synthetic-style concepts carry none.
            categorical_share = {
                "life_science": 0.2,
                "computer_games": 0.25,
                "social_science": 0.5,
                "physical_science": 0.0,
                "financial_business": 0.4,
                "other": 0.2,
            }[domain]
            n_categorical = int(round(categorical_share * min(n_features, 20) * rng.random()))
            missing_rate = float(rng.random() < 0.4) * float(rng.uniform(0.0, 0.08))
            kwargs: dict = {}
            if concept == "linear":
                kwargs = {
                    "class_sep": float(rng.uniform(0.8, 2.5)),
                    "flip_y": float(rng.uniform(0.0, 0.12)),
                    "weights": float(rng.uniform(0.3, 0.8)),
                }
            elif concept == "rule":
                kwargs = {
                    "n_rules": int(rng.integers(1, 5)),
                    "flip_y": float(rng.uniform(0.0, 0.1)),
                }
            elif concept == "polynomial":
                kwargs = {
                    "degree": int(rng.integers(2, 4)),
                    "flip_y": float(rng.uniform(0.0, 0.1)),
                }
            elif concept == "sparse_linear":
                kwargs = {
                    "n_informative": int(rng.integers(3, 15)),
                    "noise": float(rng.uniform(0.2, 1.0)),
                }
            elif concept == "xor":
                kwargs = {"noise": float(rng.uniform(0.1, 0.3))}
            specs.append(DatasetSpec(
                name=f"{domain}/{domain[:4]}_{index:02d}",
                domain=domain,
                concept=concept,
                n_samples=n_samples,
                n_features=n_features,
                generator_kwargs=kwargs,
                n_categorical=n_categorical,
                missing_rate=missing_rate,
                seed=int(rng.integers(0, 2**31)),
            ))

    # Pin the corpus extremes to the exact values reported in §3.1:
    # smallest dataset 15 samples, largest 245,057; dimensionality from
    # 1 to 4,702 features.
    def _replace(index: int, **changes) -> None:
        spec = specs[index]
        values = spec.__dict__ | changes
        specs[index] = DatasetSpec(**values)

    by_domain_first = {s.domain: i for i, s in reversed(list(enumerate(specs)))}
    _replace(
        by_domain_first["life_science"],
        n_samples=15, n_features=4, concept="linear",
        generator_kwargs={"class_sep": 2.5, "flip_y": 0.0},
        n_categorical=0, missing_rate=0.0,
    )
    _replace(
        by_domain_first["computer_games"],
        n_samples=245_057, n_features=4, concept="rule",
        generator_kwargs={"n_rules": 2, "flip_y": 0.02},
        n_categorical=0, missing_rate=0.0,
    )
    _replace(
        by_domain_first["social_science"],
        n_samples=1_000, n_features=1, concept="linear",
        generator_kwargs={"class_sep": 1.5, "flip_y": 0.05},
        n_categorical=0, missing_rate=0.0,
    )
    _replace(
        by_domain_first["other"],
        n_samples=300, n_features=4_702, concept="sparse_linear",
        generator_kwargs={"n_informative": 10, "noise": 0.3},
        n_categorical=0, missing_rate=0.0,
    )
    return specs


#: The full, deterministic 119-dataset corpus.
CORPUS: list[DatasetSpec] = _build_corpus()

_BY_NAME = {spec.name: spec for spec in CORPUS}


def get_spec(name: str) -> DatasetSpec:
    """Look up a corpus dataset by its ``"<domain>/<slug>"`` name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"no corpus dataset named {name!r}; see repro.datasets.CORPUS"
        ) from None


def corpus_domain_breakdown() -> dict[str, int]:
    """Return domain -> dataset count (reproduces Fig 3a)."""
    breakdown: dict[str, int] = {}
    for spec in CORPUS:
        breakdown[spec.domain] = breakdown.get(spec.domain, 0) + 1
    return breakdown
