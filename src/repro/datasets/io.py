"""Loading user-supplied datasets (CSV) through the paper's preprocessing.

The corpus is synthetic, but a downstream user's data is a CSV of mixed
numeric/categorical columns with missing cells — exactly what the paper
uploaded to the platforms after local preprocessing (§3.1).  This module
turns such a file into a :class:`~repro.datasets.corpus.Dataset`:
categoricals ordinal-encoded, missing values median-imputed, binary label
extracted.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.datasets.corpus import Dataset, preprocess
from repro.datasets.registry import DatasetSpec
from repro.exceptions import ValidationError

__all__ = ["load_csv", "save_csv"]

_MISSING_TOKENS = {"", "?", "na", "n/a", "nan", "null", "none"}


def _parse_cell(token: str):
    stripped = token.strip()
    if stripped.lower() in _MISSING_TOKENS:
        return None
    try:
        return float(stripped)
    except ValueError:
        return stripped


def load_csv(
    path,
    label_column: str | int = -1,
    name: str | None = None,
    domain: str = "external",
    has_header: bool = True,
) -> Dataset:
    """Load a CSV file as a preprocessed binary-classification dataset.

    Parameters
    ----------
    path : path-like
        CSV file; delimiter is sniffed.
    label_column : str or int
        Column holding the class label — a header name, or an index
        (negative indices allowed; default: last column).
    name : str or None
        Dataset name; defaults to the file stem.
    domain : str
        Domain tag used by the per-domain analyses.
    has_header : bool
        Whether the first row is a header.

    Raises
    ------
    ValidationError
        On empty files, ragged rows, unknown label columns, or labels
        with anything other than exactly two classes.
    """
    path = Path(path)
    text = path.read_text()
    if not text.strip():
        raise ValidationError(f"{path} is empty")
    try:
        dialect = csv.Sniffer().sniff(text[:4096], delimiters=",;\t|")
    except csv.Error:
        dialect = csv.excel
    rows = [row for row in csv.reader(text.splitlines(), dialect) if row]
    header: list[str] | None = None
    if has_header:
        header = [cell.strip() for cell in rows[0]]
        rows = rows[1:]
    if not rows:
        raise ValidationError(f"{path} has no data rows")
    width = len(rows[0])
    for i, row in enumerate(rows):
        if len(row) != width:
            raise ValidationError(
                f"{path}: row {i + 1} has {len(row)} cells, expected {width}"
            )

    if isinstance(label_column, str):
        if header is None:
            raise ValidationError(
                "label_column by name requires has_header=True"
            )
        try:
            label_index = header.index(label_column)
        except ValueError:
            raise ValidationError(
                f"no column named {label_column!r}; columns: {header}"
            ) from None
    else:
        label_index = int(label_column)
        if label_index < 0:
            label_index += width
        if not 0 <= label_index < width:
            raise ValidationError(
                f"label column index {label_column} out of range for "
                f"{width} columns"
            )

    labels_raw = [row[label_index].strip() for row in rows]
    classes = sorted(set(labels_raw))
    if len(classes) != 2:
        raise ValidationError(
            f"binary classification requires exactly 2 label values, "
            f"got {len(classes)}: {classes[:5]}"
        )
    y = np.array([classes.index(value) for value in labels_raw], dtype=int)

    table = np.array(
        [
            [_parse_cell(cell) for j, cell in enumerate(row) if j != label_index]
            for row in rows
        ],
        dtype=object,
    )
    if table.shape[1] == 0:
        raise ValidationError("no feature columns besides the label")
    X, y = preprocess(table, y)

    spec = DatasetSpec(
        name=name or path.stem,
        domain=domain,
        concept="external",
        n_samples=X.shape[0],
        n_features=X.shape[1],
    )
    return Dataset(spec=spec, X=X, y=y)


def save_csv(dataset: Dataset, path, label_name: str = "label") -> None:
    """Write a dataset back out as a CSV with a header row."""
    path = Path(path)
    header = [f"f{j}" for j in range(dataset.X.shape[1])] + [label_name]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for features, label in zip(dataset.X, dataset.y):
            writer.writerow([*(repr(float(v)) for v in features), int(label)])
