"""Process-sharded campaign engine: full-corpus grids past the GIL.

The thread-pooled :class:`~repro.service.scheduler.CampaignScheduler`
overlaps *waiting* (request latency, rate-limit backoff) but cannot
overlap *compute*: the paper's headline grid — every dataset × every
platform × the per-platform configuration space (Table 3 / Fig. 4) — is
CPU-bound training, and the GIL serializes it.  This module fans that
grid out over a :class:`concurrent.futures.ProcessPoolExecutor` instead:

* the job table is partitioned into **dataset-keyed shards**
  (:class:`~repro.service.dag.CampaignDAG`) — one dataset's arrays ship
  across the pickling boundary once, not once per job;
* each shard runs :func:`run_shard`, a **module-level** worker function
  taking one picklable :class:`ShardTask` (the boundary the race tool's
  C204 rule models: no closures, locks, or bound methods cross);
* inside a shard, every platform is constructed fresh and shares one
  externally-owned :class:`~repro.learn.cache.FitCache`, so identical
  pipeline-stage fits across candidates (and across platforms) are
  computed once per shard; the per-shard hit/miss stats come back with
  the results and merge in serial shard order
  (:func:`merge_cache_stats`);
* results are stitched into **serial-index slots**
  (:func:`stitch_results`), so the merged
  :class:`~repro.core.results.ResultStore` is bit-for-bit identical to
  the serial sweep regardless of process count or completion order.

Determinism holds for the same reason as the thread scheduler's
contract, one level deeper: every job's model seed is derived from
(platform seed, training bytes, configuration) — never from process
identity, shard order, or wall-clock — so only *ordering* needs pinning,
and the slot table pins it.

Interrupted campaigns resume from the engine's checkpoints: after each
completed shard the completed slots are rewritten atomically (the
``*.tmp`` + ``os.replace`` discipline of :meth:`ResultStore.save`), and
a resumed run marks checkpointed jobs done in the DAG and re-runs only
the remainder.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.results import ResultStore
from repro.core.runner import ExperimentRunner
from repro.datasets.corpus import Dataset
from repro.exceptions import ValidationError
from repro.learn.cache import FitCache
from repro.service.dag import CampaignDAG
from repro.service.scheduler import _resume_index, build_campaign
from repro.service.telemetry import Telemetry

__all__ = [
    "PlatformSpec",
    "ShardTask",
    "ShardResult",
    "ShardedCampaign",
    "merge_cache_stats",
    "run_shard",
    "stitch_results",
]


@dataclass(frozen=True)
class PlatformSpec:
    """Everything a worker process needs to rebuild one platform.

    The platform *instance* never crosses the process boundary (it owns
    a lock-bearing FitCache and possibly an injected clock); its class —
    picklable by reference — and constructor arguments do.
    """

    name: str
    cls: type
    random_state: int
    synchronous: bool
    rate_limit_per_minute: int | None


@dataclass(frozen=True)
class ShardTask:
    """One shard's worth of work, fully picklable.

    ``entries`` holds ``(serial_index, platform_name, configuration)``
    triples in ascending serial order; the dataset rides along once for
    the whole shard.
    """

    shard_id: int
    dataset: Dataset
    entries: tuple
    platforms: tuple
    test_size: float
    split_seed: int


@dataclass(frozen=True)
class ShardResult:
    """What a shard worker ships back: results plus cache accounting."""

    shard_id: int
    dataset: str
    results: tuple          # ((serial_index, ExperimentResult), ...)
    cache_stats: dict       # FitCache.stats() of the shard's shared cache


def run_shard(task: ShardTask) -> ShardResult:
    """Execute one shard in a worker process (module-level: picklable).

    Platforms are constructed on demand from their specs, all sharing
    one shard-wide :class:`FitCache`; the runner re-derives the same
    70/30 split the serial sweep uses from the shipped ``split_seed``.
    """
    cache = FitCache()
    specs = {spec.name: spec for spec in task.platforms}
    platforms: dict = {}
    runner = ExperimentRunner(test_size=task.test_size,
                              split_seed=task.split_seed)
    split = runner.split(task.dataset)
    results = []
    for index, platform_name, configuration in task.entries:
        platform = platforms.get(platform_name)
        if platform is None:
            spec = specs[platform_name]
            platform = spec.cls(
                random_state=spec.random_state,
                synchronous=spec.synchronous,
                rate_limit_per_minute=spec.rate_limit_per_minute,
                fit_cache=cache,
            )
            platforms[platform_name] = platform
        results.append((
            index,
            runner.run_one(platform, task.dataset, configuration, split),
        ))
    return ShardResult(
        shard_id=task.shard_id,
        dataset=task.dataset.name,
        results=tuple(results),
        cache_stats=cache.stats(),
    )


def stitch_results(slots: list, shard_results: Iterable[ShardResult]) -> list:
    """Fill serial-index slots from shard results, in any arrival order.

    Each result carries the index it would have in the serial
    platform → dataset → configuration loop, so writing by index makes
    the filled table — and therefore the merged store — independent of
    shard completion order.
    """
    for shard_result in shard_results:
        for index, result in shard_result.results:
            slots[index] = result
    return slots


def merge_cache_stats(stats_by_shard: Mapping[int, dict]) -> dict:
    """Combine per-shard FitCache stats in serial shard order.

    Addition is commutative, but iterating shards by id anyway makes the
    merge auditable: the same campaign always reports its totals from
    the same traversal, whatever order the shards finished in.
    """
    merged = {"entries": 0, "hits": 0, "misses": 0}
    for shard_id in sorted(stats_by_shard):
        stats = stats_by_shard[shard_id]
        for key in merged:
            merged[key] += int(stats[key])
    return merged


def _platform_spec(platform) -> PlatformSpec:
    """Validate and capture how to rebuild a platform in a worker.

    Process sharding re-imports the platform's class by reference, so
    the class must live at module level; an injected clock cannot cross
    the boundary (the rebuilt platform would silently fall back to wall
    time, desynchronizing its rate-limit windows from the parent's).
    """
    cls = type(platform)
    module = sys.modules.get(cls.__module__)
    if ("." in cls.__qualname__ or module is None
            or getattr(module, cls.__qualname__, None) is not cls):
        raise ValidationError(
            f"platform class {cls.__qualname__!r} is not module-level "
            "importable; process-sharded campaigns rebuild platforms in "
            "worker processes and can only ship classes picklable by "
            "reference"
        )
    if getattr(platform, "_clock", None) not in (None, time.monotonic):
        raise ValidationError(
            f"platform {platform.name!r} has an injected clock; clocks "
            "cannot cross the process boundary — run process-sharded "
            "campaigns with the default monotonic clock"
        )
    return PlatformSpec(
        name=platform.name,
        cls=cls,
        random_state=platform.random_state,
        synchronous=platform.synchronous,
        rate_limit_per_minute=platform.rate_limit_per_minute,
    )


class ShardedCampaign:
    """Run a measurement campaign across a process pool, deterministically.

    Parameters
    ----------
    processes : int
        Worker-process count.  ``processes=1`` still runs through the
        pool (one worker), exercising the identical code path.
    telemetry : Telemetry or None
        Metrics sink (a fresh one by default; exposed as ``.telemetry``).
    max_inflight_per_worker : int
        Bound on queued-but-unfinished shard submissions per worker, so
        a 119-dataset campaign does not serialize its whole corpus into
        the executor's call queue up front.
    """

    def __init__(
        self,
        processes: int = 4,
        telemetry: Telemetry | None = None,
        max_inflight_per_worker: int = 2,
    ):
        if processes < 1:
            raise ValidationError(
                f"processes must be >= 1, got {processes}"
            )
        if max_inflight_per_worker < 1:
            raise ValidationError(
                f"max_inflight_per_worker must be >= 1, "
                f"got {max_inflight_per_worker}"
            )
        self.processes = int(processes)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.max_inflight_per_worker = int(max_inflight_per_worker)
        #: Merged FitCache accounting of the most recent run.
        self.fit_cache_stats: dict = merge_cache_stats({})
        #: The most recent run's DAG (state summary for inspection).
        self.dag: CampaignDAG | None = None

    def run(
        self,
        runner: ExperimentRunner,
        platforms: Sequence,
        datasets: Sequence[Dataset],
        configurations,
        resume_from: ResultStore | None = None,
        checkpoint_path=None,
        checkpoint_every: int = 1,
        max_shards: int | None = None,
    ) -> ResultStore:
        """Execute the campaign; returns results in serial sweep order.

        ``resume_from`` fills matching slots without re-measuring (the
        checkpoint is the persisted DAG state); ``checkpoint_path`` is
        atomically rewritten every ``checkpoint_every`` completed shards
        and at the end.  ``max_shards`` stops dispatch after that many
        shards (serial shard order) — a budgeted run whose checkpoint a
        later invocation resumes, and the unit tests' stand-in for a
        mid-campaign kill.
        """
        platforms = list(platforms)
        datasets = list(datasets)
        specs = tuple(_platform_spec(platform) for platform in platforms)
        jobs = build_campaign(platforms, datasets, configurations)
        dag = CampaignDAG.from_jobs(jobs)
        self.dag = dag
        datasets_by_name = {dataset.name: dataset for dataset in datasets}

        slots: list = [None] * len(jobs)
        resumable = _resume_index(resume_from, {p.name for p in platforms})
        recovered = []
        for job in jobs:
            previous = resumable.pop(job.key(), None)
            if previous is not None:
                slots[job.index] = previous
                recovered.append(job.index)
        resumed = dag.apply_resume(recovered)
        self.telemetry.increment("jobs_total", len(jobs))
        self.telemetry.increment("jobs_resumed", resumed)
        self.telemetry.increment("shards_total", len(dag.shards))

        tasks = [
            ShardTask(
                shard_id=shard.shard_id,
                dataset=datasets_by_name[shard.dataset],
                entries=tuple(
                    (index, jobs[index].platform_name,
                     jobs[index].configuration)
                    for index in dag.pending_jobs(shard.shard_id)
                ),
                platforms=specs,
                test_size=runner.test_size,
                split_seed=runner.split_seed,
            )
            for shard in dag.pending_shards()
        ]
        if max_shards is not None:
            tasks = tasks[:max(0, max_shards)]

        errors: list = []
        if tasks:
            self._execute(tasks, dag, slots, checkpoint_path,
                          checkpoint_every, errors)

        self.telemetry.increment(
            "jobs_failed",
            sum(1 for r in slots if r is not None and not r.ok),
        )
        store = ResultStore(result for result in slots if result is not None)
        if checkpoint_path is not None and tasks:
            store.save(checkpoint_path)
        if errors:
            raise errors[0]
        return store

    # -- process pool ------------------------------------------------------

    def _execute(self, tasks, dag, slots, checkpoint_path,
                 checkpoint_every, errors) -> None:
        """Fan shards out over the pool; stitch and checkpoint as they land."""
        max_workers = max(1, min(self.processes, len(tasks)))
        inflight_cap = max_workers * self.max_inflight_per_worker
        cache_stats: dict[int, dict] = {}
        queue = list(reversed(tasks))   # pop() dispatches in serial order
        completed = 0
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures: dict = {}
            while queue or futures:
                while queue and len(futures) < inflight_cap:
                    task = queue.pop()
                    dag.mark_shard_running(task.shard_id)
                    futures[pool.submit(run_shard, task)] = task.shard_id
                finished, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    shard_id = futures.pop(future)
                    error = future.exception()
                    if error is not None:
                        dag.mark_shard_failed(shard_id)
                        self.telemetry.increment("shards_failed")
                        errors.append(error)
                        continue
                    shard_result = future.result()
                    stitch_results(slots, [shard_result])
                    for index, _ in shard_result.results:
                        dag.mark_job_done(index)
                    cache_stats[shard_id] = shard_result.cache_stats
                    self.telemetry.increment("shards_done")
                    completed += 1
                    if (checkpoint_path is not None
                            and completed % checkpoint_every == 0):
                        _checkpoint_completed(slots, checkpoint_path)
        self.fit_cache_stats = merge_cache_stats(cache_stats)
        for key, value in sorted(self.fit_cache_stats.items()):
            self.telemetry.increment(f"fit_cache_{key}", value)


def _checkpoint_completed(slots, checkpoint_path) -> None:
    """Atomically checkpoint the completed slots, in serial order.

    :meth:`ResultStore.save` writes via ``*.tmp`` + ``os.replace``: a
    kill at any instant leaves the previous complete checkpoint or this
    one, never a truncated file.
    """
    ResultStore(
        result for result in slots if result is not None
    ).save(checkpoint_path)
