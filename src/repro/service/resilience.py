"""Resilient platform client: bounded retries with deterministic backoff.

§3.2 of the paper notes that quota throttling forced the authors to pace
and restart their measurement scripts.  :class:`ResilientClient` bakes
that operational knowledge into a client-side wrapper over the platform
service API: every call is retried on :class:`QuotaExceededError` (and
on *transient* :class:`JobFailedError`\\ s) with seeded-jitter exponential
backoff, bounded by a :class:`RetryPolicy`.

Determinism contract: the jitter RNG is seeded from ``(seed, platform
name)`` via crc32 — the same derivation pattern as per-job seeds in
:mod:`repro.platforms.base` — and backoff waits go through the injected
clock (a :class:`~repro.service.clock.VirtualClock` by default), so a
retried campaign behaves identically on every machine and run.

The client exposes exactly the platform surface
:meth:`repro.core.runner.ExperimentRunner.run_one` drives
(``upload_dataset`` / ``create_model`` / ``get_model`` /
``batch_predict`` / ``delete_dataset`` plus ``name``), so the runner
works against a wrapped platform unchanged.  Calls are additionally
serialized through a per-client lock, making a shared platform instance
safe to drive from scheduler worker threads.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    JobFailedError,
    QuotaExceededError,
    ValidationError,
)
from repro.service.clock import VirtualClock
from repro.service.telemetry import Telemetry

__all__ = ["RetryPolicy", "ResilientClient", "is_transient"]

#: Message fragments marking a JobFailedError as retryable: the job is
#: merely not finished yet (poll again), as opposed to terminally FAILED.
_TRANSIENT_FRAGMENTS = ("not ready", "queued but not in the job queue")


def is_transient(exc: Exception) -> bool:
    """Whether an exception is worth retrying.

    Quota errors always are — the quota window rolls forward.  A
    :class:`JobFailedError` is transient only when it reports the job as
    unfinished rather than failed; a model that trained and FAILED will
    fail identically on every retry.
    """
    if isinstance(exc, QuotaExceededError):
        return True
    if isinstance(exc, JobFailedError):
        message = str(exc)
        return any(fragment in message for fragment in _TRANSIENT_FRAGMENTS)
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with symmetric jitter.

    Attempt ``k`` (1-based) that fails transiently waits
    ``min(base_delay * multiplier**(k-1), max_delay) * (1 + jitter*u)``
    with ``u`` drawn uniformly from ``[-1, 1)`` by the client's seeded
    RNG, then retries — up to ``max_attempts`` total attempts.
    """

    max_attempts: int = 5
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("backoff delays cannot be negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay(self, attempt: int, u: float = 0.0) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        raw = self.base_delay * self.multiplier ** (attempt - 1)
        return max(0.0, min(raw, self.max_delay) * (1.0 + self.jitter * u))


class ResilientClient:
    """Retrying, thread-safe facade over one :class:`MLaaSPlatform`.

    Parameters
    ----------
    platform : MLaaSPlatform
        The wrapped service instance.
    policy : RetryPolicy
        Backoff/retry bounds (defaults to :class:`RetryPolicy`).
    clock : VirtualClock or WallClock
        Where backoff sleeps go.  Share the platform's rate-limiter
        clock (``MLaaSPlatform(clock=...)``) so waiting out a quota
        window actually rolls the window forward.
    telemetry : Telemetry
        Request/error accounting sink (a private one by default).
    seed : int
        Root of the deterministic jitter stream, combined with the
        platform name so every client jitters independently.
    """

    def __init__(
        self,
        platform,
        policy: RetryPolicy | None = None,
        clock=None,
        telemetry: Telemetry | None = None,
        seed: int = 0,
    ):
        self.platform = platform
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else VirtualClock()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        derived = zlib.crc32(f"{seed}:backoff:{platform.name}".encode())
        self._rng = np.random.default_rng(derived)
        self._lock = threading.RLock()

    @property
    def name(self) -> str:
        """The wrapped platform's name (runner-facing identity)."""
        return self.platform.name

    # -- platform surface (the exact API ExperimentRunner.run_one uses) --

    def upload_dataset(self, X, y, name: str = "dataset") -> str:
        """Upload a training dataset with retries; returns its id."""
        return self._call("upload_dataset", self.platform.upload_dataset,
                          X, y, name=name)

    def create_model(
        self,
        dataset_id: str,
        classifier: str | None = None,
        params=None,
        feature_selection: str | None = None,
    ) -> str:
        """Launch a training job with retries; returns the model id.

        On asynchronous platforms the client then polls the job to a
        terminal state (``await_model``) before returning, giving the
        caller the same ready-model contract as synchronous mode — the
        poll-based shape of the real web APIs.
        """
        model_id = self._call(
            "create_model", self.platform.create_model, dataset_id,
            classifier=classifier, params=params,
            feature_selection=feature_selection,
        )
        if not self.platform.synchronous:
            self.await_model(model_id)
        return model_id

    def get_model(self, model_id: str):
        """Poll a model's job state with retries."""
        return self._call("get_model", self.platform.get_model, model_id)

    def await_model(self, model_id: str):
        """Poll a job to a terminal state with retries."""
        return self._call("await_model", self.platform.await_model, model_id)

    def batch_predict(self, model_id: str, X):
        """Batch-predict against a trained model with retries."""
        return self._call("batch_predict", self.platform.batch_predict,
                          model_id, X)

    def delete_dataset(self, dataset_id: str) -> None:
        """Delete an uploaded dataset with retries."""
        return self._call("delete_dataset", self.platform.delete_dataset,
                          dataset_id)

    # -- retry engine ----------------------------------------------------

    def _call(self, operation: str, fn, *args, **kwargs):
        """Run one platform call under the retry policy.

        Transient failures (see :func:`is_transient`) back off and retry
        up to ``policy.max_attempts``; anything else — and the final
        transient failure — propagates to the caller after telemetry is
        recorded, where the runner's failed-measurement handling applies.
        """
        started = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                with self._lock:
                    result = fn(*args, **kwargs)
            except (QuotaExceededError, JobFailedError) as exc:
                self.telemetry.record_error(self.name, type(exc).__name__)
                if not is_transient(exc) or attempts >= self.policy.max_attempts:
                    self.telemetry.record_request(
                        self.name, operation, attempts=attempts,
                        seconds=time.perf_counter() - started,
                        outcome="error",
                    )
                    raise
                # Draw under the client lock: with per_platform_cap > 1
                # two threads retrying the same platform would otherwise
                # race on the generator's internal state.
                with self._lock:
                    u = float(self._rng.uniform(-1.0, 1.0))
                self.clock.sleep(self.policy.delay(attempts, u))
                continue
            self.telemetry.record_request(
                self.name, operation, attempts=attempts,
                seconds=time.perf_counter() - started,
            )
            return result
