"""Time sources for campaign orchestration.

The paper's measurement campaign ran for months against rate-limited web
APIs (§3.2, §8): quota windows, backoff waits and polling pace are all
*time-dependent* behaviour.  Reproducing that behaviour must not cost
calendar time, and must not depend on the wall clock of the machine the
reproduction runs on — so the service layer threads an explicit clock
through every component that waits:

* :class:`VirtualClock` — a thread-safe simulated monotonic clock.
  ``sleep`` *advances* virtual time instead of blocking, so a campaign
  that "waits out" a rolling-minute quota window completes in
  microseconds, identically on every machine.  Sharing one instance
  between the platforms' rate limiters (``MLaaSPlatform(clock=...)``)
  and the :class:`~repro.service.resilience.ResilientClient` backoff is
  what makes retry behaviour simulated, fast, and reproducible.
* :class:`WallClock` — the same interface over ``time.monotonic`` /
  ``time.sleep``, for campaigns that really should pace themselves
  (e.g. driving an actual remote service).
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import ValidationError

__all__ = ["VirtualClock", "WallClock"]


class VirtualClock:
    """Thread-safe simulated monotonic clock shared across the service.

    Calling the instance returns the current virtual time in seconds, so
    it drops straight into ``MLaaSPlatform(clock=...)``.  ``sleep``
    advances the clock instead of blocking, which turns every quota
    window and backoff delay of a campaign into pure bookkeeping.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._slept = 0.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        return self.now()

    def now(self) -> float:
        """Current virtual time in seconds."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move virtual time forward; returns the new time."""
        if seconds < 0:
            raise ValidationError(
                f"cannot advance a monotonic clock by {seconds!r} seconds"
            )
        with self._lock:
            self._now += float(seconds)
            return self._now

    def sleep(self, seconds: float) -> None:
        """Simulated sleep: advances virtual time without blocking."""
        if seconds < 0:
            raise ValidationError(
                f"cannot sleep for {seconds!r} seconds"
            )
        with self._lock:
            self._now += float(seconds)
            self._slept += float(seconds)

    @property
    def total_slept(self) -> float:
        """Cumulative virtual seconds spent in :meth:`sleep`.

        This is the calendar time a real campaign would have burned
        waiting on quotas — reported by telemetry so the cost of rate
        limits is visible even though the simulation pays nothing.
        """
        with self._lock:
            return self._slept


class WallClock:
    """Real time behind the same interface as :class:`VirtualClock`.

    Use when a campaign must genuinely pace itself (actual remote
    services); everywhere else prefer :class:`VirtualClock` so runs are
    fast and machine-independent.
    """

    def __call__(self) -> float:
        return self.now()

    def now(self) -> float:
        """Current monotonic wall time in seconds."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Really block for ``seconds`` (clamped at zero)."""
        if seconds > 0:
            time.sleep(seconds)
