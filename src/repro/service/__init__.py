"""Campaign orchestration service layer (``repro.service``).

Turns the job-oriented platform simulators into infrastructure that can
serve a paper-scale measurement campaign (§3.2 ran ~1.7M API calls
against six rate-limited services):

* :mod:`repro.service.clock` — virtual/wall time sources; a shared
  :class:`VirtualClock` makes quota windows and backoff waits simulated,
  fast, and reproducible.
* :mod:`repro.service.resilience` — :class:`ResilientClient`, a retrying
  thread-safe facade over a platform with deterministic seeded-jitter
  exponential backoff under a :class:`RetryPolicy`.
* :mod:`repro.service.telemetry` — counters, latency/attempt histograms
  and per-platform request accounting with JSON snapshot export.
* :mod:`repro.service.scheduler` — :class:`CampaignScheduler`, a worker
  pool with fair round-robin dispatch, per-platform concurrency caps,
  backpressure, and checkpoint/resume, whose results are bit-identical
  to the serial sweep regardless of worker count.

Entry points: ``MLaaSStudy(workers=...)`` routes the study protocols
through a scheduler, and the ``repro campaign`` CLI runs one from the
command line.
"""

from repro.service.clock import VirtualClock, WallClock
from repro.service.resilience import ResilientClient, RetryPolicy, is_transient
from repro.service.scheduler import (
    CampaignJob,
    CampaignScheduler,
    build_campaign,
)
from repro.service.telemetry import (
    Counter,
    Histogram,
    Telemetry,
    exact_quantile,
    percentile_summary,
)

__all__ = [
    "CampaignJob",
    "CampaignScheduler",
    "Counter",
    "Histogram",
    "ResilientClient",
    "RetryPolicy",
    "Telemetry",
    "VirtualClock",
    "WallClock",
    "build_campaign",
    "exact_quantile",
    "is_transient",
    "percentile_summary",
]
