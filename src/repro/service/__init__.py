"""Campaign orchestration service layer (``repro.service``).

Turns the job-oriented platform simulators into infrastructure that can
serve a paper-scale measurement campaign (§3.2 ran ~1.7M API calls
against six rate-limited services):

* :mod:`repro.service.clock` — virtual/wall time sources; a shared
  :class:`VirtualClock` makes quota windows and backoff waits simulated,
  fast, and reproducible.
* :mod:`repro.service.resilience` — :class:`ResilientClient`, a retrying
  thread-safe facade over a platform with deterministic seeded-jitter
  exponential backoff under a :class:`RetryPolicy`.
* :mod:`repro.service.telemetry` — counters, latency/attempt histograms
  and per-platform request accounting with JSON snapshot export.
* :mod:`repro.service.scheduler` — :class:`CampaignScheduler`, a worker
  pool with fair round-robin dispatch, per-platform concurrency caps,
  backpressure, and checkpoint/resume, whose results are bit-identical
  to the serial sweep regardless of worker count.
* :mod:`repro.service.dag` / :mod:`repro.service.sharding` —
  :class:`CampaignDAG` and :class:`ShardedCampaign`: the CPU-bound
  full-corpus grid partitioned into dataset-keyed shards, fanned out
  over a process pool past the GIL, stitched back into serial-index
  slots (bit-identical to serial), checkpointed atomically per shard
  and resumable from the standard ResultStore checkpoint.

Entry points: ``MLaaSStudy(workers=...)`` routes the study protocols
through a thread scheduler, ``MLaaSStudy(processes=...)`` through the
process-sharded engine, and the ``repro campaign`` CLI runs either from
the command line.
"""

from repro.service.clock import VirtualClock, WallClock
from repro.service.dag import CampaignDAG, JobStatus, ShardNode
from repro.service.resilience import ResilientClient, RetryPolicy, is_transient
from repro.service.scheduler import (
    CampaignJob,
    CampaignScheduler,
    build_campaign,
)
from repro.service.sharding import (
    PlatformSpec,
    ShardResult,
    ShardTask,
    ShardedCampaign,
    merge_cache_stats,
    run_shard,
    stitch_results,
)
from repro.service.telemetry import (
    Counter,
    Histogram,
    Telemetry,
    exact_quantile,
    percentile_summary,
)

__all__ = [
    "CampaignDAG",
    "CampaignJob",
    "CampaignScheduler",
    "Counter",
    "Histogram",
    "JobStatus",
    "PlatformSpec",
    "ResilientClient",
    "RetryPolicy",
    "ShardNode",
    "ShardResult",
    "ShardTask",
    "ShardedCampaign",
    "Telemetry",
    "VirtualClock",
    "WallClock",
    "build_campaign",
    "exact_quantile",
    "is_transient",
    "merge_cache_stats",
    "percentile_summary",
    "run_shard",
    "stitch_results",
]
