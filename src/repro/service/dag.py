"""Resumable campaign DAG: dataset-keyed shards with per-job states.

A full-corpus campaign is a job table (the serial platform → dataset →
configuration enumeration of :func:`repro.service.scheduler.build_campaign`)
that the process-sharded engine partitions by **dataset**: every job that
measures one dataset lands in that dataset's shard, because the dataset's
arrays are the expensive thing to ship across the process boundary and
every platform re-derives its per-job seed from (platform seed, data,
configuration) — so a shard is self-contained and order-free.

The DAG itself is deliberately shallow: every shard node feeds one
implicit *merge* node (the stitch back into serial-index slots), and
shards have no edges between each other — they are independent by
construction.  What the DAG tracks is **state**: each job is
``pending`` → ``running`` → ``done`` | ``failed``, and a shard's state is
derived from its jobs.  State is *persisted through the existing
checkpoint format*: a completed job's :class:`~repro.core.results.ExperimentResult`
appears in the ResultStore JSON checkpoint, so resuming is
:meth:`CampaignDAG.apply_resume` over the loaded store — no second
manifest file that could drift from the results it describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.exceptions import ValidationError

__all__ = ["JobStatus", "ShardNode", "CampaignDAG"]


class JobStatus(str, Enum):
    """Lifecycle of one campaign job (and, derived, of one shard)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class ShardNode:
    """One DAG node: every job of one dataset, pinned to serial indices."""

    shard_id: int
    dataset: str
    job_indices: tuple

    def __len__(self) -> int:
        return len(self.job_indices)


class CampaignDAG:
    """Shard nodes plus per-job state over a campaign job table.

    Built from the serial job enumeration with :meth:`from_jobs`; shards
    appear in first-dataset-seen order (the serial dataset order), so
    every derived ordering — shard dispatch, checkpoint content, cache
    stat merges — is deterministic and independent of completion order.
    """

    def __init__(self, shards: Sequence[ShardNode], n_jobs: int):
        self.shards = list(shards)
        covered = [index for shard in self.shards
                   for index in shard.job_indices]
        if sorted(covered) != list(range(n_jobs)):
            raise ValidationError(
                "shards must partition the job table exactly: "
                f"{len(covered)} covered of {n_jobs} jobs"
            )
        self._job_status = [JobStatus.PENDING] * n_jobs
        self._shard_failed = [False] * len(self.shards)
        self._by_dataset = {shard.dataset: shard for shard in self.shards}

    @staticmethod
    def from_jobs(jobs: Iterable) -> "CampaignDAG":
        """Group a serial job enumeration into dataset-keyed shards."""
        jobs = list(jobs)
        by_dataset: dict[str, list[int]] = {}
        for job in jobs:
            by_dataset.setdefault(job.dataset.name, []).append(job.index)
        shards = [
            ShardNode(shard_id=shard_id, dataset=dataset,
                      job_indices=tuple(sorted(indices)))
            for shard_id, (dataset, indices) in enumerate(by_dataset.items())
        ]
        return CampaignDAG(shards, n_jobs=len(jobs))

    # -- state transitions -------------------------------------------------

    def job_status(self, index: int) -> JobStatus:
        """Current state of one job by its serial index."""
        return self._job_status[index]

    def mark_job_done(self, index: int) -> None:
        """Record one completed measurement."""
        self._job_status[index] = JobStatus.DONE

    def apply_resume(self, done_indices: Iterable[int]) -> int:
        """Mark checkpoint-recovered jobs done; returns how many.

        ``done_indices`` come from matching a loaded ResultStore
        checkpoint against the job table (the scheduler's resume-index
        pattern) — the checkpoint *is* the persisted DAG state.
        """
        count = 0
        for index in done_indices:
            if self._job_status[index] is not JobStatus.DONE:
                self._job_status[index] = JobStatus.DONE
                count += 1
        return count

    def mark_shard_running(self, shard_id: int) -> None:
        """Move every pending job of a dispatched shard to running."""
        for index in self.shards[shard_id].job_indices:
            if self._job_status[index] is JobStatus.PENDING:
                self._job_status[index] = JobStatus.RUNNING

    def mark_shard_failed(self, shard_id: int) -> None:
        """Record a shard whose worker raised; its open jobs fail."""
        self._shard_failed[shard_id] = True
        for index in self.shards[shard_id].job_indices:
            if self._job_status[index] is not JobStatus.DONE:
                self._job_status[index] = JobStatus.FAILED

    # -- derived views -----------------------------------------------------

    def shard_status(self, shard_id: int) -> JobStatus:
        """A shard's state, derived from its jobs (failed wins, then
        running, then pending; done only when every job is done)."""
        if self._shard_failed[shard_id]:
            return JobStatus.FAILED
        statuses = {self._job_status[index]
                    for index in self.shards[shard_id].job_indices}
        for status in (JobStatus.FAILED, JobStatus.RUNNING, JobStatus.PENDING):
            if status in statuses:
                return status
        return JobStatus.DONE

    def pending_jobs(self, shard_id: int) -> list:
        """Serial indices of a shard's not-yet-done jobs."""
        return [index for index in self.shards[shard_id].job_indices
                if self._job_status[index] is not JobStatus.DONE]

    def pending_shards(self) -> list:
        """Shards with at least one job still to run, in serial order."""
        return [shard for shard in self.shards
                if self.pending_jobs(shard.shard_id)]

    def merge_ready(self) -> bool:
        """True when every shard is done — the merge node can fire."""
        return all(self.shard_status(shard.shard_id) is JobStatus.DONE
                   for shard in self.shards)

    def summary(self) -> dict:
        """Deterministic JSON-able count of shard and job states."""
        shard_counts: dict[str, int] = {}
        for shard in self.shards:
            status = self.shard_status(shard.shard_id).value
            shard_counts[status] = shard_counts.get(status, 0) + 1
        job_counts: dict[str, int] = {}
        for status in self._job_status:
            job_counts[status.value] = job_counts.get(status.value, 0) + 1
        return {
            "shards": dict(sorted(shard_counts.items())),
            "jobs": dict(sorted(job_counts.items())),
        }
