"""Concurrent campaign scheduler with a deterministic result contract.

The serial double loop in :meth:`repro.core.runner.ExperimentRunner.sweep`
is the reproduction's equivalent of the paper's measurement scripts; this
module is the infrastructure that lets the same measurements be *served*:
a worker pool drives many platforms at once through
:class:`~repro.service.resilience.ResilientClient` wrappers, with

* **fair round-robin dispatch** across platforms (no platform starves),
* **per-platform concurrency caps** (default 1: each simulated service
  processes its jobs strictly in order, like a real job queue),
* **backpressure** via a bounded dispatch queue,
* **checkpoint/resume** compatible with
  :class:`~repro.core.results.ResultStore` JSON checkpoints, and
* **telemetry** for every request, retry and job.

Determinism contract
--------------------
The returned store is **bit-identical to the serial sweep regardless of
worker count**.  Numerics are already order-independent — every job's
seed is derived from (platform seed, data, configuration) in
:mod:`repro.platforms.base` — so the scheduler only has to pin
*ordering*: each job carries the index it would have in the serial
platform→dataset→configuration loop, workers fill a slot table, and the
final store reads the slots in index order.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.controls import Configuration
from repro.core.results import ResultStore
from repro.core.runner import ExperimentRunner
from repro.datasets.corpus import Dataset
from repro.exceptions import ValidationError
from repro.service.clock import VirtualClock
from repro.service.resilience import ResilientClient, RetryPolicy
from repro.service.telemetry import Telemetry

__all__ = ["CampaignJob", "CampaignScheduler", "build_campaign"]


@dataclass(frozen=True)
class CampaignJob:
    """One planned measurement, pinned to its serial-order position."""

    index: int
    platform_name: str
    dataset: Dataset
    configuration: Configuration

    def key(self) -> tuple:
        """Identity used for resume matching (mirrors ``sweep``'s skip set)."""
        return (self.platform_name, self.dataset.name, self.configuration)


def build_campaign(
    platforms: Sequence,
    datasets: Sequence[Dataset],
    configurations,
) -> list:
    """Enumerate jobs in exactly the serial sweep order.

    ``configurations`` is either a mapping ``platform name -> sequence of
    configurations`` (each platform sweeps its own space, as the study
    protocols do) or a single sequence applied to every platform.  The
    order is platform-major, then dataset, then configuration — the
    order ``MLaaSStudy`` produces with nested ``sweep`` calls.
    """
    per_platform = _configurations_by_platform(platforms, configurations)
    jobs: list = []
    for platform in platforms:
        for dataset in datasets:
            for configuration in per_platform[platform.name]:
                jobs.append(CampaignJob(
                    index=len(jobs),
                    platform_name=platform.name,
                    dataset=dataset,
                    configuration=configuration,
                ))
    return jobs


def _configurations_by_platform(platforms, configurations) -> dict:
    if isinstance(configurations, Mapping):
        resolved = {}
        for platform in platforms:
            if platform.name not in configurations:
                raise ValidationError(
                    f"no configurations supplied for platform "
                    f"{platform.name!r}"
                )
            resolved[platform.name] = list(configurations[platform.name])
        return resolved
    shared = list(configurations)
    return {platform.name: shared for platform in platforms}


class CampaignScheduler:
    """Run a measurement campaign on a thread pool, deterministically.

    Parameters
    ----------
    workers : int
        Worker-thread count.  ``workers=1`` degenerates to the serial
        order with the resilience/telemetry layer still active.
    per_platform_cap : int
        Maximum jobs in flight per platform (default 1: strict FIFO per
        service, which also pins per-platform resource ids to the serial
        sequence).
    retry_policy : RetryPolicy or None
        Backoff bounds shared by every platform client.
    clock : VirtualClock or WallClock or None
        Time source for backoff waits; defaults to a fresh
        :class:`VirtualClock`.  Pass the same instance the platforms'
        rate limiters use so waits roll their quota windows forward.
    telemetry : Telemetry or None
        Metrics sink (a fresh one by default; exposed as ``.telemetry``).
    backpressure : int or None
        Bound of the dispatch queue (default ``2 * workers``): the
        dispatcher blocks rather than enqueueing the whole campaign.
    seed : int
        Root seed for the clients' deterministic backoff jitter.
    """

    def __init__(
        self,
        workers: int = 4,
        per_platform_cap: int = 1,
        retry_policy: RetryPolicy | None = None,
        clock=None,
        telemetry: Telemetry | None = None,
        backpressure: int | None = None,
        seed: int = 0,
    ):
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if per_platform_cap < 1:
            raise ValidationError(
                f"per_platform_cap must be >= 1, got {per_platform_cap}"
            )
        self.workers = int(workers)
        self.per_platform_cap = int(per_platform_cap)
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self.clock = clock if clock is not None else VirtualClock()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.backpressure = backpressure if backpressure is not None \
            else 2 * self.workers
        if self.backpressure < 1:
            raise ValidationError(
                f"backpressure must be >= 1, got {self.backpressure}"
            )
        self.seed = seed

    def clients_for(self, platforms: Sequence) -> dict:
        """One :class:`ResilientClient` per platform, sharing clock/metrics."""
        return {
            platform.name: ResilientClient(
                platform,
                policy=self.retry_policy,
                clock=self.clock,
                telemetry=self.telemetry,
                seed=self.seed,
            )
            for platform in platforms
        }

    def run(
        self,
        runner: ExperimentRunner,
        platforms: Sequence,
        datasets: Sequence[Dataset],
        configurations,
        resume_from: ResultStore | None = None,
        checkpoint_path=None,
        checkpoint_every: int = 200,
    ) -> ResultStore:
        """Execute the campaign; returns results in serial sweep order.

        ``resume_from`` results matching a planned job fill that job's
        slot without re-measuring (the scheduler's analogue of
        ``sweep(resume_from=...)``); ``checkpoint_path`` is rewritten
        every ``checkpoint_every`` new measurements and at the end, in
        completed-slot order, so an interrupted campaign resumes from a
        loadable :class:`ResultStore`.
        """
        platforms = list(platforms)
        datasets = list(datasets)
        jobs = build_campaign(platforms, datasets, configurations)
        clients = self.clients_for(platforms)
        # Warm the split cache serially so worker threads only read it.
        splits = {
            dataset.name: runner.split(dataset) for dataset in datasets
        }

        slots: list = [None] * len(jobs)
        resumable = _resume_index(resume_from, {p.name for p in platforms})
        pending: dict[str, deque] = {p.name: deque() for p in platforms}
        resumed = 0
        for job in jobs:
            previous = resumable.pop(job.key(), None)
            if previous is not None:
                slots[job.index] = previous
                resumed += 1
            else:
                pending[job.platform_name].append(job)
        remaining = len(jobs) - resumed
        self.telemetry.increment("jobs_total", len(jobs))
        self.telemetry.increment("jobs_resumed", resumed)

        if remaining:
            self._execute(runner, clients, splits, pending, slots,
                          remaining, checkpoint_path, checkpoint_every)

        results = [result for result in slots if result is not None]
        self.telemetry.increment(
            "jobs_failed", sum(1 for r in results if not r.ok)
        )
        if hasattr(self.clock, "total_slept"):
            self.telemetry.observe(
                "backoff_virtual_seconds", self.clock.total_slept
            )
        store = ResultStore(results)
        if checkpoint_path is not None and remaining:
            store.save(checkpoint_path)
        return store

    # -- worker pool -----------------------------------------------------

    def _execute(self, runner, clients, splits, pending, slots,
                 remaining, checkpoint_path, checkpoint_every) -> None:
        """Dispatch every pending job round-robin and wait for the pool."""
        tasks: queue.Queue = queue.Queue(maxsize=self.backpressure)
        lock = threading.Lock()
        completed_cv = threading.Condition(lock)
        # Serializes checkpoint writers only; guards no worker-visible
        # state, so every other thread keeps making progress while one
        # writes.  (Checkpointing under ``completed_cv`` would stall the
        # whole pool for the duration of the file write.)
        checkpoint_lock = threading.Lock()
        saved_count = [0]
        in_flight = {name: 0 for name in pending}
        errors: list = []
        progress = {"new": 0}

        def worker() -> None:
            while True:
                job = tasks.get()
                if job is None:
                    tasks.task_done()
                    return
                error = None
                try:
                    result = runner.run_one(
                        clients[job.platform_name], job.dataset,
                        job.configuration, splits[job.dataset.name],
                    )
                except Exception as exc:  # re-raised by the dispatcher
                    error, result = exc, None
                snapshot = None
                with completed_cv:
                    if error is not None:
                        errors.append(error)
                    else:
                        slots[job.index] = result
                        progress["new"] += 1
                        if (checkpoint_path is not None
                                and progress["new"] % checkpoint_every == 0):
                            snapshot = (progress["new"], list(slots))
                    in_flight[job.platform_name] -= 1
                    completed_cv.notify_all()
                if snapshot is not None:
                    count, captured = snapshot
                    with checkpoint_lock:
                        # A slower writer with an older snapshot must not
                        # clobber a newer checkpoint.
                        if count > saved_count[0]:
                            saved_count[0] = count
                            _save_completed(captured, checkpoint_path)  # repro: disable=C205 -- checkpoint_lock serializes writers only; no worker-visible state waits on it
                tasks.task_done()

        threads = [
            threading.Thread(target=worker, daemon=True,
                             name=f"campaign-worker-{i}")
            for i in range(min(self.workers, remaining))
        ]
        for thread in threads:
            thread.start()

        # The sentinel/join shutdown must run even when dispatch raises
        # (a KeyboardInterrupt in the pick loop, a checkpoint I/O error
        # propagating through the condition wait): otherwise the worker
        # threads block on the queue forever and the process leaks them.
        try:
            order = list(pending)
            cursor = 0
            to_dispatch = remaining
            while to_dispatch:
                with completed_cv:
                    choice = self._pick(order, cursor, pending, in_flight,
                                        self.per_platform_cap)
                    while choice is None and not errors:
                        completed_cv.wait()
                        choice = self._pick(order, cursor, pending,
                                            in_flight,
                                            self.per_platform_cap)
                    if errors:
                        break
                    name = order[choice]
                    job = pending[name].popleft()
                    in_flight[name] += 1
                    cursor = (choice + 1) % len(order)
                tasks.put(job)  # blocks when the bounded queue is full
                to_dispatch -= 1
        finally:
            for _ in threads:
                tasks.put(None)
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]

    @staticmethod
    def _pick(order, cursor, pending, in_flight, cap) -> int | None:
        """Next platform index round-robin from ``cursor`` with capacity."""
        for offset in range(len(order)):
            position = (cursor + offset) % len(order)
            name = order[position]
            if pending[name] and in_flight[name] < cap:
                return position
        return None


def _resume_index(resume_from, platform_names) -> dict:
    """Map job key -> prior result for resumable measurements."""
    index: dict = {}
    if resume_from is None:
        return index
    for result in resume_from:
        if result.platform not in platform_names:
            continue
        key = (result.platform, result.dataset, result.configuration)
        index.setdefault(key, result)
    return index


def _save_completed(slots, checkpoint_path) -> None:
    """Checkpoint the completed slots, in serial order.

    :meth:`ResultStore.save` writes via ``*.tmp`` + ``os.replace``, so a
    worker killed mid-write can never leave a truncated checkpoint.
    """
    ResultStore(
        result for result in slots if result is not None
    ).save(checkpoint_path)
