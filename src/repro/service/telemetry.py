"""Campaign telemetry: counters, histograms, per-platform accounting.

The paper reports ~1.7M measurements against six rate-limited services;
at that scale a campaign without request accounting is undebuggable (was
the sweep slow, throttled, or failing?).  This module is the service
layer's observability surface:

* :class:`Counter` — a named monotonic counter.
* :class:`Histogram` — fixed-bucket distribution (latencies, attempts).
* :class:`Telemetry` — a thread-safe registry of both, plus per-platform
  per-operation request accounting, exported as a deterministic JSON
  snapshot (sorted keys) so CI can archive and diff campaign runs.

All state is guarded by one lock; recording from worker threads is safe.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

__all__ = [
    "ATTEMPT_BUCKETS",
    "Counter",
    "Histogram",
    "LATENCY_BUCKETS_SECONDS",
    "SUMMARY_PERCENTILES",
    "Telemetry",
    "exact_quantile",
    "percentile_summary",
]

#: Default latency buckets (seconds): sub-millisecond to minutes.
LATENCY_BUCKETS_SECONDS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Default buckets for the attempts-per-call distribution.
ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0)

#: The percentiles every summary reports (the serving benchmark's
#: p50/p95/p99 and the tails the paper's latency discussion cares about).
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


def exact_quantile(sorted_samples, q: float) -> float:
    """Exact linear-interpolation quantile of pre-sorted samples.

    ``q`` is in [0, 1].  This is the deterministic "linear" method
    (rank ``q * (n - 1)`` interpolated between neighbours) computed in
    plain Python so every consumer — ``/metrics/summary``, the load
    generator and the benchmarks — derives bit-identical values from the
    same recorded samples.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not sorted_samples:
        raise ValueError("cannot take a quantile of zero samples")
    n = len(sorted_samples)
    if n == 1:
        return float(sorted_samples[0])
    rank = q * (n - 1)
    low = int(rank)
    frac = rank - low
    if low + 1 >= n:
        return float(sorted_samples[-1])
    return float(
        sorted_samples[low] + frac * (sorted_samples[low + 1] - sorted_samples[low])
    )


def percentile_summary(samples, percentiles=SUMMARY_PERCENTILES) -> dict:
    """Deterministic JSON summary of a sample list.

    Returns ``count``/``mean``/``min``/``max`` plus one ``p<N>`` key per
    requested percentile, every float rounded to 9 decimals so the JSON
    rendering is stable across runs and platforms.  An empty sample list
    yields ``{"count": 0}`` — callers can always embed the result.
    """
    values = sorted(float(v) for v in samples)
    if not values:
        return {"count": 0}
    summary = {
        "count": len(values),
        "mean": round(sum(values) / len(values), 9),
        "min": round(values[0], 9),
        "max": round(values[-1], 9),
    }
    for percentile in percentiles:
        label = f"{float(percentile):g}"
        summary[f"p{label}"] = round(
            exact_quantile(values, float(percentile) / 100.0), 9
        )
    return summary


class Counter:
    """A named monotonic counter."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n

    def to_dict(self) -> int:
        """Snapshot representation (the bare value)."""
        return self.value


class Histogram:
    """Fixed-bucket histogram with an implicit +Inf overflow bucket."""

    def __init__(self, name: str, buckets: tuple = LATENCY_BUCKETS_SECONDS):
        self.name = name
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        position = len(self.buckets)
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                position = i
                break
        self.counts[position] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot: bucket upper bounds and counts."""
        uppers = [*self.buckets, "+Inf"]
        return {
            "buckets": {str(u): c for u, c in zip(uppers, self.counts)},
            "count": self.count,
            "total": round(self.total, 9),
        }


class Telemetry:
    """Thread-safe registry of campaign metrics.

    Three views:

    * flat counters (``increment``/``counter_value``) for campaign-wide
      totals (requests, retries, jobs);
    * named histograms (``observe``) for distributions (per-call latency,
      attempts per logical call);
    * per-platform accounting (``record_request``/``record_error``) with
      per-operation request counts and per-exception-kind error counts —
      the "which service throttled us" question.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._platforms: dict[str, dict] = {}
        self._samples: dict[str, list[float]] = {}

    # -- recording -------------------------------------------------------

    def increment(self, name: str, n: int = 1) -> None:
        """Bump the named campaign-wide counter."""
        with self._lock:
            self._counter(name).increment(n)

    def observe(self, name: str, value: float, buckets: tuple | None = None) -> None:
        """Record one observation into the named histogram.

        ``buckets`` picks the bucket layout when the histogram is created
        on first use; later calls reuse the existing layout.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(
                    name, buckets if buckets is not None
                    else LATENCY_BUCKETS_SECONDS,
                )
                self._histograms[name] = histogram
            histogram.observe(value)

    def record_request(
        self,
        platform: str,
        operation: str,
        attempts: int = 1,
        seconds: float = 0.0,
        outcome: str = "ok",
    ) -> None:
        """Account one logical API call against a platform.

        ``attempts`` is the number of physical requests issued (1 + the
        retries); ``seconds`` the end-to-end latency of the logical call
        including backoff; ``outcome`` is ``"ok"`` or ``"error"``.
        """
        with self._lock:
            entry = self._platform(platform)
            ops = entry["requests"]
            ops[operation] = ops.get(operation, 0) + int(attempts)
            self._counter("requests_total").increment(int(attempts))
            if attempts > 1:
                self._counter("retries_total").increment(int(attempts) - 1)
                entry["retries"] += int(attempts) - 1
            if outcome != "ok":
                self._counter("failed_calls_total").increment()
        self.observe(f"latency_seconds.{operation}", seconds)
        self.observe("attempts_per_call", float(attempts),
                     buckets=ATTEMPT_BUCKETS)

    def record_sample(self, name: str, value: float) -> None:
        """Keep one raw observation for exact-quantile summaries.

        Unlike :meth:`observe`, the value itself is retained (not just a
        bucket count), so :meth:`sample_summaries` can report exact
        percentiles — what the serving layer's ``/metrics/summary`` and
        the load-generator report are built on.
        """
        with self._lock:
            self._samples.setdefault(name, []).append(float(value))

    def sample_values(self, name: str) -> list:
        """Copy of the raw samples recorded under ``name`` (maybe empty)."""
        with self._lock:
            return list(self._samples.get(name, ()))

    def sample_summaries(self) -> dict:
        """Exact percentile summaries of every recorded sample series."""
        with self._lock:
            series = {name: list(values)
                      for name, values in self._samples.items()}
        return {
            name: percentile_summary(values)
            for name, values in sorted(series.items())
        }

    def record_error(self, platform: str, kind: str) -> None:
        """Count one exception (by class name) observed for a platform."""
        with self._lock:
            entry = self._platform(platform)
            errors = entry["errors"]
            errors[kind] = errors.get(kind, 0) + 1
            self._counter("errors_total").increment()

    # -- reading ---------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def platform_requests(self, platform: str) -> dict:
        """Per-operation physical request counts for one platform."""
        with self._lock:
            entry = self._platforms.get(platform)
            return dict(entry["requests"]) if entry else {}

    def platform_errors(self, platform: str) -> dict:
        """Per-exception-kind error counts for one platform."""
        with self._lock:
            entry = self._platforms.get(platform)
            return dict(entry["errors"]) if entry else {}

    def snapshot(self) -> dict:
        """Deterministic JSON-serializable snapshot of all metrics."""
        with self._lock:
            return {
                "counters": {
                    name: counter.to_dict()
                    for name, counter in sorted(self._counters.items())
                },
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
                "platforms": {
                    name: {
                        "errors": dict(sorted(entry["errors"].items())),
                        "requests": dict(sorted(entry["requests"].items())),
                        "retries": entry["retries"],
                    }
                    for name, entry in sorted(self._platforms.items())
                },
            }

    def save(self, path) -> None:
        """Write the snapshot as stable JSON (sorted keys, 2-space indent)."""
        Path(path).write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- internals (callers hold the lock) -------------------------------

    def _counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:  # repro: disable=C203 -- private helper: every caller already holds self._lock
            counter = self._counters[name] = Counter(name)
        return counter

    def _platform(self, name: str) -> dict:
        entry = self._platforms.get(name)
        if entry is None:  # repro: disable=C203 -- private helper: every caller already holds self._lock
            entry = self._platforms[name] = {
                "requests": {}, "errors": {}, "retries": 0,
            }
        return entry
