"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "ValidationError",
    "ConvergenceWarning",
    "PlatformError",
    "UnsupportedControlError",
    "ResourceNotFoundError",
    "JobFailedError",
    "QuotaExceededError",
    "PayloadTooLargeError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NotFittedError(ReproError):
    """An estimator method requiring a fitted model was called before fit."""


class ValidationError(ReproError, ValueError):
    """Input data or parameters failed validation."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before reaching its tolerance."""


class PlatformError(ReproError):
    """Base class for simulated MLaaS platform failures."""


class UnsupportedControlError(PlatformError):
    """A pipeline control was requested that the platform does not expose.

    This mirrors a real MLaaS API rejecting a request for a knob that its
    web interface does not have (e.g. asking Amazon ML for a Random Forest).
    """


class ResourceNotFoundError(PlatformError):
    """A dataset/model/job handle does not exist on the platform."""


class JobFailedError(PlatformError):
    """An asynchronous platform job finished in the FAILED state."""


class QuotaExceededError(PlatformError):
    """The simulated platform's rate/size quota was exceeded."""


class PayloadTooLargeError(PlatformError):
    """A request body or prediction batch exceeded the service limits.

    Raised at the serving edge (:mod:`repro.serving`) and mapped onto
    HTTP 413, mirroring the per-request size caps real MLaaS APIs
    enforce separately from their rolling rate quotas.
    """


class DeadlineExceededError(PlatformError):
    """A served request ran past its per-request soft timeout.

    Raised by the serving layer's timeout middleware and mapped onto
    HTTP 504 — the observable shape of a gateway giving up on a slow
    backend, which the paper's measurement scripts had to handle (§3.2).
    """
