"""HTTP serving layer for the platform simulators.

The paper measured real MLaaS platforms over the wire; this package
puts the same wire between our simulators and the measurement harness
without leaving the standard library:

* :mod:`repro.serving.protocol` — JSON array/handle encodings, the
  error-to-status taxonomy, and :class:`ServingLimits`;
* :mod:`repro.serving.middleware` — request ids, structured access
  logs, error mapping, soft timeouts, body limits;
* :mod:`repro.serving.server` — :class:`ServingGateway` (transport-free
  routing core) plus the threaded stdlib HTTP front-end;
* :mod:`repro.serving.client` — :class:`HTTPPlatformClient`, a drop-in
  for in-process platforms so campaigns run unchanged over HTTP;
* :mod:`repro.serving.loadgen` — seeded closed/open-loop load
  generation with exact-percentile latency reports.

Campaign results over this wire are bit-identical to in-process runs;
``tests/serving`` asserts it end-to-end against a live loopback server.
"""

from repro.serving.client import HTTPPlatformClient
from repro.serving.loadgen import (
    ClientPlan,
    LoadgenConfig,
    build_schedule,
    run_load,
)
from repro.serving.middleware import AccessLog, RequestIdAllocator
from repro.serving.protocol import (
    ERROR_STATUS,
    Request,
    Response,
    ServingLimits,
    decode_array,
    encode_array,
)
from repro.serving.server import (
    PlatformHTTPServer,
    ServingGateway,
    serve_background,
)

__all__ = [
    "ERROR_STATUS",
    "AccessLog",
    "ClientPlan",
    "HTTPPlatformClient",
    "LoadgenConfig",
    "PlatformHTTPServer",
    "Request",
    "RequestIdAllocator",
    "Response",
    "ServingGateway",
    "ServingLimits",
    "build_schedule",
    "decode_array",
    "encode_array",
    "run_load",
    "serve_background",
]
