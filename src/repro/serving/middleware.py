"""Middleware stack for the serving gateway.

Each middleware wraps a ``handler(request) -> Response`` callable; the
gateway composes them (outermost first) as::

    request-id -> access-log -> error-map -> soft-timeout -> body-limit
        -> router

* **request-id** — honours a client-supplied ``X-Repro-Request-Id``
  header, otherwise assigns a deterministic sequential id; the id is
  echoed on the response and stamped into every log/error record, which
  is what lets a campaign trace one failed measurement through client,
  access log and error body.
* **access-log** — appends one structured JSONL record per request
  (request id, method, path, status, elapsed seconds on the gateway
  clock) to an in-memory ring that optionally drains to a file.
* **error-map** — turns every :class:`~repro.exceptions.ReproError`
  into its :data:`~repro.serving.protocol.ERROR_STATUS` status with the
  structured JSON error envelope; unexpected exceptions become opaque
  500s (the handler thread must never die mid-response).
* **soft-timeout** — answers 504 when handling ran past the configured
  per-request deadline on the gateway clock (a *soft* timeout: the
  backend work completes, the caller gets the gateway-gave-up shape the
  paper's scripts had to handle).
* **body-limit** — rejects oversized bodies with 413 before routing.
"""

from __future__ import annotations

import itertools
import json
import threading
from pathlib import Path

from repro.exceptions import (
    DeadlineExceededError,
    PayloadTooLargeError,
    ReproError,
)
from repro.serving.protocol import (
    Request,
    Response,
    ServingLimits,
    error_body,
    status_for_exception,
)

__all__ = [
    "AccessLog",
    "RequestIdAllocator",
    "build_stack",
]

#: Header carrying the request id in both directions.
_REQUEST_ID_HEADER = "X-Repro-Request-Id"


class RequestIdAllocator:
    """Deterministic sequential request ids (``req-000001``, ...).

    Sequential — not random — ids keep the serving layer inside the
    project's determinism budget: a single-client session sees the same
    ids on every run, and concurrent sessions that need stable ids
    supply their own via the request header.
    """

    def __init__(self, prefix: str = "req"):
        self.prefix = prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def allocate(self) -> str:
        """The next request id."""
        with self._lock:
            return f"{self.prefix}-{next(self._counter):06d}"


class AccessLog:
    """Thread-safe structured access log with optional JSONL file drain.

    Records accumulate in memory (``records()`` is the test/debug
    surface); when constructed with a path, :meth:`flush` appends the
    pending batch as JSON Lines.  The pending batch is drained under the
    lock but written outside it, so request threads never block on file
    I/O; concurrent flushes may interleave *batches* out of order, but
    every line stays intact.
    """

    def __init__(self, path=None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._pending: list[dict] = []

    def record(self, entry: dict) -> None:
        """Append one access record (thread-safe, in-memory)."""
        with self._lock:
            self._records.append(entry)
            if self.path is not None:
                self._pending.append(entry)

    def records(self) -> list[dict]:
        """Copy of every record seen so far."""
        with self._lock:
            return list(self._records)

    def flush(self) -> None:
        """Append pending records to the log file (no-op when memory-only)."""
        if self.path is None:
            return
        with self._lock:
            batch, self._pending = self._pending, []
        if not batch:
            return
        lines = "".join(
            json.dumps(entry, sort_keys=True) + "\n" for entry in batch
        )
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(lines)


def _request_id_middleware(handler, allocator: RequestIdAllocator):
    """Assign/propagate the request id and echo it on the response."""

    def wrapped(request: Request) -> Response:
        supplied = request.headers.get(_REQUEST_ID_HEADER)
        request.request_id = supplied if supplied else allocator.allocate()
        response = handler(request)
        response.headers.setdefault(_REQUEST_ID_HEADER, request.request_id)
        return response

    return wrapped


def _access_log_middleware(handler, log: AccessLog, clock):
    """Record one structured entry per request, timed on the clock."""

    def wrapped(request: Request) -> Response:
        started = clock.now()
        response = handler(request)
        log.record({
            "request_id": request.request_id,
            "method": request.method,
            "path": request.path,
            "status": response.status,
            "elapsed_seconds": round(clock.now() - started, 9),
        })
        log.flush()
        return response

    return wrapped


def _error_middleware(handler):
    """Map exceptions onto structured JSON error responses."""

    def wrapped(request: Request) -> Response:
        try:
            return handler(request)
        except ReproError as exc:
            return Response(
                status=status_for_exception(exc),
                body=error_body(exc, request.request_id),
            )
        except Exception as exc:
            # Serving boundary: the failure is reported as a structured
            # 500 response — handler threads must outlive handler bugs.
            return Response(
                status=500,
                body=error_body(exc, request.request_id),
            )

    return wrapped


def _soft_timeout_middleware(handler, clock, limits: ServingLimits):
    """Answer 504 when handling ran past the per-request deadline."""

    def wrapped(request: Request) -> Response:
        deadline = limits.soft_timeout_seconds
        if deadline is None:
            return handler(request)
        started = clock.now()
        response = handler(request)
        elapsed = clock.now() - started
        if elapsed > deadline:
            exc = DeadlineExceededError(
                f"request exceeded the soft timeout: {elapsed:.3f}s elapsed, "
                f"deadline {deadline:.3f}s"
            )
            return Response(
                status=status_for_exception(exc),
                body=error_body(exc, request.request_id),
            )
        return response

    return wrapped


def _body_limit_middleware(handler, limits: ServingLimits):
    """Reject request bodies over the configured byte cap with 413."""

    def wrapped(request: Request) -> Response:
        declared = int(request.headers.get("Content-Length", 0) or 0)
        actual = len(request.raw_body)
        if max(declared, actual) > limits.max_body_bytes:
            raise PayloadTooLargeError(
                f"request body of {max(declared, actual)} bytes exceeds "
                f"the {limits.max_body_bytes}-byte limit"
            )
        return handler(request)

    return wrapped


def build_stack(router, *, allocator, log, clock, limits) -> object:
    """Compose the full middleware stack around a route handler.

    Order (outermost first): request-id, access-log, error-map,
    soft-timeout, body-limit, ``router``.  The error map sits *inside*
    the access log so every failure is logged with its mapped status,
    and *outside* the timeout/limit checks so their rejections use the
    same structured envelope.
    """
    handler = _body_limit_middleware(router, limits)
    handler = _soft_timeout_middleware(handler, clock, limits)
    handler = _error_middleware(handler)
    handler = _access_log_middleware(handler, log, clock)
    handler = _request_id_middleware(handler, allocator)
    return handler
