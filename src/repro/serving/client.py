"""HTTP client with the in-process platform surface.

:class:`HTTPPlatformClient` speaks the :mod:`repro.serving.protocol`
wire format but exposes exactly the interface
:meth:`repro.core.runner.ExperimentRunner.run_one` and
:class:`repro.service.resilience.ResilientClient` drive —
``upload_dataset`` / ``create_model`` / ``get_model`` / ``await_model``
/ ``batch_predict`` / ``delete_dataset`` plus ``name``, ``controls``,
``complexity`` and ``synchronous``.  That makes the wire transparent to
the measurement harness: ``MLaaSStudy(platforms=[HTTPPlatformClient(...)
])`` runs an unchanged campaign over HTTP, and the loopback test suite
asserts the resulting store is bit-identical to the in-process run.

The control surface is mirrored from the local platform class registry
rather than fetched over the wire: Table 1 is static, versioned
knowledge — the paper's scripts likewise knew each platform's web UI
before the first request — and the platform-side validation still
happens on the server, where unsupported controls answer structured
400s that re-raise here as the same exception classes.

Server errors tunnel through the status + ``kind`` envelope
(:func:`~repro.serving.protocol.raise_for_error`), so retry/backoff
logic built on :class:`~repro.exceptions.QuotaExceededError` and
transient :class:`~repro.exceptions.JobFailedError` behaves identically
over the wire.
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
from urllib.parse import urlsplit

from repro.exceptions import PlatformError, ValidationError
from repro.platforms import ALL_PLATFORMS
from repro.platforms.base import ModelHandle
from repro.serving.protocol import (
    decode_array,
    encode_array,
    handle_from_wire,
    raise_for_error,
)

__all__ = ["HTTPPlatformClient"]

_PLATFORM_CLASSES = {cls.name: cls for cls in ALL_PLATFORMS}


class HTTPPlatformClient:
    """Drives one served platform; drop-in for the in-process object.

    Parameters
    ----------
    base_url : str
        Server root, e.g. ``"http://127.0.0.1:8151"``.
    platform_name : str
        Which mounted platform to address (``/platforms/<name>/...``).
    timeout : float
        Socket timeout in seconds for each request.
    client_id : str
        Prefix of the deterministic per-request ids this client sends
        in ``X-Repro-Request-Id`` (visible end-to-end in access logs).
    synchronous : bool
        Mirror of the served platform's job mode; the campaign layer
        reads it to decide whether ``create_model`` must be awaited.
    """

    def __init__(
        self,
        base_url: str,
        platform_name: str,
        timeout: float = 60.0,
        client_id: str = "client",
        synchronous: bool = True,
    ):
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValidationError(
                f"base_url must be an http://host[:port] URL, "
                f"got {base_url!r}"
            )
        platform_class = _PLATFORM_CLASSES.get(platform_name)
        if platform_class is None:
            raise ValidationError(
                f"unknown platform {platform_name!r}; "
                f"known: {sorted(_PLATFORM_CLASSES)}"
            )
        self.name = platform_name
        self.controls = platform_class.controls
        self.complexity = platform_class.complexity
        self.synchronous = synchronous
        self.client_id = client_id
        self._host = parts.hostname
        self._port = parts.port if parts.port is not None else 80
        self._timeout = float(timeout)
        self._prefix = f"/platforms/{platform_name}"
        self._connection: http.client.HTTPConnection | None = None
        self._counter = itertools.count(1)
        self._lock = threading.RLock()

    # -- platform surface (what ExperimentRunner.run_one drives) ---------

    def upload_dataset(self, X, y, name: str = "dataset") -> str:
        """Upload a training dataset over the wire; returns its id."""
        body = self._request("POST", "/datasets", {
            "X": encode_array(X), "y": encode_array(y), "name": name,
        })
        return body["dataset_id"]

    def create_model(
        self,
        dataset_id: str,
        classifier: str | None = None,
        params=None,
        feature_selection: str | None = None,
    ) -> str:
        """Launch a training job over the wire; returns the model id."""
        payload = {"dataset_id": dataset_id}
        if classifier is not None:
            payload["classifier"] = classifier
        if params:
            payload["params"] = sorted(dict(params).items())
        if feature_selection is not None:
            payload["feature_selection"] = feature_selection
        body = self._request("POST", "/models", payload)
        return body["model_id"]

    def get_model(self, model_id: str) -> ModelHandle:
        """Poll a model's job state; returns a client-side handle."""
        body = self._request("GET", f"/models/{model_id}")
        return handle_from_wire(body)

    def await_model(self, model_id: str) -> ModelHandle:
        """Drive a queued job to a terminal state over the wire."""
        body = self._request("POST", f"/models/{model_id}/await")
        return handle_from_wire(body)

    def batch_predict(self, model_id: str, X):
        """Predict a batch; returns the label vector, dtype-exact."""
        body = self._request(
            "POST", f"/models/{model_id}/predict", {"X": encode_array(X)}
        )
        return decode_array(body.get("predictions"),
                            context="predictions payload")

    def delete_dataset(self, dataset_id: str) -> None:
        """Remove an uploaded dataset server-side."""
        self._request("DELETE", f"/datasets/{dataset_id}")

    def list_datasets(self) -> list:
        """Ids of the datasets currently stored on the served platform."""
        return self._request("GET", "/datasets")["datasets"]

    def list_models(self) -> list:
        """Ids of the models currently stored on the served platform."""
        return self._request("GET", "/models")["models"]

    # -- service endpoints ------------------------------------------------

    def health(self) -> dict:
        """The server's ``/health`` document."""
        return self._request("GET", "/health", absolute=True)

    def metrics_summary(self) -> dict:
        """The server's ``/metrics/summary`` document."""
        return self._request("GET", "/metrics/summary", absolute=True)

    def close(self) -> None:
        """Drop the persistent connection (reopened on next use)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    # -- wire plumbing ----------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None,
                 absolute: bool = False) -> dict:
        """One wire round-trip; errors re-raise as repro exceptions."""
        target = path if absolute else self._prefix + path
        raw = (json.dumps(payload, sort_keys=True).encode("utf-8")
               if payload is not None else None)
        headers = {
            "Content-Type": "application/json",
            "X-Repro-Request-Id": self._next_request_id(),
        }
        with self._lock:
            try:
                status, body = self._round_trip(method, target, raw, headers)
            except (ConnectionError, http.client.HTTPException, OSError):
                # One reconnect: the server may have dropped an idle
                # keep-alive connection between requests.  A second
                # transport failure surfaces as PlatformError so callers
                # (runner, loadgen) handle it like any service outage.
                self.close()
                try:
                    status, body = self._round_trip(
                        method, target, raw, headers
                    )
                except (ConnectionError, http.client.HTTPException,
                        OSError) as exc:
                    self.close()
                    raise PlatformError(
                        f"cannot reach http://{self._host}:{self._port}: "
                        f"{exc}"
                    ) from exc
        if status >= 400:
            raise_for_error(status, body)
        return body

    def _round_trip(self, method, target, raw, headers) -> tuple:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        self._connection.request(method, target, body=raw, headers=headers)
        response = self._connection.getresponse()
        payload = response.read()
        try:
            body = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise PlatformError(
                f"server answered HTTP {response.status} with a "
                f"non-JSON body of {len(payload)} bytes"
            ) from None
        return response.status, body

    def _next_request_id(self) -> str:
        with self._lock:
            return f"{self.client_id}-{self.name}-{next(self._counter):06d}"

    def __repr__(self) -> str:
        return (f"<HTTPPlatformClient name={self.name!r} "
                f"server=http://{self._host}:{self._port}>")
