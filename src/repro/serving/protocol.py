"""Wire protocol for the served platform simulators.

The paper measured MLaaS platforms *over a wire* — JSON request bodies,
HTTP status codes, batch predictions (§3.2) — while our simulators are
in-process objects.  This module pins the translation layer both sides
of :mod:`repro.serving` share:

* exact JSON array encoding (dtype + nested lists; Python's shortest
  round-trip ``float`` repr makes the float64 encoding bit-exact, which
  the job-seed derivation in :mod:`repro.platforms.base` depends on),
* the :class:`~repro.platforms.base.ModelHandle` wire form, including
  structured :class:`~repro.platforms.base.TrainingFailure` records,
* the error taxonomy mapping: every :class:`~repro.exceptions.ReproError`
  subclass has one HTTP status, and the client maps the status + ``kind``
  field back to the *same* exception class — so the scheduler's retry
  logic (:func:`repro.service.resilience.is_transient`) works unchanged
  over the wire, and
* :class:`ServingLimits`, the request-size/batch/soft-timeout caps the
  middleware enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    JobFailedError,
    NotFittedError,
    PayloadTooLargeError,
    PlatformError,
    QuotaExceededError,
    ReproError,
    ResourceNotFoundError,
    UnsupportedControlError,
    ValidationError,
)
from repro.platforms.base import JobState, ModelHandle, TrainingFailure

__all__ = [
    "ERROR_STATUS",
    "KIND_TO_ERROR",
    "Request",
    "Response",
    "ServingLimits",
    "decode_array",
    "decode_json_body",
    "encode_array",
    "error_body",
    "handle_from_wire",
    "handle_to_wire",
    "raise_for_error",
    "status_for_exception",
]

#: Exception class name -> HTTP status, most specific first.  Unlisted
#: ReproError subclasses fall back to their nearest listed ancestor via
#: :func:`status_for_exception`; non-Repro errors are a 500.
ERROR_STATUS = {
    "ValidationError": 400,
    "UnsupportedControlError": 400,
    "ResourceNotFoundError": 404,
    "JobFailedError": 409,
    "NotFittedError": 409,
    "PayloadTooLargeError": 413,
    "QuotaExceededError": 429,
    "DeadlineExceededError": 504,
    "PlatformError": 502,
    "ReproError": 500,
}

#: The client-side inverse: error ``kind`` -> exception class.
KIND_TO_ERROR = {
    "ValidationError": ValidationError,
    "UnsupportedControlError": UnsupportedControlError,
    "ResourceNotFoundError": ResourceNotFoundError,
    "JobFailedError": JobFailedError,
    "NotFittedError": NotFittedError,
    "PayloadTooLargeError": PayloadTooLargeError,
    "QuotaExceededError": QuotaExceededError,
    "DeadlineExceededError": DeadlineExceededError,
    "PlatformError": PlatformError,
    "ReproError": ReproError,
}


@dataclass(frozen=True)
class ServingLimits:
    """Per-request caps the serving middleware enforces.

    Attributes
    ----------
    max_body_bytes : int
        Largest accepted request body; bigger bodies are rejected with
        HTTP 413 *before* JSON parsing.
    max_batch_rows : int
        Largest accepted upload/predict batch (rows of ``X``); real
        MLaaS APIs cap batch predictions separately from body size.
    soft_timeout_seconds : float or None
        Per-request deadline on the gateway clock; a request whose
        handling ran longer answers HTTP 504.  ``None`` disables it.
    """

    max_body_bytes: int = 8_000_000
    max_batch_rows: int = 10_000
    soft_timeout_seconds: float | None = 30.0

    def __post_init__(self):
        if self.max_body_bytes < 1 or self.max_batch_rows < 1:
            raise ValidationError(
                "serving limits must be positive, got "
                f"max_body_bytes={self.max_body_bytes}, "
                f"max_batch_rows={self.max_batch_rows}"
            )
        if self.soft_timeout_seconds is not None \
                and self.soft_timeout_seconds < 0:
            raise ValidationError(
                f"soft_timeout_seconds cannot be negative, "
                f"got {self.soft_timeout_seconds}"
            )


@dataclass
class Request:
    """One parsed HTTP request as the middleware stack sees it."""

    method: str
    path: str
    raw_body: bytes = b""
    headers: dict = field(default_factory=dict)
    request_id: str = ""

    @property
    def segments(self) -> tuple:
        """Path split on ``/`` with empties dropped (routing key)."""
        return tuple(part for part in self.path.split("/") if part)

    def json(self) -> dict:
        """Decode the body as a JSON object (400 on malformed input)."""
        return decode_json_body(self.raw_body)


@dataclass
class Response:
    """One JSON response ready for the HTTP layer to serialize."""

    status: int = 200
    body: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)

    def payload(self) -> bytes:
        """The UTF-8 JSON rendering (sorted keys: deterministic bytes)."""
        return json.dumps(self.body, sort_keys=True).encode("utf-8")


def encode_array(array) -> dict:
    """JSON-encode an ndarray with enough metadata to rebuild it exactly.

    ``data`` is nested lists (JSON numbers round-trip Python floats
    bit-exactly via the shortest-repr algorithm); ``dtype`` restores the
    width so re-encoded bytes — and therefore the platform's per-job
    seed digest — are identical to the in-process arrays.
    """
    array = np.asarray(array)
    return {"dtype": str(array.dtype), "data": array.tolist()}


def decode_array(payload, context: str = "array") -> np.ndarray:
    """Rebuild an ndarray encoded by :func:`encode_array`.

    Raises :class:`~repro.exceptions.ValidationError` (HTTP 400) when
    the payload is structurally malformed — the serving edge's first
    line of defence before :func:`repro.learn.validation.check_array`
    normalizes the numeric content.
    """
    if not isinstance(payload, dict) or "data" not in payload:
        raise ValidationError(
            f"{context} must be an object with 'data' (and optional "
            f"'dtype'), got {type(payload).__name__}"
        )
    dtype = payload.get("dtype", "float64")
    try:
        return np.asarray(payload["data"], dtype=np.dtype(dtype))
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{context} is not decodable: {exc}") from None


def decode_json_body(raw_body: bytes) -> dict:
    """Parse a request body as a JSON object, raising structured 400s."""
    if not raw_body:
        raise ValidationError("request body is empty; expected a JSON object")
    try:
        decoded = json.loads(raw_body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"request body is not valid JSON: {exc}"
        ) from None
    if not isinstance(decoded, dict):
        raise ValidationError(
            f"request body must be a JSON object, "
            f"got {type(decoded).__name__}"
        )
    return decoded


def status_for_exception(exc: Exception) -> int:
    """The HTTP status an exception maps to (500 for unknown kinds)."""
    for klass in type(exc).__mro__:
        status = ERROR_STATUS.get(klass.__name__)
        if status is not None:
            return status
    return 500


def error_body(exc: Exception, request_id: str) -> dict:
    """The structured JSON error envelope every failure response uses."""
    return {
        "error": {
            "kind": type(exc).__name__,
            "detail": str(exc),
            "request_id": request_id,
        }
    }


def raise_for_error(status: int, body: dict) -> None:
    """Client side: re-raise a served error as its in-process exception.

    The exception ``detail`` crosses the wire verbatim, so
    ``str(exc)`` — which the runner records as ``failure_reason`` and
    :func:`~repro.service.resilience.is_transient` substring-matches —
    is identical to the in-process behaviour.
    """
    error = body.get("error") if isinstance(body, dict) else None
    if not isinstance(error, dict):
        raise PlatformError(
            f"server answered HTTP {status} without a structured error body"
        )
    kind = error.get("kind", "")
    detail = error.get("detail", f"server answered HTTP {status}")
    exc_class = KIND_TO_ERROR.get(kind)
    if exc_class is None:
        raise PlatformError(f"{kind}: {detail}")
    restored = exc_class(detail)
    raise restored


def handle_to_wire(handle: ModelHandle) -> dict:
    """Serialize a model handle (estimator stays server-side)."""
    failure = handle.failure_reason
    return {
        "model_id": handle.model_id,
        "dataset_id": handle.dataset_id,
        "state": handle.state.value,
        "classifier": handle.classifier_abbr,
        "params": sorted(handle.params.items()),
        "feature_selection": handle.feature_selection,
        "failure_reason": failure.to_dict() if failure is not None else None,
        "metadata": _wire_metadata(handle.metadata),
    }


def handle_from_wire(payload: dict) -> ModelHandle:
    """Rebuild a client-side model handle from its wire form.

    The estimator is absent by design — predictions go back through the
    service — but state, failure structure and metadata round-trip, so
    :meth:`repro.core.runner.ExperimentRunner.run_one` treats a remote
    handle exactly like a local one.
    """
    if not isinstance(payload, dict) or "model_id" not in payload:
        raise ValidationError(
            "model payload must be an object with 'model_id'"
        )
    failure = payload.get("failure_reason")
    return ModelHandle(
        model_id=payload["model_id"],
        dataset_id=payload.get("dataset_id", ""),
        state=JobState(payload.get("state", JobState.QUEUED.value)),
        classifier_abbr=payload.get("classifier"),
        params={name: value for name, value in payload.get("params", [])},
        feature_selection=payload.get("feature_selection"),
        estimator=None,
        failure_reason=TrainingFailure(**failure) if failure else None,
        metadata=dict(payload.get("metadata", {})),
    )


def _wire_metadata(metadata: dict) -> dict:
    """JSON-safe subset of a handle's metadata (numbers/strings only)."""
    return {
        key: value for key, value in metadata.items()
        if isinstance(value, (int, float, str, bool))
    }
