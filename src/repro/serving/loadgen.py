"""Deterministic load generator for the served platforms.

Turns "handles concurrent traffic" from a claim into a measurement: a
seeded, fully precomputed request schedule is driven against a server
(usually over HTTP via :class:`~repro.serving.client.HTTPPlatformClient`,
but any object with the platform surface works), per-request latencies
are recorded, and the report summarizes them with the exact-percentile
helper shared with ``/metrics/summary``
(:func:`repro.service.telemetry.percentile_summary`).

Determinism contract
--------------------
Every client session derives its own seed from ``(seed, client_id)``
via crc32 — the same derivation pattern as platform job seeds — so the
training data, classifier choice, queries and (open-loop) arrival
times are identical on every run and machine.  Because platform job
seeds depend only on (platform seed, data bytes, configuration), the
*prediction payloads* are invariant under interleaving: the report's
``payload_digest`` — an order-independent digest over every prediction
response — must be identical between a serial and a concurrent run of
the same schedule.  The benchmark and CI assert exactly that.

Two arrival disciplines:

* **closed** — every client starts immediately and issues its session
  back-to-back: concurrency equals the client count (MLBench-style
  saturation measurement).
* **open** — session start times are drawn from a seeded exponential
  interarrival process, so request arrival does not wait on request
  completion (the paper's quota discussions are about exactly this
  offered-load shape).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError, ValidationError
from repro.platforms.base import JobState
from repro.service.clock import WallClock
from repro.service.telemetry import percentile_summary

__all__ = [
    "ClientPlan",
    "LoadgenConfig",
    "build_schedule",
    "derive_seed",
    "run_load",
]


def derive_seed(seed: int, label: str) -> int:
    """Deterministic sub-seed from a root seed and a label (crc32)."""
    return zlib.crc32(f"{seed}:loadgen:{label}".encode()) % (2**31)


@dataclass(frozen=True)
class LoadgenConfig:
    """One reproducible load-generation schedule.

    Attributes
    ----------
    clients : int
        Concurrent client sessions.
    predicts_per_client : int
        Batch predictions each session issues after training.
    mode : str
        ``"closed"`` (all sessions start at once) or ``"open"``
        (seeded exponential arrivals).
    arrival_spacing_seconds : float
        Mean interarrival gap between session starts in open mode.
    seed : int
        Root seed for data, configuration choice and arrivals.
    samples, features : int
        Shape of each session's generated training set.
    query_rows : int
        Rows per prediction batch.
    """

    clients: int = 2
    predicts_per_client: int = 3
    mode: str = "closed"
    arrival_spacing_seconds: float = 0.01
    seed: int = 0
    samples: int = 40
    features: int = 5
    query_rows: int = 8

    def __post_init__(self):
        if self.clients < 1 or self.predicts_per_client < 0:
            raise ValidationError(
                f"need clients >= 1 and predicts_per_client >= 0, got "
                f"{self.clients} and {self.predicts_per_client}"
            )
        if self.mode not in ("closed", "open"):
            raise ValidationError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.samples < 4 or self.features < 1 or self.query_rows < 1:
            raise ValidationError(
                "need samples >= 4, features >= 1 and query_rows >= 1"
            )
        if self.arrival_spacing_seconds < 0:
            raise ValidationError("arrival spacing cannot be negative")


@dataclass(frozen=True)
class ClientPlan:
    """One session of the schedule: identity, seed, arrival time."""

    client_id: str
    seed: int
    start_offset: float


def build_schedule(config: LoadgenConfig) -> list:
    """The deterministic per-client schedule for a configuration."""
    offsets = [0.0] * config.clients
    if config.mode == "open":
        rng = np.random.default_rng(derive_seed(config.seed, "arrivals"))
        gaps = rng.exponential(
            scale=max(config.arrival_spacing_seconds, 1e-9),
            size=config.clients,
        )
        offsets = [float(v) for v in np.cumsum(gaps)]
    return [
        ClientPlan(
            client_id=f"c{position:03d}",
            seed=derive_seed(config.seed, f"client:{position}"),
            start_offset=offsets[position],
        )
        for position in range(config.clients)
    ]


def _session_data(plan: ClientPlan, config: LoadgenConfig) -> tuple:
    """Deterministic (X, y, queries) for one client session."""
    rng = np.random.default_rng(plan.seed)
    X = rng.standard_normal((config.samples, config.features))
    y = (X[:, 0] + 0.5 * X[:, -1] > 0.0).astype(np.intp)
    if y.min() == y.max():
        y[0] = 1 - y[0]  # force two classes for degenerate draws
    queries = rng.standard_normal((config.query_rows, config.features))
    return X, y, queries


def _choose_classifier(controls, plan: ClientPlan) -> str | None:
    """Deterministic classifier pick from the platform's Table 1 row."""
    abbrs = [option.abbr for option in controls.classifiers]
    if not abbrs:
        return None
    rng = np.random.default_rng(derive_seed(plan.seed, "classifier"))
    return abbrs[int(rng.integers(0, len(abbrs)))]


def _digest(predictions) -> int:
    """Content digest of one prediction payload (dtype-sensitive)."""
    array = np.ascontiguousarray(predictions)
    return zlib.crc32(str(array.dtype).encode()
                      + array.tobytes()) % (2**31)


class _Recorder:
    """Thread-safe accumulator for per-request load-test records."""

    def __init__(self):
        self._lock = threading.Lock()
        self._records: list[dict] = []

    def add(self, client_id: str, operation: str, latency: float,
            ok: bool, kind: str | None = None,
            digest: int | None = None) -> None:
        with self._lock:
            self._records.append({
                "client_id": client_id,
                "operation": operation,
                "latency": float(latency),
                "ok": bool(ok),
                "kind": kind,
                "digest": digest,
            })

    def all(self) -> list:
        with self._lock:
            return list(self._records)


def _run_session(client, plan: ClientPlan, config: LoadgenConfig,
                 clock, recorder: _Recorder) -> None:
    """Drive one client session, recording every request."""
    X, y, queries = _session_data(plan, config)
    classifier = _choose_classifier(client.controls, plan)

    def call(operation, fn, *args, **kwargs):
        started = clock.now()
        try:
            result = fn(*args, **kwargs)
        except ReproError as exc:
            recorder.add(plan.client_id, operation, clock.now() - started,
                         ok=False, kind=type(exc).__name__)
            return None, False
        recorder.add(plan.client_id, operation, clock.now() - started,
                     ok=True,
                     digest=_digest(result) if operation == "batch_predict"
                     else None)
        return result, True

    dataset_id, ok = call("upload_dataset", client.upload_dataset, X, y,
                          name=f"loadgen-{plan.client_id}")
    if not ok:
        return
    model_id, ok = call("create_model", client.create_model, dataset_id,
                        classifier=classifier)
    if ok:
        handle, ok = call("get_model", client.get_model, model_id)
    if ok and handle.state is JobState.COMPLETED:
        for _ in range(config.predicts_per_client):
            call("batch_predict", client.batch_predict, model_id, queries)
    call("delete_dataset", client.delete_dataset, dataset_id)


def run_load(client_factory, config: LoadgenConfig,
             clock=None, parallel: bool = True) -> dict:
    """Execute a schedule and return the deterministic-shaped report.

    Parameters
    ----------
    client_factory : callable
        ``client_factory(client_id) -> platform-surface client``; called
        once per session so each thread owns its connection.
    config : LoadgenConfig
        The seeded schedule.
    clock : VirtualClock or WallClock or None
        Time source for latencies and open-loop arrival pacing.
    parallel : bool
        When False the sessions run sequentially in schedule order
        (arrival offsets are skipped) — the serial reference whose
        ``payload_digest`` a concurrent run must reproduce.

    Returns the report dict: request/failure counts, throughput,
    per-operation and overall :func:`percentile_summary` latencies, and
    the order-independent ``payload_digest``.
    """
    clock = clock if clock is not None else WallClock()
    plans = build_schedule(config)
    recorder = _Recorder()
    errors: list = []
    errors_lock = threading.Lock()

    def session(plan: ClientPlan) -> None:
        try:
            if parallel and plan.start_offset > 0.0:
                clock.sleep(plan.start_offset)
            client = client_factory(plan.client_id)
            try:
                _run_session(client, plan, config, clock, recorder)
            finally:
                # HTTP clients hold a live connection per session; a
                # factory may also hand out connectionless fakes, so
                # close only what supports it.
                close = getattr(client, "close", None)
                if callable(close):
                    close()
        except Exception as exc:  # re-raised by the caller below
            with errors_lock:
                errors.append(exc)

    started = clock.now()
    if parallel:
        threads = [
            threading.Thread(target=session, args=(plan,), daemon=True,
                             name=f"loadgen-{plan.client_id}")
            for plan in plans
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        for plan in plans:
            session(plan)
    elapsed = clock.now() - started
    if errors:
        raise errors[0]
    return _build_report(recorder.all(), config, elapsed)


def _build_report(records: list, config: LoadgenConfig,
                  elapsed: float) -> dict:
    """Aggregate raw records into the JSON report."""
    by_operation: dict[str, list] = {}
    failures: dict[str, int] = {}
    digest_lines = []
    for record in records:
        by_operation.setdefault(record["operation"], []).append(
            record["latency"]
        )
        if not record["ok"]:
            failures[record["kind"]] = failures.get(record["kind"], 0) + 1
        if record["digest"] is not None:
            digest_lines.append(
                f"{record['client_id']}:{record['operation']}:"
                f"{record['digest']}"
            )
    all_latencies = [record["latency"] for record in records]
    combined = zlib.crc32("\n".join(sorted(digest_lines)).encode()) % (2**31)
    return {
        "mode": config.mode,
        "seed": config.seed,
        "clients": config.clients,
        "predicts_per_client": config.predicts_per_client,
        "requests_total": len(records),
        "requests_failed": sum(1 for r in records if not r["ok"]),
        "failures": dict(sorted(failures.items())),
        "elapsed_seconds": round(elapsed, 9),
        "throughput_rps": round(len(records) / elapsed, 9) if elapsed > 0
        else None,
        "operations": {
            operation: percentile_summary(latencies)
            for operation, latencies in sorted(by_operation.items())
        },
        "overall_latency": percentile_summary(all_latencies),
        "payload_digest": combined,
    }
