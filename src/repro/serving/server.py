"""HTTP front-end over the platform simulators.

Two layers:

* :class:`ServingGateway` — transport-independent request router.  It
  owns the platform instances (one lock per platform: the simulators
  are single-threaded objects, exactly like a real service's per-tenant
  job queue), the middleware stack, telemetry with exact latency
  samples, and the access log.  Tests can drive it directly with
  :class:`~repro.serving.protocol.Request` objects and a
  :class:`~repro.service.clock.VirtualClock` for deterministic timing.
* :class:`PlatformHTTPServer` — a stdlib ``ThreadingHTTPServer`` that
  parses HTTP, enforces the body cap before reading, hands the gateway
  a :class:`Request` and writes its :class:`Response` back.  pip is
  offline in the measurement environment, so there is deliberately no
  framework here — ``http.server`` is the whole wire stack.

Endpoints (all JSON)::

    GET    /health
    GET    /metrics/summary
    GET    /platforms
    POST   /platforms/<name>/datasets            {X, y, name}
    GET    /platforms/<name>/datasets
    DELETE /platforms/<name>/datasets/<id>
    POST   /platforms/<name>/models              {dataset_id, classifier,
                                                  params, feature_selection}
    GET    /platforms/<name>/models
    GET    /platforms/<name>/models/<id>
    POST   /platforms/<name>/models/<id>/await
    POST   /platforms/<name>/models/<id>/predict {X}

Every decoded array is re-validated at this edge (``check_array`` /
``check_X_y``) so malformed bodies answer structured 400s instead of
surfacing numpy errors from inside an estimator.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import PayloadTooLargeError, ResourceNotFoundError
from repro.learn.validation import check_array, check_X_y
from repro.service.clock import WallClock
from repro.service.telemetry import Telemetry
from repro.serving.middleware import AccessLog, RequestIdAllocator, build_stack
from repro.serving.protocol import (
    Request,
    Response,
    ServingLimits,
    decode_array,
    encode_array,
    handle_to_wire,
)

__all__ = [
    "PlatformHTTPServer",
    "ServingGateway",
    "serve_background",
]


class ServingGateway:
    """Routes wire requests onto platform instances behind middleware.

    Parameters
    ----------
    platforms : sequence of MLaaSPlatform
        The simulators to serve, mounted at ``/platforms/<name>``.
    limits : ServingLimits or None
        Body/batch/soft-timeout caps (defaults apply when None).
    clock : VirtualClock or WallClock or None
        Time source for access-log timing, uptime and the soft timeout.
        Injecting a :class:`~repro.service.clock.VirtualClock` makes
        timing-dependent behaviour deterministic in tests.
    telemetry : Telemetry or None
        Metrics sink; per-operation latency samples are recorded so
        ``/metrics/summary`` reports exact percentiles.
    access_log : AccessLog or None
        Structured request log (in-memory by default).
    """

    def __init__(
        self,
        platforms,
        limits: ServingLimits | None = None,
        clock=None,
        telemetry: Telemetry | None = None,
        access_log: AccessLog | None = None,
    ):
        self.limits = limits if limits is not None else ServingLimits()
        self.clock = clock if clock is not None else WallClock()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.access_log = access_log if access_log is not None else AccessLog()
        self._platforms = {
            platform.name: platform for platform in platforms
        }
        self._platform_locks = {
            name: threading.RLock() for name in self._platforms
        }
        self._allocator = RequestIdAllocator()
        self._handler = build_stack(
            self._route,
            allocator=self._allocator,
            log=self.access_log,
            clock=self.clock,
            limits=self.limits,
        )
        self._started = self.clock.now()

    def platform_names(self) -> list[str]:
        """Sorted names of the mounted platforms."""
        return sorted(self._platforms)

    def handle(self, request: Request) -> Response:
        """Run one request through the full middleware stack."""
        return self._handler(request)

    # -- routing ---------------------------------------------------------

    def _route(self, request: Request) -> Response:
        segments = request.segments
        if segments == ("health",) and request.method == "GET":
            return self._health()
        if segments == ("metrics", "summary") and request.method == "GET":
            return self._metrics_summary()
        if segments == ("platforms",) and request.method == "GET":
            return self._list_platforms()
        if len(segments) >= 3 and segments[0] == "platforms":
            return self._route_platform(request, segments)
        raise ResourceNotFoundError(
            f"no resource at {request.method} {request.path}"
        )

    def _route_platform(self, request: Request, segments: tuple) -> Response:
        name, resource, rest = segments[1], segments[2], segments[3:]
        platform = self._platforms.get(name)
        if platform is None:
            raise ResourceNotFoundError(
                f"no platform {name!r}; serving {self.platform_names()}"
            )
        lock = self._platform_locks[name]
        if resource == "datasets":
            if request.method == "POST" and not rest:
                return self._upload_dataset(request, platform, lock)
            if request.method == "GET" and not rest:
                return self._timed(platform, lock, "list_datasets",
                                   lambda: {"datasets": platform.list_datasets()})
            if request.method == "DELETE" and len(rest) == 1:
                def delete() -> dict:
                    platform.delete_dataset(rest[0])
                    return {"deleted": rest[0]}
                return self._timed(platform, lock, "delete_dataset", delete)
        if resource == "models":
            if request.method == "POST" and not rest:
                return self._create_model(request, platform, lock)
            if request.method == "GET" and not rest:
                return self._timed(platform, lock, "list_models",
                                   lambda: {"models": platform.list_models()})
            if request.method == "GET" and len(rest) == 1:
                return self._timed(
                    platform, lock, "get_model",
                    lambda: handle_to_wire(platform.get_model(rest[0])),
                )
            if request.method == "POST" and rest[1:] == ("await",):
                return self._timed(
                    platform, lock, "await_model",
                    lambda: handle_to_wire(platform.await_model(rest[0])),
                )
            if request.method == "POST" and rest[1:] == ("predict",):
                return self._batch_predict(request, platform, lock, rest[0])
        raise ResourceNotFoundError(
            f"no resource at {request.method} {request.path}"
        )

    # -- service endpoints ----------------------------------------------

    def _health(self) -> Response:
        return Response(body={
            "status": "ok",
            "platforms": self.platform_names(),
            "uptime_seconds": round(self.clock.now() - self._started, 9),
        })

    def _metrics_summary(self) -> Response:
        snapshot = self.telemetry.snapshot()
        return Response(body={
            "counters": snapshot["counters"],
            "platforms": snapshot["platforms"],
            "operations": self.telemetry.sample_summaries(),
            "uptime_seconds": round(self.clock.now() - self._started, 9),
        })

    def _list_platforms(self) -> Response:
        return Response(body={"platforms": [
            {
                "name": name,
                "complexity": platform.complexity,
                "synchronous": platform.synchronous,
                "controls": sorted(platform.exposed_dimensions),
                "classifiers": platform.classifier_abbrs(),
            }
            for name, platform in sorted(self._platforms.items())
        ]})

    # -- platform operations ---------------------------------------------

    def _upload_dataset(self, request, platform, lock) -> Response:
        body = request.json()
        X = decode_array(body.get("X"), context="field 'X'")
        y = decode_array(body.get("y"), context="field 'y'")
        self._check_batch_rows(X, "upload")
        # Validate at the serving edge: malformed payloads answer a
        # structured 400 here instead of a numpy error mid-fit.
        X, y = check_X_y(X, y, min_samples=2)
        dataset_name = str(body.get("name", "dataset"))
        return self._timed(
            platform, lock, "upload_dataset",
            lambda: {"dataset_id": platform.upload_dataset(
                X, y, name=dataset_name)},
        )

    def _create_model(self, request, platform, lock) -> Response:
        body = request.json()
        params = body.get("params") or None
        if params is not None and not isinstance(params, dict):
            params = {name: value for name, value in params}
        classifier = body.get("classifier")
        feature_selection = body.get("feature_selection")
        dataset_id = str(body.get("dataset_id", ""))
        return self._timed(
            platform, lock, "create_model",
            lambda: {"model_id": platform.create_model(
                dataset_id,
                classifier=classifier,
                params=params,
                feature_selection=feature_selection,
            )},
        )

    def _batch_predict(self, request, platform, lock, model_id) -> Response:
        body = request.json()
        X = decode_array(body.get("X"), context="field 'X'")
        self._check_batch_rows(X, "predict")
        X = check_array(X)
        def predict() -> dict:
            predictions = platform.batch_predict(model_id, X)
            return {"predictions": encode_array(predictions)}
        return self._timed(platform, lock, "batch_predict", predict)

    def _check_batch_rows(self, X, operation: str) -> None:
        rows = int(X.shape[0]) if X.ndim else 0
        if rows > self.limits.max_batch_rows:
            raise PayloadTooLargeError(
                f"{operation} batch of {rows} rows exceeds the "
                f"{self.limits.max_batch_rows}-row limit"
            )

    def _timed(self, platform, lock, operation: str, fn) -> Response:
        """Run one platform operation under its lock, with telemetry.

        Errors propagate to the error middleware after being counted;
        latency is measured on the gateway clock and recorded as a raw
        sample so ``/metrics/summary`` reports exact percentiles.
        """
        started = self.clock.now()
        try:
            with lock:
                body = fn()
        except Exception as exc:
            self.telemetry.record_error(platform.name, type(exc).__name__)
            self.telemetry.record_request(
                platform.name, operation,
                seconds=self.clock.now() - started, outcome="error",
            )
            raise
        self.telemetry.record_request(
            platform.name, operation, seconds=self.clock.now() - started,
        )
        self.telemetry.record_sample(
            f"latency_samples.{operation}", self.clock.now() - started,
        )
        return Response(body=body)


class PlatformHTTPServer(ThreadingHTTPServer):
    """Threaded stdlib HTTP server bound to one :class:`ServingGateway`.

    Each connection is handled on its own daemon thread; the gateway's
    per-platform locks serialize simulator access underneath, so the
    wire front-end adds concurrency without adding nondeterminism.
    """

    daemon_threads = True

    def __init__(self, gateway: ServingGateway,
                 host: str = "127.0.0.1", port: int = 0,
                 max_requests: int | None = None):
        super().__init__((host, port), _GatewayRequestHandler)
        self.gateway = gateway
        self._budget_lock = threading.Lock()
        self._requests_left = max_requests

    @property
    def url(self) -> str:
        """Base URL of the bound socket (port resolved when 0 was asked)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def note_request_handled(self) -> bool:
        """Count one handled request; True when the budget just ran out."""
        with self._budget_lock:
            if self._requests_left is None:
                return False
            self._requests_left -= 1
            return self._requests_left <= 0


class _GatewayRequestHandler(BaseHTTPRequestHandler):
    """Translates raw HTTP to gateway :class:`Request`/:class:`Response`."""

    server_version = "repro-serving/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 (stdlib handler naming)
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        gateway = self.server.gateway
        declared = int(self.headers.get("Content-Length", 0) or 0)
        if declared > gateway.limits.max_body_bytes:
            # Refuse before reading: the body-limit middleware sees the
            # declared length and answers 413; the unread body forces a
            # connection close instead of a poisoned keep-alive stream.
            raw_body = b""
            self.close_connection = True
        else:
            raw_body = self.rfile.read(declared) if declared else b""
        request = Request(
            method=method,
            path=self.path,
            raw_body=raw_body,
            headers={key: value for key, value in self.headers.items()},
        )
        response = gateway.handle(request)
        payload = response.payload()
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)
        if self.server.note_request_handled():
            # The request budget (serve --max-requests) is exhausted:
            # stop the serve loop from this handler thread.
            threading.Thread(target=self.server.shutdown).start()

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        """Silence the default stderr chatter; AccessLog is the record."""


def serve_background(gateway: ServingGateway,
                     host: str = "127.0.0.1", port: int = 0):
    """Boot a server on a daemon thread; returns ``(server, thread)``.

    The loopback pattern every test and benchmark uses::

        server, thread = serve_background(ServingGateway([BigML()]))
        client = HTTPPlatformClient(server.url, "bigml")
        ...
        server.shutdown(); thread.join()
    """
    server = PlatformHTTPServer(gateway, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True, name="repro-serving"
    )
    thread.start()
    return server, thread
