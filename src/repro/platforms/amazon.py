"""Amazon Machine Learning simulator.

Amazon ML does not reveal its classifier in the console, but its
documentation states binary classification uses Logistic Regression
(paper footnote 7).  Table 1 gives its three tunable parameters:
``maxIter``, ``regParam`` and ``shuffleType`` — parameter tuning is the
*only* control Amazon exposes (no FEAT, no CLF).

Section 6.2 nonetheless finds non-linear behaviour on ~16% of datasets
and a non-linear boundary on CIRCLE (Fig 13).  The real-world cause is
Amazon's data "recipes": quantile binning of numeric features feeding the
linear model.  The simulator reproduces exactly that — an internal probe
decides whether to enable the binning recipe, then trains SGD Logistic
Regression with the user's parameters.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator
from repro.learn.linear import LogisticRegression
from repro.learn.pipeline import Pipeline
from repro.learn.preprocessing import QuantileBinningTransform
from repro.platforms.autoselect import AutoClassifierSelector
from repro.platforms.base import (
    ClassifierOption,
    ControlSurface,
    MLaaSPlatform,
    ModelHandle,
    ParameterSpec,
)

__all__ = ["Amazon"]


def _build_lr(params: dict, random_state: int) -> LogisticRegression:
    """Translate Amazon parameter names into the local LR estimator."""
    return LogisticRegression(
        penalty="l2",
        C=1.0 / max(float(params["regParam"]), 1e-12),
        solver="sgd",
        max_iter=int(params["maxIter"]),
        shuffle=params["shuffleType"] == "auto",
        random_state=random_state,
    )


_LR_OPTION = ClassifierOption(
    abbr="LR",
    label="Logistic Regression",
    parameters=(
        # Paper scan: numeric parameters at D/100, D, 100*D (§3.2).
        ParameterSpec("maxIter", 10, (1, 10, 1000)),
        ParameterSpec("regParam", 1e-2, (1e-4, 1e-2, 1.0)),
        ParameterSpec("shuffleType", "auto", ("auto", "none")),
    ),
    build=_build_lr,
)


class Amazon(MLaaSPlatform):
    """Parameter-tuning-only platform (claimed single classifier)."""

    name = "amazon"
    complexity = 2
    controls = ControlSurface(
        feature_selectors=(),
        classifiers=(_LR_OPTION,),
        supports_parameter_tuning=True,
    )

    def _assemble(self, handle: ModelHandle, X: np.ndarray, y: np.ndarray) -> BaseEstimator:
        seed = self._job_seed(handle)
        estimator = _build_lr(handle.params, seed)
        # Hidden server-side recipe: probe whether quantile binning helps;
        # this is invisible to the user and is what §6.2 detects.
        binned = Pipeline([
            ("binning", QuantileBinningTransform(n_bins=8)),
            ("classifier", _build_lr(handle.params, seed)),
        ])
        selector = AutoClassifierSelector(
            linear_candidate=estimator,
            nonlinear_candidate=binned,
            probe_size=400,
            n_folds=3,
            margin=0.05,  # binning only enabled when clearly better
            random_state=seed,
        )
        winner, outcome = selector.select(X, y)
        handle.metadata["selection"] = outcome
        return winner
