"""repro.platforms — simulators of the six MLaaS platforms + local library.

The platforms, ordered by the paper's complexity axis (Figure 2):

========  ==============================  =======================
Position  Platform                        Controls exposed
========  ==============================  =======================
0         :class:`ABM`                    none (black box)
1         :class:`Google`                 none (black box)
2         :class:`Amazon`                 PARA
3         :class:`PredictionIO`           CLF, PARA
4         :class:`BigML`                  CLF, PARA
5         :class:`Microsoft`              FEAT, CLF, PARA
6         :class:`LocalLibrary`           FEAT, CLF, PARA (full)
========  ==============================  =======================

``ALL_PLATFORMS`` lists the classes in complexity order;
``make_platform(name)`` builds one by name.
"""

from repro.platforms.abm import ABM
from repro.platforms.amazon import Amazon
from repro.platforms.autoselect import AutoClassifierSelector, SelectionOutcome
from repro.platforms.base import (
    ClassifierOption,
    ControlSurface,
    JobState,
    MLaaSPlatform,
    ModelHandle,
    ParameterSpec,
)
from repro.platforms.bigml import BigML
from repro.platforms.google import Google
from repro.platforms.local import LocalLibrary
from repro.platforms.microsoft import Microsoft
from repro.platforms.predictionio import PredictionIO

__all__ = [
    "MLaaSPlatform",
    "ControlSurface",
    "ClassifierOption",
    "ParameterSpec",
    "JobState",
    "ModelHandle",
    "AutoClassifierSelector",
    "SelectionOutcome",
    "ABM",
    "Google",
    "Amazon",
    "PredictionIO",
    "BigML",
    "Microsoft",
    "LocalLibrary",
    "ALL_PLATFORMS",
    "MLAAS_PLATFORMS",
    "make_platform",
]

#: All platform classes in the paper's complexity order (Fig 2 x-axis).
ALL_PLATFORMS = (ABM, Google, Amazon, PredictionIO, BigML, Microsoft, LocalLibrary)

#: The six cloud platforms (excluding the local reference library).
MLAAS_PLATFORMS = (ABM, Google, Amazon, PredictionIO, BigML, Microsoft)

_BY_NAME = {cls.name: cls for cls in ALL_PLATFORMS}


def make_platform(name: str, random_state: int = 0, fit_cache=None) -> MLaaSPlatform:
    """Instantiate a platform by its lowercase name.

    ``fit_cache`` optionally supplies a shared externally-owned
    :class:`~repro.learn.cache.FitCache` (campaign shards pass one cache
    to every platform they construct).
    """
    try:
        cls = _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
    return cls(random_state=random_state, fit_cache=fit_cache)
