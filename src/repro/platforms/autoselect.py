"""Server-side automatic classifier selection for black-box platforms.

Section 6 of the paper finds "clear evidence that fully automated
(black-box) systems like Google and ABM are using server-side tests to
automate classifier choices, including differentiating between linear and
non-linear classifiers" — and that "their mechanisms occasionally err and
choose suboptimal classifiers."

:class:`AutoClassifierSelector` reproduces that policy: it cross-validates
one linear candidate against one non-linear candidate on (a subsample of)
the uploaded training data and deploys the winner.  Selection on a small
subsample with few folds is exactly what makes the mechanism cheap *and*
occasionally wrong, matching the paper's observation without any
hard-coded mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError
from repro.learn.base import BaseEstimator, clone
from repro.learn.metrics import f_score
from repro.learn.model_selection import StratifiedKFold
from repro.learn.validation import check_X_y, check_random_state

__all__ = ["AutoClassifierSelector", "SelectionOutcome"]


@dataclass(frozen=True)
class SelectionOutcome:
    """Record of one internal selection decision (for analysis/tests)."""

    chosen_family: str        # "linear" or "nonlinear"
    linear_score: float
    nonlinear_score: float
    n_probe_samples: int


class AutoClassifierSelector:
    """Pick between a linear and a non-linear classifier via internal CV.

    Parameters
    ----------
    linear_candidate : estimator
        The linear model deployed when the data looks linearly separable.
    nonlinear_candidate : estimator
        The non-linear model deployed otherwise.  Google's boundary on
        CIRCLE looks kernel-smooth while ABM's looks axis-aligned
        (Fig 10), so Google uses a smooth candidate and ABM a tree.
    probe_size : int
        Maximum training subsample used for the internal test — the
        source of occasional wrong choices on noisy datasets.
    n_folds : int
        Internal cross-validation folds.
    margin : float
        The non-linear candidate must beat the linear one by this margin
        to be chosen; biases the service toward the cheaper linear model
        (matching §6.2: Google chose linear on ~61% of datasets).
    random_state : int, Generator, or None
        Seed for subsampling and folds.
    """

    def __init__(
        self,
        linear_candidate: BaseEstimator,
        nonlinear_candidate: BaseEstimator,
        probe_size: int = 500,
        n_folds: int = 3,
        margin: float = 0.01,
        random_state=None,
    ):
        self.linear_candidate = linear_candidate
        self.nonlinear_candidate = nonlinear_candidate
        self.probe_size = probe_size
        self.n_folds = n_folds
        self.margin = margin
        self.random_state = random_state

    def _probe_indices(self, y: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n_samples = y.shape[0]
        if n_samples <= self.probe_size:
            return np.arange(n_samples)
        # Stratified subsample keeps both classes in the probe.
        chosen: list[int] = []
        for c in np.unique(y):
            members = np.flatnonzero(y == c)
            share = max(2, int(round(self.probe_size * members.size / n_samples)))
            share = min(share, members.size)
            chosen.extend(rng.choice(members, size=share, replace=False).tolist())
        return np.array(sorted(chosen), dtype=int)

    def _cv_score(self, estimator: BaseEstimator, X, y, rng) -> float:
        n_folds = min(self.n_folds, int(np.min(np.bincount(
            (y == np.unique(y)[1]).astype(int)
        ))))
        if n_folds < 2:
            # Degenerate probe: fall back to training-fit comparison.
            model = clone(estimator)
            model.fit(X, y)
            return f_score(y, model.predict(X))
        splitter = StratifiedKFold(
            n_splits=n_folds, shuffle=True,
            random_state=int(rng.integers(0, 2**31)),
        )
        scores = []
        # repro: disable=P304 -- probe fits see a freshly seeded fold split per call, so cached fits would never be hit
        for train, test in splitter.split(X, y):
            if len(np.unique(y[train])) < 2:
                continue
            model = clone(estimator)
            try:
                model.fit(X[train], y[train])
                scores.append(f_score(y[test], model.predict(X[test])))
            except ReproError:
                # A candidate that cannot fit a fold loses that fold; the
                # server-side probe never surfaces errors to the client.
                scores.append(0.0)
        return float(np.mean(scores)) if scores else 0.0

    def select(self, X: np.ndarray, y: np.ndarray) -> tuple[BaseEstimator, SelectionOutcome]:
        """Return the winning (unfitted) estimator and the decision record."""
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        probe = self._probe_indices(y, rng)
        X_probe, y_probe = X[probe], y[probe]
        linear_score = self._cv_score(self.linear_candidate, X_probe, y_probe, rng)
        nonlinear_score = self._cv_score(self.nonlinear_candidate, X_probe, y_probe, rng)
        if nonlinear_score > linear_score + self.margin:
            winner = clone(self.nonlinear_candidate)
            family = "nonlinear"
        else:
            winner = clone(self.linear_candidate)
            family = "linear"
        outcome = SelectionOutcome(
            chosen_family=family,
            linear_score=linear_score,
            nonlinear_score=nonlinear_score,
            n_probe_samples=int(probe.size),
        )
        return winner, outcome
