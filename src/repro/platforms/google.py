"""Google Prediction API simulator.

The real service (retired in 2018) was a fully automated black box: a
"1-click" train call with no user-visible pipeline controls (Figure 1 —
Google exposes *no* steps).  Section 6 of the paper infers that Google
switches between a linear classifier and a smooth, kernel-like non-linear
classifier depending on dataset characteristics: its decision boundary on
CIRCLE is circular (Fig 10a), on LINEAR a straight line (Fig 10b).

This simulator reproduces that policy with an
:class:`~repro.platforms.autoselect.AutoClassifierSelector` choosing
between Logistic Regression and a distance-weighted kNN (whose smooth
boundary matches the kernel-method signature the paper observed).
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator
from repro.learn.linear import LogisticRegression
from repro.learn.neighbors import KNeighborsClassifier
from repro.platforms.autoselect import AutoClassifierSelector
from repro.platforms.base import ControlSurface, MLaaSPlatform, ModelHandle

__all__ = ["Google"]


class Google(MLaaSPlatform):
    """Fully automated black-box platform with hidden classifier selection."""

    name = "google"
    complexity = 1
    controls = ControlSurface()  # no FEAT, no CLF, no PARA

    def _assemble(self, handle: ModelHandle, X: np.ndarray, y: np.ndarray) -> BaseEstimator:
        seed = self._job_seed(handle)
        selector = AutoClassifierSelector(
            linear_candidate=LogisticRegression(
                penalty="l2", C=1.0, solver="lbfgs", max_iter=200
            ),
            nonlinear_candidate=KNeighborsClassifier(
                n_neighbors=7, weights="distance"
            ),
            probe_size=500,
            n_folds=3,
            margin=0.01,
            random_state=seed,
        )
        winner, outcome = selector.select(X, y)
        handle.metadata["selection"] = outcome
        return winner
