"""Automatic Business Modeler (ABM) simulator.

ABM is the paper's other fully automated black box (no user-visible
controls).  Its inferred policy also switches between linear and
non-linear classifiers, but its CIRCLE boundary is *rectangular*
(Fig 10c) — the signature of a tree-based non-linear classifier.  The
paper ranks ABM's internal optimization slightly below Google's, which we
reproduce with a coarser internal probe (smaller subsample, stingier
margin toward switching).
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator
from repro.learn.linear import LogisticRegression
from repro.learn.tree import DecisionTreeClassifier
from repro.platforms.autoselect import AutoClassifierSelector
from repro.platforms.base import ControlSurface, MLaaSPlatform, ModelHandle

__all__ = ["ABM"]


class ABM(MLaaSPlatform):
    """Fully automated black-box platform with tree-based non-linear mode."""

    name = "abm"
    complexity = 0
    controls = ControlSurface()  # no FEAT, no CLF, no PARA

    def _assemble(self, handle: ModelHandle, X: np.ndarray, y: np.ndarray) -> BaseEstimator:
        seed = self._job_seed(handle)
        selector = AutoClassifierSelector(
            linear_candidate=LogisticRegression(
                penalty="l2", C=0.5, solver="lbfgs", max_iter=100
            ),
            nonlinear_candidate=DecisionTreeClassifier(
                max_depth=6, min_samples_leaf=2,
                random_state=seed,
            ),
            probe_size=200,   # coarser probe than Google -> more errors
            n_folds=2,
            margin=0.03,      # stronger bias toward the linear default
            random_state=seed,
        )
        winner, outcome = selector.select(X, y)
        handle.metadata["selection"] = outcome
        return winner
