"""Microsoft Azure ML Studio simulator — the most configurable platform.

Azure exposes every pipeline step (Figure 1): 8 feature-selection choices
(Fisher LDA + 7 filters), 7 measured classifiers, and 23 tunable
parameters (Table 1 / Table 2).  The paper's headline finding is that a
heavily tuned Microsoft model performs nearly identically to a tuned
local scikit-learn model, while Microsoft's *default* configuration ranks
last among the platforms — its defaults (notably the heavily regularized
Logistic Regression and the single-iteration SVM) are poor out of the box.

Parameter-translation notes (platform name -> local estimator):

* LR ``memory size for L-BFGS`` bounds the quasi-Newton history; its
  observable effect is convergence quality, mapped to the iteration
  budget ``max_iter = 10 * memory_size``.
* BST ``max. # of leaves per tree`` maps to the equivalent depth cap
  ``ceil(log2(leaves))``.
* RF ``# of random splits per node`` maps onto the number of candidate
  features per split (1 -> single feature, 128 -> sqrt, 1024 -> all).
* DJ ``# of optimization step per DAG layer`` maps to the number of
  candidate merge pairs scanned per layer (capped at 256 for tractable
  simulation; the cap only matters above ~23 DAG width).
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator
from repro.learn.ensemble import GradientBoostingClassifier, RandomForestClassifier
from repro.learn.linear import (
    AveragedPerceptron,
    BayesPointMachine,
    LinearSVC,
    LogisticRegression,
)
from repro.learn.tree import DecisionJungleClassifier
from repro.platforms._assembly import (
    MICROSOFT_FEATURE_SELECTORS,
    wrap_with_feature_step,
)
from repro.platforms.base import (
    ClassifierOption,
    ControlSurface,
    MLaaSPlatform,
    ModelHandle,
    ParameterSpec,
)

__all__ = ["Microsoft"]


def _build_lr(params: dict, random_state: int) -> LogisticRegression:
    l1 = float(params["l1_weight"])
    l2 = float(params["l2_weight"])
    if l1 > 0.0 and l1 >= l2:
        penalty, weight, solver = "l1", l1, "sgd"
    elif l2 > 0.0:
        penalty, weight, solver = "l2", l2, "lbfgs"
    else:
        penalty, weight, solver = "none", 1.0, "lbfgs"
    return LogisticRegression(
        penalty=penalty,
        C=1.0 / max(weight, 1e-12),
        solver=solver,
        tol=float(params["optimization_tolerance"]),
        max_iter=max(10, 10 * int(params["memory_size"])),
        random_state=random_state,
    )


def _build_svm(params: dict, random_state: int) -> LinearSVC:
    return LinearSVC(
        C=1.0 / max(float(params["lambda"]), 1e-12),
        max_iter=int(params["n_iterations"]),
        random_state=random_state,
    )


def _build_ap(params: dict, random_state: int) -> AveragedPerceptron:
    return AveragedPerceptron(
        learning_rate=float(params["learning_rate"]),
        max_iter=int(params["max_iterations"]),
        random_state=random_state,
    )


def _build_bpm(params: dict, random_state: int) -> BayesPointMachine:
    return BayesPointMachine(
        n_iter=int(params["n_training_iterations"]),
        random_state=random_state,
    )


def _build_bst(params: dict, random_state: int) -> GradientBoostingClassifier:
    max_leaves = max(2, int(params["max_leaves"]))
    return GradientBoostingClassifier(
        n_estimators=int(params["n_trees"]),
        learning_rate=float(params["learning_rate"]),
        max_depth=max(1, int(np.ceil(np.log2(max_leaves)))),
        min_samples_leaf=int(params["min_instances_per_leaf"]),
        random_state=random_state,
    )


def _forest_max_features(random_splits: int):
    if random_splits <= 1:
        return 1
    if random_splits <= 128:
        return "sqrt"
    return None


def _build_rf(params: dict, random_state: int) -> RandomForestClassifier:
    return RandomForestClassifier(
        n_estimators=int(params["n_trees"]),
        max_depth=int(params["max_depth"]),
        min_samples_leaf=int(params["min_samples_per_leaf"]),
        max_features=_forest_max_features(int(params["random_splits"])),
        bootstrap=params["resampling"] == "bagging",
        random_state=random_state,
    )


def _build_dj(params: dict, random_state: int) -> DecisionJungleClassifier:
    return DecisionJungleClassifier(
        n_dags=int(params["n_dags"]),
        max_depth=min(int(params["max_depth"]), 16),
        max_width=min(int(params["max_width"]), 64),
        merge_rounds=min(int(params["optimization_steps"]), 256),
        bootstrap=params["resampling"] == "bagging",
        random_state=random_state,
    )


# Defaults below are Azure Studio's documented module defaults; the paper's
# numeric grid scans D/100, D, 100*D around each (§3.2).
_OPTIONS = (
    ClassifierOption(
        abbr="LR",
        label="Two-Class Logistic Regression",
        parameters=(
            ParameterSpec("optimization_tolerance", 1e-7, (1e-9, 1e-7, 1e-5)),
            ParameterSpec("l1_weight", 1.0, (0.01, 1.0, 100.0)),
            ParameterSpec("l2_weight", 1.0, (0.01, 1.0, 100.0)),
            ParameterSpec("memory_size", 20, (1, 20, 2000)),
        ),
        build=_build_lr,
    ),
    ClassifierOption(
        abbr="SVM",
        label="Two-Class Support Vector Machine",
        parameters=(
            ParameterSpec("n_iterations", 1, (1, 10, 100)),
            ParameterSpec("lambda", 0.001, (1e-5, 0.001, 0.1)),
        ),
        build=_build_svm,
    ),
    ClassifierOption(
        abbr="AP",
        label="Two-Class Averaged Perceptron",
        parameters=(
            ParameterSpec("learning_rate", 1.0, (0.01, 1.0, 100.0)),
            ParameterSpec("max_iterations", 10, (1, 10, 1000)),
        ),
        build=_build_ap,
    ),
    ClassifierOption(
        abbr="BPM",
        label="Two-Class Bayes Point Machine",
        parameters=(
            ParameterSpec("n_training_iterations", 30, (1, 30, 100)),
        ),
        build=_build_bpm,
    ),
    ClassifierOption(
        abbr="BST",
        label="Two-Class Boosted Decision Tree",
        parameters=(
            ParameterSpec("max_leaves", 20, (4, 20, 128)),
            ParameterSpec("min_instances_per_leaf", 10, (1, 10, 50)),
            ParameterSpec("learning_rate", 0.2, (0.002, 0.2, 1.0)),
            ParameterSpec("n_trees", 100, (1, 100, 500)),
        ),
        build=_build_bst,
    ),
    ClassifierOption(
        abbr="RF",
        label="Two-Class Decision Forest",
        parameters=(
            ParameterSpec("resampling", "bagging", ("bagging", "replicate")),
            ParameterSpec("n_trees", 8, (2, 8, 64)),
            ParameterSpec("max_depth", 32, (4, 32, 64)),
            ParameterSpec("random_splits", 128, (1, 128, 1024)),
            ParameterSpec("min_samples_per_leaf", 1, (1, 4, 16)),
        ),
        build=_build_rf,
    ),
    ClassifierOption(
        abbr="DJ",
        label="Two-Class Decision Jungle",
        parameters=(
            ParameterSpec("resampling", "bagging", ("bagging", "replicate")),
            ParameterSpec("n_dags", 8, (2, 8, 32)),
            ParameterSpec("max_depth", 32, (4, 32, 64)),
            ParameterSpec("max_width", 128, (16, 128, 256)),
            ParameterSpec("optimization_steps", 2048, (64, 2048, 4096)),
        ),
        build=_build_dj,
    ),
)


class Microsoft(MLaaSPlatform):
    """Fully configurable platform: FEAT + CLF + PARA."""

    name = "microsoft"
    complexity = 5
    controls = ControlSurface(
        feature_selectors=tuple(sorted(MICROSOFT_FEATURE_SELECTORS)),
        classifiers=_OPTIONS,
        supports_parameter_tuning=True,
    )

    def _assemble(self, handle: ModelHandle, X: np.ndarray, y: np.ndarray) -> BaseEstimator:
        option = self.controls.classifier(handle.classifier_abbr)
        estimator = option.build(handle.params, self._job_seed(handle))
        return wrap_with_feature_step(
            estimator, handle.feature_selection, MICROSOFT_FEATURE_SELECTORS,
            memory=self._fit_cache,
        )
