"""Shared helpers for assembling platform pipelines from configurations."""

from __future__ import annotations

from typing import Callable

from repro.exceptions import UnsupportedControlError
from repro.learn.base import BaseEstimator
from repro.learn.feature_selection import FisherLDATransform, SelectKBest
from repro.learn.pipeline import Pipeline
from repro.learn.preprocessing import (
    L1Normalizer,
    L2Normalizer,
    MaxAbsScaler,
    MinMaxScaler,
    StandardScaler,
)

__all__ = [
    "MICROSOFT_FEATURE_SELECTORS",
    "LOCAL_FEATURE_SELECTORS",
    "build_feature_step",
    "wrap_with_feature_step",
]

#: Azure ML Studio's 8 feature-selection choices (Table 1, FEAT column):
#: Fisher LDA plus 7 filter-based scorers.
MICROSOFT_FEATURE_SELECTORS: dict[str, Callable[[], object]] = {
    "fisher_lda": lambda: FisherLDATransform(keep_original=5),
    "filter_pearson": lambda: SelectKBest(scorer="pearson", k=0.5),
    "filter_mutual": lambda: SelectKBest(scorer="mutual_info", k=0.5),
    "filter_kendall": lambda: SelectKBest(scorer="kendall", k=0.5),
    "filter_spearman": lambda: SelectKBest(scorer="spearman", k=0.5),
    "filter_chi": lambda: SelectKBest(scorer="chi2", k=0.5),
    "filter_fisher": lambda: SelectKBest(scorer="fisher", k=0.5),
    "filter_count": lambda: SelectKBest(scorer="count", k=0.5),
}

#: The local library's 8 feature-selection/preprocessing choices
#: (Table 1, scikit-learn FEAT column).
LOCAL_FEATURE_SELECTORS: dict[str, Callable[[], object]] = {
    "f_classif": lambda: SelectKBest(scorer="f_classif", k=0.5),
    "mutual_info_classif": lambda: SelectKBest(scorer="mutual_info", k=0.5),
    "gaussian_norm": lambda: StandardScaler(with_mean=True, with_std=True),
    "min_max_scaler": lambda: MinMaxScaler(),
    "max_abs_scaler": lambda: MaxAbsScaler(),
    "l1_normalization": lambda: L1Normalizer(),
    "l2_normalization": lambda: L2Normalizer(),
    "standard_scaler": lambda: StandardScaler(),
}


def build_feature_step(name: str, registry: dict) -> object:
    """Instantiate a feature-selection step from a registry by name."""
    try:
        factory = registry[name]
    except KeyError:
        raise UnsupportedControlError(
            f"unknown feature selector {name!r}; "
            f"available: {sorted(registry)}"
        ) from None
    return factory()


def wrap_with_feature_step(
    estimator: BaseEstimator,
    feature_selection: str | None,
    registry: dict,
    memory=None,
) -> BaseEstimator:
    """Wrap an estimator in a pipeline when feature selection is set.

    ``memory`` (a :class:`~repro.learn.cache.FitCache`) is handed to the
    pipeline so the feature step's pure ``fit_transform`` is computed
    once per (step parameters, data) across a platform's training jobs:
    a parameter sweep re-fits the classifier per job but the shared
    feature step only on the first.
    """
    if feature_selection is None:
        return estimator
    step = build_feature_step(feature_selection, registry)
    return Pipeline(
        [("features", step), ("classifier", estimator)], memory=memory
    )
