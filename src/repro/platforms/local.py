"""Local ML library "platform" — the paper's fully-tunable reference point.

The paper simulates an ML system with full control using a local
scikit-learn installation (§3.2).  This module wraps our from-scratch
:mod:`repro.learn` library in the same platform interface as the MLaaS
simulators so the measurement harness treats it uniformly.  Its control
surface is the Table 1 scikit-learn row: 8 feature-selection /
preprocessing choices and 10 classifiers with their listed parameters.

Unlike the cloud platforms it is not a remote service — but keeping the
resource/job API means a measurement script cannot tell the difference,
exactly as the paper's pipeline treats "local" as a seventh platform.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator
from repro.learn.bayes import GaussianNB
from repro.learn.ensemble import (
    BaggingClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from repro.learn.linear import (
    LinearDiscriminantAnalysis,
    LinearSVC,
    LogisticRegression,
)
from repro.learn.neighbors import KNeighborsClassifier
from repro.learn.neural import MLPClassifier
from repro.learn.tree import DecisionTreeClassifier
from repro.platforms._assembly import LOCAL_FEATURE_SELECTORS, wrap_with_feature_step
from repro.platforms.base import (
    ClassifierOption,
    ControlSurface,
    MLaaSPlatform,
    ModelHandle,
    ParameterSpec,
)

__all__ = ["LocalLibrary"]


def _build_lr(params: dict, random_state: int) -> LogisticRegression:
    penalty = str(params["penalty"])
    solver = str(params["solver"])
    if penalty == "l1" and solver == "lbfgs":
        solver = "sgd"  # sklearn would reject this combo; follow its spirit
    return LogisticRegression(
        penalty=penalty,
        C=float(params["C"]),
        solver=solver,
        random_state=random_state,
    )


def _build_nb(params: dict, random_state: int) -> GaussianNB:
    prior = params["prior"]
    return GaussianNB(priors=None if prior == "empirical" else (0.5, 0.5))


def _build_svm(params: dict, random_state: int) -> LinearSVC:
    return LinearSVC(
        C=float(params["C"]),
        loss=str(params["loss"]),
        penalty=str(params["penalty"]),
        random_state=random_state,
    )


def _build_lda(params: dict, random_state: int) -> LinearDiscriminantAnalysis:
    shrinkage = params["shrinkage"]
    return LinearDiscriminantAnalysis(
        solver=str(params["solver"]),
        shrinkage=None if shrinkage == "none" else float(shrinkage),
    )


def _build_knn(params: dict, random_state: int) -> KNeighborsClassifier:
    return KNeighborsClassifier(
        n_neighbors=int(params["n_neighbors"]),
        weights=str(params["weights"]),
        p=float(params["p"]),
    )


def _build_dt(params: dict, random_state: int) -> DecisionTreeClassifier:
    max_features = params["max_features"]
    return DecisionTreeClassifier(
        criterion=str(params["criterion"]),
        max_features=None if max_features == "all" else max_features,
        random_state=random_state,
    )


def _build_bst(params: dict, random_state: int) -> GradientBoostingClassifier:
    max_features = params["max_features"]
    return GradientBoostingClassifier(
        n_estimators=int(params["n_estimators"]),
        learning_rate=float(params["learning_rate"]),
        max_features=None if max_features == "all" else max_features,
        random_state=random_state,
    )


def _build_bag(params: dict, random_state: int) -> BaggingClassifier:
    max_features = params["max_features"]
    return BaggingClassifier(
        n_estimators=int(params["n_estimators"]),
        max_features=None if max_features == "all" else max_features,
        random_state=random_state,
    )


def _build_rf(params: dict, random_state: int) -> RandomForestClassifier:
    return RandomForestClassifier(
        n_estimators=int(params["n_estimators"]),
        max_features=params["max_features"],
        random_state=random_state,
    )


def _build_mlp(params: dict, random_state: int) -> MLPClassifier:
    return MLPClassifier(
        activation=str(params["activation"]),
        solver=str(params["solver"]),
        alpha=float(params["alpha"]),
        max_iter=150,
        random_state=random_state,
    )


_OPTIONS = (
    ClassifierOption(
        abbr="LR",
        label="LogisticRegression",
        parameters=(
            ParameterSpec("penalty", "l2", ("l1", "l2", "none")),
            ParameterSpec("C", 1.0, (0.01, 1.0, 100.0)),
            ParameterSpec("solver", "lbfgs", ("lbfgs", "sgd")),
        ),
        build=_build_lr,
    ),
    ClassifierOption(
        abbr="NB",
        label="GaussianNB",
        parameters=(
            ParameterSpec("prior", "empirical", ("empirical", "uniform")),
        ),
        build=_build_nb,
    ),
    ClassifierOption(
        abbr="SVM",
        label="LinearSVC",
        parameters=(
            ParameterSpec("penalty", "l2", ("l2",)),
            ParameterSpec("C", 1.0, (0.01, 1.0, 100.0)),
            ParameterSpec("loss", "hinge", ("hinge", "squared_hinge")),
        ),
        build=_build_svm,
    ),
    ClassifierOption(
        abbr="LDA",
        label="LinearDiscriminantAnalysis",
        parameters=(
            ParameterSpec("solver", "lsqr", ("lsqr", "eigen")),
            ParameterSpec("shrinkage", "none", ("none", 0.1, 0.5)),
        ),
        build=_build_lda,
    ),
    ClassifierOption(
        abbr="KNN",
        label="KNeighborsClassifier",
        parameters=(
            ParameterSpec("n_neighbors", 5, (1, 5, 25)),
            ParameterSpec("weights", "uniform", ("uniform", "distance")),
            ParameterSpec("p", 2.0, (1.0, 2.0, 3.0)),
        ),
        build=_build_knn,
    ),
    ClassifierOption(
        abbr="DT",
        label="DecisionTreeClassifier",
        parameters=(
            ParameterSpec("criterion", "gini", ("gini", "entropy")),
            ParameterSpec("max_features", "all", ("all", "sqrt", "log2")),
        ),
        build=_build_dt,
    ),
    ClassifierOption(
        abbr="BST",
        label="GradientBoostingClassifier",
        parameters=(
            ParameterSpec("n_estimators", 50, (5, 50, 200)),
            ParameterSpec("learning_rate", 0.1, (0.001, 0.1, 1.0)),
            ParameterSpec("max_features", "all", ("all", "sqrt")),
        ),
        build=_build_bst,
    ),
    ClassifierOption(
        abbr="BAG",
        label="BaggingClassifier",
        parameters=(
            ParameterSpec("n_estimators", 10, (2, 10, 100)),
            ParameterSpec("max_features", "all", ("all", "sqrt")),
        ),
        build=_build_bag,
    ),
    ClassifierOption(
        abbr="RF",
        label="RandomForestClassifier",
        parameters=(
            ParameterSpec("n_estimators", 50, (5, 50, 200)),
            ParameterSpec("max_features", "sqrt", ("sqrt", "log2", 1.0)),
        ),
        build=_build_rf,
    ),
    ClassifierOption(
        abbr="MLP",
        label="MLPClassifier",
        parameters=(
            ParameterSpec("activation", "relu", ("relu", "tanh", "logistic")),
            ParameterSpec("solver", "adam", ("adam", "sgd")),
            ParameterSpec("alpha", 1e-4, (1e-6, 1e-4, 1e-2)),
        ),
        build=_build_mlp,
    ),
)


class LocalLibrary(MLaaSPlatform):
    """Fully-controlled local library, the top of the complexity axis."""

    name = "local"
    complexity = 6
    controls = ControlSurface(
        feature_selectors=tuple(sorted(LOCAL_FEATURE_SELECTORS)),
        classifiers=_OPTIONS,
        supports_parameter_tuning=True,
    )

    def _assemble(self, handle: ModelHandle, X: np.ndarray, y: np.ndarray) -> BaseEstimator:
        option = self.controls.classifier(handle.classifier_abbr)
        estimator = option.build(handle.params, self._job_seed(handle))
        return wrap_with_feature_step(
            estimator, handle.feature_selection, LOCAL_FEATURE_SELECTORS,
            memory=self._fit_cache,
        )
