"""MLaaS platform service model.

Every simulated platform is a :class:`MLaaSPlatform`: a stateful service
holding datasets, training jobs and trained models as addressable
resources, exactly the shape of the web APIs the paper scripted against
(§3.2: "we leverage web APIs provided by the platforms").  Training is a
job with a QUEUED → RUNNING → COMPLETED/FAILED lifecycle, and predictions
are served in batches against a model resource.

A platform's measurable surface is its :class:`ControlSurface`: which of
the paper's three control dimensions (FEAT, CLF, PARA) it exposes, which
classifiers are offered, and each classifier's tunable parameters with
their platform defaults.  Table 1 of the paper is encoded verbatim in the
per-vendor modules.
"""

from __future__ import annotations

import itertools
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import (
    JobFailedError,
    QuotaExceededError,
    ReproError,
    ResourceNotFoundError,
    UnsupportedControlError,
    ValidationError,
)
from repro.learn.base import BaseEstimator
from repro.learn.cache import FitCache
from repro.learn.validation import check_array, check_X_y

__all__ = [
    "ParameterSpec",
    "ClassifierOption",
    "ControlSurface",
    "JobState",
    "ModelHandle",
    "MLaaSPlatform",
    "TrainingFailure",
]


@dataclass(frozen=True)
class ParameterSpec:
    """One tunable parameter of a platform classifier.

    Attributes
    ----------
    name : str
        The parameter's name *as the platform spells it* (e.g. Amazon's
        ``regParam``), preserved so measurement scripts read like the
        paper's.
    default : object
        The platform's default value.
    values : tuple
        The grid scanned in experiments.  For numeric parameters this is
        the paper's ``D/100, D, 100*D`` scan; for categorical parameters,
        all options (§3.2).
    """

    name: str
    default: object
    values: tuple

    def __post_init__(self):
        if self.default not in self.values:
            raise ValidationError(
                f"default {self.default!r} for parameter {self.name!r} "
                f"must appear in its value grid {self.values!r}"
            )


@dataclass(frozen=True)
class ClassifierOption:
    """One classifier offered by a platform.

    Attributes
    ----------
    abbr : str
        Paper Table 4 abbreviation (LR, DT, RF, ...).
    label : str
        The platform's marketing name for the classifier.
    parameters : tuple of ParameterSpec
        Tunable parameters (Table 1).
    build : callable
        ``build(params: dict, random_state: int) -> estimator`` translating
        platform parameter names into a fitted-protocol estimator.
    """

    abbr: str
    label: str
    parameters: tuple
    build: Callable[[Mapping, int], BaseEstimator]

    def default_params(self) -> dict:
        """The platform's default value for every parameter."""
        return {p.name: p.default for p in self.parameters}

    def parameter_grid(self) -> list[dict]:
        """All parameter combinations scanned for this classifier."""
        if not self.parameters:
            return [{}]
        names = [p.name for p in self.parameters]
        combos = itertools.product(*(p.values for p in self.parameters))
        return [dict(zip(names, combo)) for combo in combos]

    def single_axis_grid(self) -> list[dict]:
        """Vary one parameter at a time around the defaults.

        This is how the paper counts its per-parameter measurements: each
        tuned parameter contributes its scan while others stay default.
        """
        grids = [self.default_params()]
        for spec in self.parameters:
            for value in spec.values:
                if value == spec.default:
                    continue
                params = self.default_params()
                params[spec.name] = value
                grids.append(params)
        return grids

    def validate_params(self, params: Mapping) -> dict:
        """Merge user params over defaults, rejecting unknown names."""
        known = {p.name for p in self.parameters}
        merged = self.default_params()
        for name, value in params.items():
            if name not in known:
                raise UnsupportedControlError(
                    f"classifier {self.label!r} has no parameter {name!r}; "
                    f"tunable parameters are {sorted(known)}"
                )
            merged[name] = value
        return merged


@dataclass(frozen=True)
class ControlSurface:
    """Which pipeline controls a platform exposes (paper Figure 1 row).

    Attributes
    ----------
    feature_selectors : tuple of str
        Names of supported feature-selection/preprocessing choices;
        empty when the platform has no FEAT control.
    classifiers : tuple of ClassifierOption
        Selectable classifiers; empty for black-box platforms.
    supports_parameter_tuning : bool
        Whether PARA is exposed.
    """

    feature_selectors: tuple = ()
    classifiers: tuple = ()
    supports_parameter_tuning: bool = False

    @property
    def exposed_dimensions(self) -> frozenset:
        dimensions = set()
        if self.feature_selectors:
            dimensions.add("FEAT")
        if self.classifiers:
            dimensions.add("CLF")
        if self.supports_parameter_tuning:
            dimensions.add("PARA")
        return frozenset(dimensions)

    def classifier(self, abbr: str) -> ClassifierOption:
        """Look up an offered classifier by abbreviation."""
        for option in self.classifiers:
            if option.abbr == abbr:
                return option
        available = [option.abbr for option in self.classifiers]
        raise UnsupportedControlError(
            f"classifier {abbr!r} is not offered; available: {available}"
        )


class JobState(str, Enum):
    """Lifecycle of a platform training job."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"


@dataclass(frozen=True)
class TrainingFailure:
    """Structured record of why a training job failed.

    ``stage`` pins the lifecycle step that broke (``"queue"`` — the job
    never started, e.g. its dataset was deleted; ``"assemble"`` — the
    configuration could not be turned into an estimator; ``"fit"`` — the
    estimator rejected the data), ``kind`` is the exception class name,
    and ``detail`` the human-readable message.

    The record renders and substring-matches like the plain string it
    replaces, so clients that log or grep ``failure_reason`` keep
    working while analysis code can now group failures by stage/kind.
    """

    stage: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"

    def __contains__(self, fragment: str) -> bool:
        return fragment in str(self)

    def to_dict(self) -> dict:
        """JSON-serializable form, for result stores and reports."""
        return {"stage": self.stage, "kind": self.kind, "detail": self.detail}


@dataclass
class ModelHandle:
    """Server-side record of one trained (or failed) model."""

    model_id: str
    dataset_id: str
    state: JobState
    classifier_abbr: str | None = None
    params: dict = field(default_factory=dict)
    feature_selection: str | None = None
    estimator: BaseEstimator | None = None
    failure_reason: TrainingFailure | None = None
    metadata: dict = field(default_factory=dict)


@dataclass
class _StoredDataset:
    dataset_id: str
    name: str
    X: np.ndarray
    y: np.ndarray


class MLaaSPlatform:
    """Base class for all simulated MLaaS services.

    Subclasses define ``name``, ``complexity`` (the paper's low→high
    ordering used on every figure's x-axis) and ``controls``, and override
    :meth:`_assemble` to turn a validated configuration into an estimator.

    The public API is resource-oriented:

    >>> platform = Microsoft()
    >>> ds = platform.upload_dataset(X_train, y_train, name="example")
    >>> model = platform.create_model(ds, classifier="BST")
    >>> predictions = platform.batch_predict(model, X_test)
    """

    #: Platform display name.
    name: str = "abstract"
    #: Position on the paper's complexity axis (0 = least control).
    complexity: int = 0
    #: Control surface (overridden per vendor).
    controls: ControlSurface = ControlSurface()
    #: Maximum dataset size accepted by upload (simulated service quota).
    max_upload_samples: int = 1_000_000

    def __init__(
        self,
        random_state: int = 0,
        synchronous: bool = True,
        rate_limit_per_minute: int | None = None,
        clock=None,
        fit_cache: FitCache | None = None,
    ):
        self.random_state = random_state
        #: When False, ``create_model`` only enqueues the job (QUEUED) and
        #: training happens on ``process_one_job``/``await_model`` — the
        #: poll-based shape of the real web APIs the paper scripted.
        self.synchronous = synchronous
        #: Optional API quota: requests allowed per rolling minute.
        #: Mutations *and* polls count — real APIs meter status checks
        #: too.  The paper excluded some vendors for "posing strict
        #: rate limit" (§8); enabling this reproduces that obstacle.
        self.rate_limit_per_minute = rate_limit_per_minute
        #: Injectable time source (seconds); monotonic clock by default.
        self._clock = clock if clock is not None else time.monotonic
        self._request_times: list[float] = []
        self._datasets: dict[str, _StoredDataset] = {}
        self._models: dict[str, ModelHandle] = {}
        self._job_queue: deque[str] = deque()
        self._counter = itertools.count(1)
        #: Content-keyed memo for pure pipeline-stage fits: a parameter
        #: sweep over one dataset re-fits the classifier per job but the
        #: shared feature-selection step only once (vendors pass this to
        #: their ``_assemble`` pipelines).  An externally supplied cache
        #: (campaign shards share one across every platform they drive)
        #: is never cleared by the platform — its owner decides when
        #: entries die — while a platform-owned cache is emptied when
        #: the last dataset is deleted.  Keys are content-derived, so
        #: sharing a cache across platforms can only replay fits that
        #: are bit-identical to recomputing them.
        self._owns_fit_cache = fit_cache is None
        self._fit_cache = FitCache() if fit_cache is None else fit_cache

    def _consume_request(self) -> None:
        """Record one API request, enforcing the rolling-minute quota."""
        if self.rate_limit_per_minute is None:
            return
        now = float(self._clock())
        window_start = now - 60.0
        self._request_times = [
            t for t in self._request_times if t > window_start
        ]
        if len(self._request_times) >= self.rate_limit_per_minute:
            raise QuotaExceededError(
                f"{self.name} rate limit exceeded: "
                f"{self.rate_limit_per_minute} requests/minute"
            )
        self._request_times.append(now)

    # ------------------------------------------------------------------
    # Resource API
    # ------------------------------------------------------------------

    def upload_dataset(self, X, y, name: str = "dataset") -> str:
        """Store a training dataset; returns its resource id."""
        self._consume_request()
        X, y = check_X_y(X, y, min_samples=2)
        if X.shape[0] > self.max_upload_samples:
            raise QuotaExceededError(
                f"{self.name} rejects uploads over "
                f"{self.max_upload_samples} samples (got {X.shape[0]})"
            )
        dataset_id = f"{self.name}-ds-{next(self._counter)}"
        self._datasets[dataset_id] = _StoredDataset(dataset_id, name, X.copy(), y.copy())
        return dataset_id

    def delete_dataset(self, dataset_id: str) -> None:
        """Remove an uploaded dataset."""
        self._consume_request()
        if dataset_id not in self._datasets:
            raise ResourceNotFoundError(f"no dataset {dataset_id!r}")
        del self._datasets[dataset_id]
        if not self._datasets and self._owns_fit_cache:
            # No data left to train on: drop the memoized stage fits so
            # a long-lived platform does not pin dead arrays.  (Counters
            # survive; a shared external cache is its owner's to clear.)
            self._fit_cache.clear()

    def list_datasets(self) -> list[str]:
        """Ids of all stored datasets."""
        return sorted(self._datasets)

    def create_model(
        self,
        dataset_id: str,
        classifier: str | None = None,
        params: Mapping | None = None,
        feature_selection: str | None = None,
    ) -> str:
        """Launch a training job; returns the model resource id.

        ``classifier``/``params``/``feature_selection`` are validated
        against the platform's control surface — requesting a control the
        platform does not expose raises
        :class:`~repro.exceptions.UnsupportedControlError`, just as the
        real API would reject an unknown request field.
        """
        self._consume_request()
        dataset = self._datasets.get(dataset_id)
        if dataset is None:
            raise ResourceNotFoundError(f"no dataset {dataset_id!r}")
        configuration = self._validate_configuration(
            classifier, params, feature_selection
        )
        model_id = f"{self.name}-model-{next(self._counter)}"
        handle = ModelHandle(
            model_id=model_id,
            dataset_id=dataset_id,
            state=JobState.QUEUED,
            classifier_abbr=configuration["classifier"],
            params=configuration["params"],
            feature_selection=configuration["feature_selection"],
        )
        handle.metadata["job_seed"] = self._derive_job_seed(dataset, handle)
        self._models[model_id] = handle
        if self.synchronous:
            self._run_training_job(handle, dataset)
        else:
            self._job_queue.append(model_id)
        return model_id

    def pending_jobs(self) -> list[str]:
        """Model ids queued but not yet trained (async mode)."""
        return list(self._job_queue)

    def process_one_job(self) -> str | None:
        """Train the oldest queued job; returns its model id (or None).

        Deleting a model's dataset while its job is queued fails the job,
        as a real service would.
        """
        if not self._job_queue:
            return None
        model_id = self._job_queue.popleft()
        handle = self._models[model_id]
        dataset = self._datasets.get(handle.dataset_id)
        if dataset is None:
            handle.state = JobState.FAILED
            handle.failure_reason = TrainingFailure(
                stage="queue",
                kind="ResourceNotFoundError",
                detail=f"dataset {handle.dataset_id} was deleted "
                       "before training",
            )
            return model_id
        self._run_training_job(handle, dataset)
        return model_id

    def await_model(self, model_id: str) -> ModelHandle:
        """Block until a model's job reaches a terminal state.

        In the simulator "blocking" means draining the queue up to and
        including the requested job — the observable behaviour of polling
        a real training job until it completes.  Every poll of the job
        state is a metered API request: real services count status calls
        against the same quota as mutations, which is exactly why the
        paper's scripts had to pace their polling loops (§3.2, §8).
        """
        handle = self.get_model(model_id)
        while handle.state is JobState.QUEUED:
            self._consume_request()
            if model_id not in self._job_queue:
                raise JobFailedError(
                    f"model {model_id} is queued but not in the job queue"
                )
            self.process_one_job()
        return handle

    def get_model(self, model_id: str) -> ModelHandle:
        """Fetch a model's job state and metadata (one metered request)."""
        self._consume_request()
        return self._require_model(model_id)

    def _require_model(self, model_id: str) -> ModelHandle:
        """Server-side handle lookup; free, unlike the public poll."""
        handle = self._models.get(model_id)
        if handle is None:
            raise ResourceNotFoundError(f"no model {model_id!r}")
        return handle

    def list_models(self) -> list[str]:
        """Ids of all models (any job state)."""
        return sorted(self._models)

    def batch_predict(self, model_id: str, X) -> np.ndarray:
        """Return label predictions for a batch of query samples."""
        self._consume_request()
        handle = self._require_model(model_id)
        if handle.state is JobState.FAILED:
            raise JobFailedError(
                f"model {model_id} failed: {handle.failure_reason}"
            )
        if handle.state is not JobState.COMPLETED or handle.estimator is None:
            raise JobFailedError(f"model {model_id} is not ready")
        X = check_array(X)
        return np.asarray(handle.estimator.predict(X))

    # ------------------------------------------------------------------
    # Configuration validation against the control surface
    # ------------------------------------------------------------------

    def _validate_configuration(
        self,
        classifier: str | None,
        params: Mapping | None,
        feature_selection: str | None,
    ) -> dict:
        surface = self.controls
        if classifier is not None and not surface.classifiers:
            raise UnsupportedControlError(
                f"{self.name} is a black-box platform; it does not expose "
                f"classifier choice"
            )
        if params and not surface.supports_parameter_tuning:
            raise UnsupportedControlError(
                f"{self.name} does not expose parameter tuning"
            )
        if feature_selection is not None:
            if not surface.feature_selectors:
                raise UnsupportedControlError(
                    f"{self.name} does not expose feature selection"
                )
            if feature_selection not in surface.feature_selectors:
                raise UnsupportedControlError(
                    f"{self.name} has no feature selector "
                    f"{feature_selection!r}; available: "
                    f"{list(surface.feature_selectors)}"
                )
        resolved_params: dict = {}
        if classifier is not None:
            option = surface.classifier(classifier)
            resolved_params = option.validate_params(params or {})
        elif surface.classifiers:
            # Platform exposes CLF but the user kept the default
            # (paper baseline: Logistic Regression with defaults).
            option = surface.classifiers[0]
            classifier = option.abbr
            resolved_params = option.validate_params(params or {})
        return {
            "classifier": classifier,
            "params": resolved_params,
            "feature_selection": feature_selection,
        }

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    #: What a training job is allowed to catch: library failures
    #: (ReproError covers validation, platform and fitting errors),
    #: bad configuration values (ValueError) and numerical breakdown
    #: (ArithmeticError, singular matrices).  Programming errors such as
    #: TypeError or AttributeError still propagate — a real service would
    #: page on those, not mark the job FAILED.
    _JOB_ERRORS = (ReproError, ValueError, ArithmeticError, np.linalg.LinAlgError)

    def _run_training_job(self, handle: ModelHandle, dataset: _StoredDataset) -> None:
        handle.state = JobState.RUNNING
        started = time.perf_counter()
        stage = "assemble"
        try:
            estimator = self._assemble(handle, dataset.X, dataset.y)
            stage = "fit"
            estimator.fit(dataset.X, dataset.y)
            handle.estimator = estimator
            handle.state = JobState.COMPLETED
        except self._JOB_ERRORS as exc:
            handle.state = JobState.FAILED
            handle.failure_reason = TrainingFailure(
                stage=stage, kind=type(exc).__name__, detail=str(exc),
            )
        finally:
            handle.metadata["training_seconds"] = time.perf_counter() - started
            handle.metadata["n_training_samples"] = int(dataset.X.shape[0])

    def _assemble(
        self, handle: ModelHandle, X: np.ndarray, y: np.ndarray
    ) -> BaseEstimator:
        """Build the estimator/pipeline for a validated configuration."""
        raise NotImplementedError

    def _derive_job_seed(self, dataset: _StoredDataset, handle: ModelHandle) -> int:
        """Deterministic per-job seed from platform seed + data + config.

        Uses crc32 (not ``hash``, which is salted per process), over the
        training data bytes and the full configuration, so that training
        the same data with the same configuration yields the identical
        model on any machine and in any call order — scientific
        reproducibility a real cloud service does not offer, but a
        simulator should.
        """
        digest = zlib.crc32(f"{self.random_state}:{self.name}".encode())
        digest = zlib.crc32(np.ascontiguousarray(dataset.X).tobytes(), digest)
        digest = zlib.crc32(np.ascontiguousarray(dataset.y).tobytes(), digest)
        configuration = (
            f"{handle.classifier_abbr}|{sorted(handle.params.items())}"
            f"|{handle.feature_selection}"
        )
        digest = zlib.crc32(configuration.encode(), digest)
        return digest % (2**31)

    def _job_seed(self, handle: ModelHandle) -> int:
        """The deterministic seed assigned to a job at creation time."""
        return handle.metadata["job_seed"]

    # ------------------------------------------------------------------
    # Introspection used by the measurement harness
    # ------------------------------------------------------------------

    @property
    def exposed_dimensions(self) -> frozenset:
        """Which of FEAT / CLF / PARA this platform exposes."""
        return self.controls.exposed_dimensions

    def classifier_abbrs(self) -> list[str]:
        """Offered classifier abbreviations, in platform order."""
        return [option.abbr for option in self.controls.classifiers]

    def __repr__(self) -> str:
        dims = ",".join(sorted(self.exposed_dimensions)) or "none"
        return f"<{type(self).__name__} name={self.name!r} controls={dims}>"
