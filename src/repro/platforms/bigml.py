"""BigML simulator.

BigML exposes classifier choice and parameter tuning (no feature
selection).  Table 1 lists four classifiers: Logistic Regression
(regularization, strength, eps), Decision Tree (node threshold, ordering,
random candidates), Bagging and Random Forests (node threshold, number of
models, ordering).

Parameter translation notes:

* ``node_threshold`` caps the number of tree nodes; we map it to the
  equivalent depth cap ``ceil(log2(threshold))``.
* ``ordering`` selects BigML's field-ordering strategy (deterministic vs
  random); it maps onto how the per-job seed is derived, which is the
  observable effect ordering has on grown trees.
* ``random_candidates`` is the number of random fields considered per
  split (BigML's random-split knob), i.e. ``max_features``.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator
from repro.learn.ensemble import BaggingClassifier, RandomForestClassifier
from repro.learn.linear import LogisticRegression
from repro.learn.tree import DecisionTreeClassifier
from repro.platforms.base import (
    ClassifierOption,
    ControlSurface,
    MLaaSPlatform,
    ModelHandle,
    ParameterSpec,
)

__all__ = ["BigML"]


def _depth_from_node_threshold(node_threshold: int) -> int:
    return max(2, int(np.ceil(np.log2(max(2, int(node_threshold))))))


def _ordered_seed(params: dict, random_state: int) -> int:
    # "deterministic" ordering pins the field order (seed 0); "random"
    # derives it from the job.
    return 0 if params.get("ordering") == "deterministic" else random_state


def _build_lr(params: dict, random_state: int) -> LogisticRegression:
    penalty = str(params["regularization"])
    return LogisticRegression(
        penalty=penalty,
        C=1.0 / max(float(params["strength"]), 1e-12),
        solver="sgd" if penalty == "l1" else "lbfgs",
        tol=float(params["eps"]),
        max_iter=100,
        random_state=random_state,
    )


def _build_dt(params: dict, random_state: int) -> DecisionTreeClassifier:
    return DecisionTreeClassifier(
        max_depth=_depth_from_node_threshold(params["node_threshold"]),
        max_features=int(params["random_candidates"]) or None,
        random_state=_ordered_seed(params, random_state),
    )


def _build_bagging(params: dict, random_state: int) -> BaggingClassifier:
    # The template's seed is irrelevant: BaggingClassifier._make_member
    # reseeds every cloned member from the ensemble's own RNG.
    base = DecisionTreeClassifier(  # repro: disable=F103 -- template clone is reseeded per member by BaggingClassifier
        max_depth=_depth_from_node_threshold(params["node_threshold"]),
    )
    return BaggingClassifier(
        base_estimator=base,
        n_estimators=int(params["number_of_models"]),
        random_state=_ordered_seed(params, random_state),
    )


def _build_forest(params: dict, random_state: int) -> RandomForestClassifier:
    return RandomForestClassifier(
        n_estimators=int(params["number_of_models"]),
        max_depth=_depth_from_node_threshold(params["node_threshold"]),
        max_features="sqrt",
        random_state=_ordered_seed(params, random_state),
    )


_OPTIONS = (
    ClassifierOption(
        abbr="LR",
        label="Logistic Regression",
        parameters=(
            ParameterSpec("regularization", "l2", ("l1", "l2")),
            ParameterSpec("strength", 1.0, (0.01, 1.0, 100.0)),
            ParameterSpec("eps", 1e-4, (1e-6, 1e-4, 1e-2)),
        ),
        build=_build_lr,
    ),
    ClassifierOption(
        abbr="DT",
        label="Decision Tree",
        parameters=(
            ParameterSpec("node_threshold", 512, (32, 512, 2048)),
            ParameterSpec("ordering", "deterministic", ("deterministic", "random")),
            ParameterSpec("random_candidates", 0, (0, 2, 8)),
        ),
        build=_build_dt,
    ),
    ClassifierOption(
        abbr="BAG",
        label="Bagging",
        parameters=(
            ParameterSpec("node_threshold", 512, (32, 512, 2048)),
            ParameterSpec("number_of_models", 10, (2, 10, 64)),
            ParameterSpec("ordering", "deterministic", ("deterministic", "random")),
        ),
        build=_build_bagging,
    ),
    ClassifierOption(
        abbr="RF",
        label="Random Forests",
        parameters=(
            ParameterSpec("node_threshold", 512, (32, 512, 2048)),
            ParameterSpec("number_of_models", 10, (2, 10, 64)),
            ParameterSpec("ordering", "deterministic", ("deterministic", "random")),
        ),
        build=_build_forest,
    ),
)


class BigML(MLaaSPlatform):
    """Tree-centric MLaaS startup: CLF + PARA, no FEAT."""

    name = "bigml"
    complexity = 4
    controls = ControlSurface(
        feature_selectors=(),
        classifiers=_OPTIONS,
        supports_parameter_tuning=True,
    )

    def _assemble(self, handle: ModelHandle, X: np.ndarray, y: np.ndarray) -> BaseEstimator:
        option = self.controls.classifier(handle.classifier_abbr)
        return option.build(handle.params, self._job_seed(handle))
