"""Machine-readable ground truth for the paper's Table 1 control surfaces.

This module is the single source of truth the ``repro lint`` rule R003
diffs every vendor module against: which platforms exist, their position
on the complexity axis, which control dimensions (FEAT / CLF / PARA) each
exposes, the feature-selector inventory, and — classifier by classifier —
the platform-spelled parameter names, defaults, and the §3.2 scan grids
(``D/100, D, 100*D`` for numeric parameters, all options for categorical
ones).

Editing a vendor module without updating this spec (or vice versa) makes
``repro lint`` fail with an R003 violation naming the exact mismatch, so
the reproduction cannot silently drift away from the paper's table.

Note on Amazon's dimensions: the paper's Table 1 lists Amazon as
PARA-only, but the simulator exposes its (single, documented) Logistic
Regression classifier as a selectable option so measurement scripts can
name it explicitly; ``ControlSurface.exposed_dimensions`` therefore
reports CLF as well.  The spec records the simulator's surface verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ClassifierEntry",
    "ParameterEntry",
    "PlatformEntry",
    "TABLE1_SPEC",
]


@dataclass(frozen=True)
class ParameterEntry:
    """One tunable parameter: platform-spelled name, default, scan grid."""

    name: str
    default: object
    values: tuple


@dataclass(frozen=True)
class ClassifierEntry:
    """One classifier row of Table 1 (abbr, marketing label, parameters)."""

    abbr: str
    label: str
    parameters: tuple = ()


@dataclass(frozen=True)
class PlatformEntry:
    """One platform column of Table 1."""

    name: str
    complexity: int
    dimensions: frozenset = field(default_factory=frozenset)
    feature_selectors: tuple = ()
    classifiers: tuple = ()


#: Platform name -> Table 1 entry, ordered by the complexity axis.
TABLE1_SPEC: dict[str, PlatformEntry] = {
    "abm": PlatformEntry(
        name="abm",
        complexity=0,
        dimensions=frozenset(),
        feature_selectors=(),
        classifiers=(),
    ),
    "google": PlatformEntry(
        name="google",
        complexity=1,
        dimensions=frozenset(),
        feature_selectors=(),
        classifiers=(),
    ),
    "amazon": PlatformEntry(
        name="amazon",
        complexity=2,
        dimensions=frozenset(['CLF', 'PARA']),
        feature_selectors=(),
        classifiers=(
            ClassifierEntry(
                abbr='LR',
                label='Logistic Regression',
                parameters=(
                    ParameterEntry('maxIter', 10, (1, 10, 1000)),
                    ParameterEntry('regParam', 0.01, (0.0001, 0.01, 1.0)),
                    ParameterEntry('shuffleType', 'auto', ('auto', 'none')),
                ),
            ),
        ),
    ),
    "predictionio": PlatformEntry(
        name="predictionio",
        complexity=3,
        dimensions=frozenset(['CLF', 'PARA']),
        feature_selectors=(),
        classifiers=(
            ClassifierEntry(
                abbr='LR',
                label='Logistic Regression',
                parameters=(
                    ParameterEntry('maxIter', 10, (1, 10, 1000)),
                    ParameterEntry('regParam', 0.1, (0.001, 0.1, 10.0)),
                    ParameterEntry('fitIntercept', True, (True, False)),
                ),
            ),
            ClassifierEntry(
                abbr='NB',
                label='Naive Bayes',
                parameters=(
                    ParameterEntry('lambda', 1e-06, (1e-08, 1e-06, 0.0001)),
                ),
            ),
            ClassifierEntry(
                abbr='DT',
                label='Decision Tree',
                parameters=(
                    ParameterEntry('numClasses', 2, (2,)),
                    ParameterEntry('maxDepth', 5, (1, 5, 16)),
                ),
            ),
        ),
    ),
    "bigml": PlatformEntry(
        name="bigml",
        complexity=4,
        dimensions=frozenset(['CLF', 'PARA']),
        feature_selectors=(),
        classifiers=(
            ClassifierEntry(
                abbr='LR',
                label='Logistic Regression',
                parameters=(
                    ParameterEntry('regularization', 'l2', ('l1', 'l2')),
                    ParameterEntry('strength', 1.0, (0.01, 1.0, 100.0)),
                    ParameterEntry('eps', 0.0001, (1e-06, 0.0001, 0.01)),
                ),
            ),
            ClassifierEntry(
                abbr='DT',
                label='Decision Tree',
                parameters=(
                    ParameterEntry('node_threshold', 512, (32, 512, 2048)),
                    ParameterEntry('ordering', 'deterministic', ('deterministic', 'random')),
                    ParameterEntry('random_candidates', 0, (0, 2, 8)),
                ),
            ),
            ClassifierEntry(
                abbr='BAG',
                label='Bagging',
                parameters=(
                    ParameterEntry('node_threshold', 512, (32, 512, 2048)),
                    ParameterEntry('number_of_models', 10, (2, 10, 64)),
                    ParameterEntry('ordering', 'deterministic', ('deterministic', 'random')),
                ),
            ),
            ClassifierEntry(
                abbr='RF',
                label='Random Forests',
                parameters=(
                    ParameterEntry('node_threshold', 512, (32, 512, 2048)),
                    ParameterEntry('number_of_models', 10, (2, 10, 64)),
                    ParameterEntry('ordering', 'deterministic', ('deterministic', 'random')),
                ),
            ),
        ),
    ),
    "microsoft": PlatformEntry(
        name="microsoft",
        complexity=5,
        dimensions=frozenset(['CLF', 'FEAT', 'PARA']),
        feature_selectors=('filter_chi', 'filter_count', 'filter_fisher', 'filter_kendall', 'filter_mutual', 'filter_pearson', 'filter_spearman', 'fisher_lda'),
        classifiers=(
            ClassifierEntry(
                abbr='LR',
                label='Two-Class Logistic Regression',
                parameters=(
                    ParameterEntry('optimization_tolerance', 1e-07, (1e-09, 1e-07, 1e-05)),
                    ParameterEntry('l1_weight', 1.0, (0.01, 1.0, 100.0)),
                    ParameterEntry('l2_weight', 1.0, (0.01, 1.0, 100.0)),
                    ParameterEntry('memory_size', 20, (1, 20, 2000)),
                ),
            ),
            ClassifierEntry(
                abbr='SVM',
                label='Two-Class Support Vector Machine',
                parameters=(
                    ParameterEntry('n_iterations', 1, (1, 10, 100)),
                    ParameterEntry('lambda', 0.001, (1e-05, 0.001, 0.1)),
                ),
            ),
            ClassifierEntry(
                abbr='AP',
                label='Two-Class Averaged Perceptron',
                parameters=(
                    ParameterEntry('learning_rate', 1.0, (0.01, 1.0, 100.0)),
                    ParameterEntry('max_iterations', 10, (1, 10, 1000)),
                ),
            ),
            ClassifierEntry(
                abbr='BPM',
                label='Two-Class Bayes Point Machine',
                parameters=(
                    ParameterEntry('n_training_iterations', 30, (1, 30, 100)),
                ),
            ),
            ClassifierEntry(
                abbr='BST',
                label='Two-Class Boosted Decision Tree',
                parameters=(
                    ParameterEntry('max_leaves', 20, (4, 20, 128)),
                    ParameterEntry('min_instances_per_leaf', 10, (1, 10, 50)),
                    ParameterEntry('learning_rate', 0.2, (0.002, 0.2, 1.0)),
                    ParameterEntry('n_trees', 100, (1, 100, 500)),
                ),
            ),
            ClassifierEntry(
                abbr='RF',
                label='Two-Class Decision Forest',
                parameters=(
                    ParameterEntry('resampling', 'bagging', ('bagging', 'replicate')),
                    ParameterEntry('n_trees', 8, (2, 8, 64)),
                    ParameterEntry('max_depth', 32, (4, 32, 64)),
                    ParameterEntry('random_splits', 128, (1, 128, 1024)),
                    ParameterEntry('min_samples_per_leaf', 1, (1, 4, 16)),
                ),
            ),
            ClassifierEntry(
                abbr='DJ',
                label='Two-Class Decision Jungle',
                parameters=(
                    ParameterEntry('resampling', 'bagging', ('bagging', 'replicate')),
                    ParameterEntry('n_dags', 8, (2, 8, 32)),
                    ParameterEntry('max_depth', 32, (4, 32, 64)),
                    ParameterEntry('max_width', 128, (16, 128, 256)),
                    ParameterEntry('optimization_steps', 2048, (64, 2048, 4096)),
                ),
            ),
        ),
    ),
    "local": PlatformEntry(
        name="local",
        complexity=6,
        dimensions=frozenset(['CLF', 'FEAT', 'PARA']),
        feature_selectors=('f_classif', 'gaussian_norm', 'l1_normalization', 'l2_normalization', 'max_abs_scaler', 'min_max_scaler', 'mutual_info_classif', 'standard_scaler'),
        classifiers=(
            ClassifierEntry(
                abbr='LR',
                label='LogisticRegression',
                parameters=(
                    ParameterEntry('penalty', 'l2', ('l1', 'l2', 'none')),
                    ParameterEntry('C', 1.0, (0.01, 1.0, 100.0)),
                    ParameterEntry('solver', 'lbfgs', ('lbfgs', 'sgd')),
                ),
            ),
            ClassifierEntry(
                abbr='NB',
                label='GaussianNB',
                parameters=(
                    ParameterEntry('prior', 'empirical', ('empirical', 'uniform')),
                ),
            ),
            ClassifierEntry(
                abbr='SVM',
                label='LinearSVC',
                parameters=(
                    ParameterEntry('penalty', 'l2', ('l2',)),
                    ParameterEntry('C', 1.0, (0.01, 1.0, 100.0)),
                    ParameterEntry('loss', 'hinge', ('hinge', 'squared_hinge')),
                ),
            ),
            ClassifierEntry(
                abbr='LDA',
                label='LinearDiscriminantAnalysis',
                parameters=(
                    ParameterEntry('solver', 'lsqr', ('lsqr', 'eigen')),
                    ParameterEntry('shrinkage', 'none', ('none', 0.1, 0.5)),
                ),
            ),
            ClassifierEntry(
                abbr='KNN',
                label='KNeighborsClassifier',
                parameters=(
                    ParameterEntry('n_neighbors', 5, (1, 5, 25)),
                    ParameterEntry('weights', 'uniform', ('uniform', 'distance')),
                    ParameterEntry('p', 2.0, (1.0, 2.0, 3.0)),
                ),
            ),
            ClassifierEntry(
                abbr='DT',
                label='DecisionTreeClassifier',
                parameters=(
                    ParameterEntry('criterion', 'gini', ('gini', 'entropy')),
                    ParameterEntry('max_features', 'all', ('all', 'sqrt', 'log2')),
                ),
            ),
            ClassifierEntry(
                abbr='BST',
                label='GradientBoostingClassifier',
                parameters=(
                    ParameterEntry('n_estimators', 50, (5, 50, 200)),
                    ParameterEntry('learning_rate', 0.1, (0.001, 0.1, 1.0)),
                    ParameterEntry('max_features', 'all', ('all', 'sqrt')),
                ),
            ),
            ClassifierEntry(
                abbr='BAG',
                label='BaggingClassifier',
                parameters=(
                    ParameterEntry('n_estimators', 10, (2, 10, 100)),
                    ParameterEntry('max_features', 'all', ('all', 'sqrt')),
                ),
            ),
            ClassifierEntry(
                abbr='RF',
                label='RandomForestClassifier',
                parameters=(
                    ParameterEntry('n_estimators', 50, (5, 50, 200)),
                    ParameterEntry('max_features', 'sqrt', ('sqrt', 'log2', 1.0)),
                ),
            ),
            ClassifierEntry(
                abbr='MLP',
                label='MLPClassifier',
                parameters=(
                    ParameterEntry('activation', 'relu', ('relu', 'tanh', 'logistic')),
                    ParameterEntry('solver', 'adam', ('adam', 'sgd')),
                    ParameterEntry('alpha', 0.0001, (1e-06, 0.0001, 0.01)),
                ),
            ),
        ),
    ),
}
