"""PredictionIO simulator.

PredictionIO (an Apache-incubated open-source ML server, retired 2020)
exposes classifier choice and parameter tuning but no feature selection.
Table 1 lists the three classifiers the paper measured — Logistic
Regression (maxIter, regParam, fitIntercept), Naive Bayes (lambda) and
Decision Tree (numClasses, maxDepth) — out of the 8 the platform offered.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator
from repro.learn.bayes import GaussianNB
from repro.learn.linear import LogisticRegression
from repro.learn.tree import DecisionTreeClassifier
from repro.platforms.base import (
    ClassifierOption,
    ControlSurface,
    MLaaSPlatform,
    ModelHandle,
    ParameterSpec,
)

__all__ = ["PredictionIO"]


def _build_lr(params: dict, random_state: int) -> LogisticRegression:
    return LogisticRegression(
        penalty="l2",
        C=1.0 / max(float(params["regParam"]), 1e-12),
        solver="sgd",
        max_iter=int(params["maxIter"]),
        fit_intercept=bool(params["fitIntercept"]),
        random_state=random_state,
    )


def _build_nb(params: dict, random_state: int) -> GaussianNB:
    return GaussianNB(var_smoothing=float(params["lambda"]))


def _build_dt(params: dict, random_state: int) -> DecisionTreeClassifier:
    return DecisionTreeClassifier(
        max_depth=int(params["maxDepth"]),
        random_state=random_state,
    )


_OPTIONS = (
    ClassifierOption(
        abbr="LR",
        label="Logistic Regression",
        parameters=(
            ParameterSpec("maxIter", 10, (1, 10, 1000)),
            ParameterSpec("regParam", 0.1, (1e-3, 0.1, 10.0)),
            ParameterSpec("fitIntercept", True, (True, False)),
        ),
        build=_build_lr,
    ),
    ClassifierOption(
        abbr="NB",
        label="Naive Bayes",
        parameters=(
            ParameterSpec("lambda", 1e-6, (1e-8, 1e-6, 1e-4)),
        ),
        build=_build_nb,
    ),
    ClassifierOption(
        abbr="DT",
        label="Decision Tree",
        parameters=(
            # numClasses is part of the real Spark MLlib API; binary
            # classification admits only the value 2.
            ParameterSpec("numClasses", 2, (2,)),
            ParameterSpec("maxDepth", 5, (1, 5, 16)),
        ),
        build=_build_dt,
    ),
)


class PredictionIO(MLaaSPlatform):
    """Open-source ML server: CLF + PARA, no FEAT."""

    name = "predictionio"
    complexity = 3
    controls = ControlSurface(
        feature_selectors=(),
        classifiers=_OPTIONS,
        supports_parameter_tuning=True,
    )

    def _assemble(self, handle: ModelHandle, X: np.ndarray, y: np.ndarray) -> BaseEstimator:
        option = self.controls.classifier(handle.classifier_abbr)
        return option.build(handle.params, self._job_seed(handle))
