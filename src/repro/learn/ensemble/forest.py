"""Random Forests (Breiman 2001).

Table 1: BigML (node threshold, number of models, ordering), Microsoft
(resampling, #trees, max depth, #random splits, min samples per leaf) and
the local library (n_estimators, max_features) all expose Random Forests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.tree.cart import DecisionTreeClassifier
from repro.learn.tree.flat import stack_trees
from repro.learn.validation import (
    check_array,
    check_binary_labels,
    check_random_state,
    check_X_y,
)

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bootstrap ensemble of feature-subsampling CART trees.

    Parameters
    ----------
    n_estimators : int
        Number of trees.
    criterion : {"gini", "entropy"}
        Split criterion for every tree.
    max_depth : int or None
        Per-tree depth cap.
    min_samples_leaf : int
        Minimum samples per leaf in every tree.
    max_features : "sqrt", "log2", None, int, or float
        Features considered per split; "sqrt" is the classic forest choice.
    bootstrap : bool
        Draw a bootstrap resample per tree (``False`` = whole set, Azure's
        "resampling method" knob).
    splitter : {"exact", "hist"}
        Split search mode passed to every tree (see
        :class:`~repro.learn.tree.cart.DecisionTreeClassifier`).
    max_bins : int
        Histogram bin budget per feature when ``splitter="hist"``.
    random_state : int, Generator, or None
        Seed for all randomness.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        splitter: str = "exact",
        max_bins: int = 255,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y, min_samples=2)
        if self.n_estimators < 1:
            raise ValidationError(
                f"n_estimators must be >= 1, got {self.n_estimators}"
            )
        self.classes_ = check_binary_labels(y)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        self.estimators_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self.splitter,
                max_bins=self.max_bins,
                random_state=int(rng.integers(0, 2**31)),
            )
            if self.bootstrap:
                for _attempt in range(20):
                    indices = rng.integers(0, n_samples, size=n_samples)
                    if len(np.unique(y[indices])) == 2:
                        break
                tree.fit(X[indices], y[indices])
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)
        # Stack the compiled trees so inference is one lock-step array
        # walk over the whole forest instead of a per-tree Python loop.
        self.flat_forest_ = stack_trees(
            [tree.flat_tree_ for tree in self.estimators_]
        )
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        # Same reduction as np.mean over per-tree probability rows — the
        # stacked flat evaluation yields bit-identical per-tree values.
        positive = np.mean(self.flat_forest_.predict_values(X), axis=0)
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return np.where(
            probabilities[:, 1] > 0.5, self.classes_[1], self.classes_[0]
        )

    def feature_importances(self) -> np.ndarray:
        """Frequency of each feature across all split nodes (normalized)."""
        check_is_fitted(self, "estimators_")
        counts = np.zeros(self.n_features_in_)
        for tree in self.estimators_:
            stack = [tree.tree_]
            while stack:
                node = stack.pop()
                if not node.is_leaf:
                    counts[node.feature] += node.n_samples
                    stack.append(node.left)
                    stack.append(node.right)
        total = counts.sum()
        return counts / total if total else counts
