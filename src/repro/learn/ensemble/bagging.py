"""Bootstrap aggregating (Breiman 1996).

BigML's "Bagging"/ensemble model and scikit-learn's BaggingClassifier
(Table 1: n_estimators, max_features).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import (
    BaseEstimator,
    ClassifierMixin,
    check_is_fitted,
    clone,
)
from repro.learn.tree.cart import DecisionTreeClassifier
from repro.learn.tree.flat import stack_trees
from repro.learn.validation import (
    check_array,
    check_binary_labels,
    check_random_state,
    check_X_y,
)

__all__ = ["BaggingClassifier"]


class BaggingClassifier(BaseEstimator, ClassifierMixin):
    """Average of base classifiers trained on bootstrap resamples.

    Parameters
    ----------
    base_estimator : estimator or None
        Prototype cloned for each member; a full decision tree by default.
    n_estimators : int
        Ensemble size.
    max_samples : float
        Bootstrap sample size as a fraction of the training set.
    max_features : None, "sqrt", "log2", int, or float
        Feature subsampling passed through to tree members.
    random_state : int, Generator, or None
        Seed for resampling and member seeding.
    """

    def __init__(
        self,
        base_estimator=None,
        n_estimators: int = 10,
        max_samples: float = 1.0,
        max_features=None,
        random_state=None,
    ):
        self.base_estimator = base_estimator
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.max_features = max_features
        self.random_state = random_state

    def _make_member(self, rng: np.random.Generator):
        if self.base_estimator is None:
            member = DecisionTreeClassifier(max_features=self.max_features)
        else:
            member = clone(self.base_estimator)
            if self.max_features is not None and "max_features" in member._param_names():
                member.set_params(max_features=self.max_features)
        if "random_state" in member._param_names():
            member.set_params(random_state=int(rng.integers(0, 2**31)))
        return member

    def fit(self, X, y) -> "BaggingClassifier":
        X, y = check_X_y(X, y, min_samples=2)
        if self.n_estimators < 1:
            raise ValidationError(
                f"n_estimators must be >= 1, got {self.n_estimators}"
            )
        if not 0.0 < self.max_samples <= 1.0:
            raise ValidationError(
                f"max_samples must be in (0, 1], got {self.max_samples}"
            )
        self.classes_ = check_binary_labels(y)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        n_draw = max(2, int(round(self.max_samples * n_samples)))
        self.estimators_ = []
        for _ in range(self.n_estimators):
            # Resample until the bootstrap contains both classes, so every
            # member is a valid binary classifier.
            for _attempt in range(20):
                indices = rng.integers(0, n_samples, size=n_draw)
                if len(np.unique(y[indices])) == 2:
                    break
            member = self._make_member(rng)
            member.fit(X[indices], y[indices])
            self.estimators_.append(member)
        # When every member is a compiled tree, stack them so prediction
        # is one batched array walk instead of a per-member Python loop.
        if all(hasattr(member, "flat_tree_") for member in self.estimators_):
            self.flat_forest_ = stack_trees(
                [member.flat_tree_ for member in self.estimators_]
            )
        else:
            self.flat_forest_ = None
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        votes = np.zeros(X.shape[0])
        if self.flat_forest_ is not None:
            # Batched evaluation; accumulation stays member-by-member so
            # the result is bit-identical to the sequential loop below.
            for row in self.flat_forest_.predict_values(X):
                votes += row
        else:
            for member in self.estimators_:
                if hasattr(member, "predict_proba"):
                    votes += member.predict_proba(X)[:, 1]
                else:
                    votes += (member.predict(X) == self.classes_[1]).astype(np.float64)
        positive = votes / len(self.estimators_)
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return np.where(
            probabilities[:, 1] > 0.5, self.classes_[1], self.classes_[0]
        )
