"""Boosted decision trees.

Microsoft's "Boosted Decision Tree" (Friedman's stochastic gradient
boosting; Table 1 tunables: max leaves, min instances per leaf, learning
rate, number of trees) and an AdaBoost variant used in ablations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.tree.cart import DecisionTreeClassifier, TreeNode
from repro.learn.tree.criteria import criterion_function
from repro.learn.tree.flat import flatten_tree, stack_trees
from repro.learn.validation import (
    check_array,
    check_binary_labels,
    check_random_state,
    check_X_y,
)

__all__ = ["GradientBoostingClassifier", "AdaBoostClassifier"]


class _RegressionTree:
    """Small CART regression tree fitting residuals for gradient boosting.

    Leaves store the Newton-step value for logistic loss:
    ``sum(residual) / sum(p * (1 - p))``.
    """

    def __init__(self, max_depth: int, min_samples_leaf: int,
                 max_features, rng: np.random.Generator):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng

    def fit(self, X: np.ndarray, residual: np.ndarray, hessian: np.ndarray) -> None:
        self.root = self._grow(X, residual, hessian, depth=0)
        # Leaf values live in positive_fraction, so the classification
        # flattener lowers regression trees unchanged.
        self.flat_ = flatten_tree(self.root)

    def _leaf_value(self, residual: np.ndarray, hessian: np.ndarray) -> float:
        denominator = hessian.sum()
        if denominator <= 1e-12:
            return 0.0
        return float(residual.sum() / denominator)

    def _grow(self, X, residual, hessian, depth) -> TreeNode:
        node = TreeNode(
            positive_fraction=self._leaf_value(residual, hessian),
            n_samples=X.shape[0],
            depth=depth,
        )
        if depth >= self.max_depth or X.shape[0] < 2 * self.min_samples_leaf:
            return node
        split = self._best_variance_split(X, residual)
        if split is None:
            return node
        feature, threshold = split
        goes_left = X[:, feature] <= threshold
        if not goes_left.any() or goes_left.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(
            X[goes_left], residual[goes_left], hessian[goes_left], depth + 1
        )
        node.right = self._grow(
            X[~goes_left], residual[~goes_left], hessian[~goes_left], depth + 1
        )
        return node

    def _best_variance_split(self, X, residual):
        """Variance-reduction split search, vectorized per feature."""
        n_samples, n_features = X.shape
        if self.max_features is None:
            candidates = np.arange(n_features)
        else:
            count = max(1, int(np.sqrt(n_features))) if self.max_features == "sqrt" \
                else min(int(self.max_features), n_features)
            candidates = self.rng.choice(n_features, size=count, replace=False)
        best = None
        best_score = -np.inf
        total_sum = residual.sum()
        for feature in candidates:
            order = np.argsort(X[:, feature], kind="stable")
            sorted_values = X[order, feature]
            sorted_residual = residual[order]
            distinct = sorted_values[1:] != sorted_values[:-1]
            if not distinct.any():
                continue
            positions = np.flatnonzero(distinct) + 1
            positions = positions[
                (positions >= self.min_samples_leaf)
                & (positions <= n_samples - self.min_samples_leaf)
            ]
            if positions.size == 0:
                continue
            cumulative = np.cumsum(sorted_residual)
            left_sum = cumulative[positions - 1]
            right_sum = total_sum - left_sum
            left_n = positions.astype(np.float64)
            right_n = n_samples - left_n
            # Maximizing sum^2/n on both sides == minimizing squared error.
            scores = left_sum**2 / left_n + right_sum**2 / right_n
            local_best = int(np.argmax(scores))
            if scores[local_best] > best_score:
                split_at = positions[local_best]
                threshold = 0.5 * (sorted_values[split_at - 1] + sorted_values[split_at])
                if threshold >= sorted_values[split_at]:
                    threshold = sorted_values[split_at - 1]
                best_score = float(scores[local_best])
                best = (int(feature), float(threshold))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.flat_.predict_value(X)


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Stochastic gradient-boosted trees with logistic loss.

    Parameters
    ----------
    n_estimators : int
        Number of boosting rounds ("# of trees constructed" in Azure).
    learning_rate : float
        Shrinkage applied to each tree's contribution.
    max_depth : int
        Depth of each regression tree (Azure caps leaves; depth d allows
        up to 2^d leaves).
    min_samples_leaf : int
        Azure's "min. # of training instances per leaf".
    subsample : float
        Row subsampling fraction per round (stochastic boosting).
    max_features : None, "sqrt", or int
        Feature subsampling per split.
    random_state : int, Generator, or None
        Seed for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        max_features=None,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X, y = check_X_y(X, y, min_samples=2)
        if self.n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        if self.learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        if not 0.0 < self.subsample <= 1.0:
            raise ValidationError("subsample must be in (0, 1]")
        self.classes_ = check_binary_labels(y)
        y01 = (y == self.classes_[1]).astype(np.float64)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        prior = np.clip(y01.mean(), 1e-6, 1.0 - 1e-6)
        self.initial_score_ = float(np.log(prior / (1.0 - prior)))
        raw = np.full(n_samples, self.initial_score_)
        self.trees_: list[_RegressionTree] = []
        for _ in range(self.n_estimators):
            probabilities = 1.0 / (1.0 + np.exp(-raw))
            residual = y01 - probabilities
            hessian = probabilities * (1.0 - probabilities)
            if self.subsample < 1.0:
                size = max(2, int(round(self.subsample * n_samples)))
                rows = rng.choice(n_samples, size=size, replace=False)
            else:
                rows = np.arange(n_samples)
            tree = _RegressionTree(
                self.max_depth, self.min_samples_leaf, self.max_features, rng
            )
            tree.fit(X[rows], residual[rows], hessian[rows])
            raw += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
        # Batched inference over all rounds at once (decision_function).
        self.flat_forest_ = stack_trees([tree.flat_ for tree in self.trees_])
        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        raw = np.full(X.shape[0], self.initial_score_)
        # Round-by-round accumulation kept so the sum is bit-identical
        # to the sequential per-tree loop; only the routing is batched.
        for values in self.flat_forest_.predict_values(X):
            raw += self.learning_rate * values
        return raw

    def predict_proba(self, X) -> np.ndarray:
        raw = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-np.clip(raw, -500, 500)))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        raw = self.decision_function(X)
        return np.where(raw > 0.0, self.classes_[1], self.classes_[0])


class AdaBoostClassifier(BaseEstimator, ClassifierMixin):
    """Discrete AdaBoost over depth-limited CART stumps/trees.

    Used in ablation benches as an alternative boosting formulation.

    Parameters
    ----------
    n_estimators : int
        Boosting rounds.
    max_depth : int
        Depth of each weak learner (1 = decision stumps).
    learning_rate : float
        Shrinkage on each weak learner's vote weight.
    random_state : int, Generator, or None
        Seed for the weighted resampling used to fit weak learners.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 1,
        learning_rate: float = 1.0,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.random_state = random_state

    def fit(self, X, y) -> "AdaBoostClassifier":
        X, y = check_X_y(X, y, min_samples=2)
        if self.n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        self.classes_ = check_binary_labels(y)
        signed = np.where(y == self.classes_[1], 1.0, -1.0)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        weights = np.full(n_samples, 1.0 / n_samples)
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []
        for _ in range(self.n_estimators):
            # Weak learners see a weighted bootstrap (weighted CART splits
            # would also work; resampling keeps the tree code unweighted).
            rows = rng.choice(n_samples, size=n_samples, replace=True, p=weights)
            if len(np.unique(signed[rows])) < 2:
                rows = np.arange(n_samples)
            stump = DecisionTreeClassifier(
                max_depth=self.max_depth,
                random_state=int(rng.integers(0, 2**31)),
            )
            stump.fit(X[rows], signed[rows])
            predictions = np.asarray(stump.predict(X), dtype=np.float64)
            incorrect = predictions != signed
            error = float(np.sum(weights * incorrect))
            error = np.clip(error, 1e-10, 1.0 - 1e-10)
            alpha = self.learning_rate * 0.5 * np.log((1.0 - error) / error)
            if alpha <= 0.0:
                if not self.estimators_:
                    self.estimators_.append(stump)
                    self.estimator_weights_.append(1.0)
                break
            weights *= np.exp(alpha * incorrect)
            weights /= weights.sum()
            self.estimators_.append(stump)
            self.estimator_weights_.append(float(alpha))
        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        total = np.zeros(X.shape[0])
        for alpha, stump in zip(self.estimator_weights_, self.estimators_):
            total += alpha * np.asarray(stump.predict(X), dtype=np.float64)
        return total

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return np.where(scores > 0.0, self.classes_[1], self.classes_[0])

    def predict_proba(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-2.0 * np.clip(scores, -250, 250)))
        return np.column_stack([1.0 - positive, positive])
