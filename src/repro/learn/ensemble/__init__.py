"""Ensemble classifiers: bagging, random forests and boosted trees.

Prior work cited by the paper (Caruana & Niculescu-Mizil 2006,
Fernández-Delgado et al. 2014) found Random Forests and Boosted Trees to
be the strongest supervised classifiers — the paper highlights that only
Microsoft (and the local library) expose them.
"""

from repro.learn.ensemble.bagging import BaggingClassifier
from repro.learn.ensemble.boosting import (
    AdaBoostClassifier,
    GradientBoostingClassifier,
)
from repro.learn.ensemble.forest import RandomForestClassifier

__all__ = [
    "BaggingClassifier",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "GradientBoostingClassifier",
]
