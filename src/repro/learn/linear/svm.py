"""Linear Support Vector Machine trained with Pegasos-style SGD.

Covers the "Support Vector Machine" rows in Table 1 (Microsoft: #iterations
and lambda; scikit-learn: penalty, C, loss).  Only the linear kernel is
implemented — the paper's platforms expose linear SVMs, and §6 groups SVM
in the linear family (Table 5).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.linear.base import LinearBinaryClassifier
from repro.learn.validation import check_random_state

__all__ = ["LinearSVC"]


class LinearSVC(LinearBinaryClassifier):
    """Linear SVM minimizing regularized (squared) hinge loss by SGD.

    Parameters
    ----------
    C : float
        Inverse regularization strength; lambda = 1 / (C * n_samples).
    loss : {"hinge", "squared_hinge"}
        Margin loss.
    penalty : {"l2"}
        Only L2 is supported (as in liblinear's default dual form).
    max_iter : int
        Number of SGD epochs.
    tol : float
        Stop when the epoch-to-epoch objective change falls below this.
    fit_intercept : bool
        Learn an unregularized bias via the standard averaging trick.
    random_state : int, Generator, or None
        Seed for sample shuffling.
    """

    def __init__(
        self,
        C: float = 1.0,
        loss: str = "hinge",
        penalty: str = "l2",
        max_iter: int = 100,
        tol: float = 1e-4,
        fit_intercept: bool = True,
        random_state=None,
    ):
        self.C = C
        self.loss = loss
        self.penalty = penalty
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.random_state = random_state

    def _objective(self, X, y, w, b, lam) -> float:
        margins = y * (X @ w + b)
        slack = np.maximum(0.0, 1.0 - margins)
        if self.loss == "squared_hinge":
            slack = slack**2
        return float(slack.mean() + 0.5 * lam * (w @ w))

    def _fit_signed(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.loss not in ("hinge", "squared_hinge"):
            raise ValidationError(f"unknown loss {self.loss!r}")
        if self.penalty != "l2":
            raise ValidationError("LinearSVC supports only the l2 penalty")
        if self.C <= 0:
            raise ValidationError(f"C must be positive, got {self.C}")
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        lam = 1.0 / (self.C * n_samples)
        w = np.zeros(n_features)
        b = 0.0
        t = 0
        # Pegasos guarantee: the optimum lies in a ball of radius
        # 1/sqrt(lam); projecting onto it keeps the iterates bounded even
        # with the large early step sizes.
        radius = 1.0 / np.sqrt(lam)
        previous_objective = np.inf
        for epoch in range(self.max_iter):
            for i in rng.permutation(n_samples):
                t += 1
                eta = 1.0 / (lam * t)
                margin = y[i] * (X[i] @ w + b)
                w *= 1.0 - eta * lam
                if margin < 1.0:
                    if self.loss == "hinge":
                        gradient_scale = -y[i]
                    else:
                        gradient_scale = -2.0 * max(1.0 - margin, 0.0) * y[i]
                    w -= eta * gradient_scale * X[i]
                    if self.fit_intercept:
                        # Smaller, decaying step for the unregularized bias.
                        b -= (eta * lam) * gradient_scale
                norm = np.linalg.norm(w)
                if norm > radius:
                    w *= radius / norm
            objective = self._objective(X, y, w, b, lam)
            if abs(previous_objective - objective) < self.tol:
                self.n_iter_ = epoch + 1
                break
            previous_objective = objective
        else:
            self.n_iter_ = self.max_iter
        self.coef_ = w
        self.intercept_ = float(b)
