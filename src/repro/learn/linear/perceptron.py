"""Averaged Perceptron (Freund & Schapire 1999).

One of Azure ML Studio's classifiers (Table 1: learning rate and maximum
number of iterations are tunable).  The averaged variant returns the
running average of all intermediate weight vectors, which generalizes far
better than the final perceptron weights on non-separable data.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.linear.base import LinearBinaryClassifier
from repro.learn.validation import check_random_state

__all__ = ["AveragedPerceptron"]


class AveragedPerceptron(LinearBinaryClassifier):
    """Perceptron with weight averaging over all updates.

    Parameters
    ----------
    learning_rate : float
        Step size applied to each mistake-driven update.
    max_iter : int
        Number of passes (epochs) over the training data.
    shuffle : bool
        Reshuffle the sample order each epoch.
    random_state : int, Generator, or None
        Seed for shuffling.
    """

    def __init__(
        self,
        learning_rate: float = 1.0,
        max_iter: int = 50,
        shuffle: bool = True,
        random_state=None,
    ):
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.shuffle = shuffle
        self.random_state = random_state

    def _fit_signed(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.learning_rate <= 0:
            raise ValidationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.max_iter < 1:
            raise ValidationError(f"max_iter must be >= 1, got {self.max_iter}")
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        w = np.zeros(n_features)
        b = 0.0
        # Lazy averaging: track u = sum over steps of (step_index * update)
        # so the average can be recovered as w - u / total_steps.
        u = np.zeros(n_features)
        beta = 0.0
        counter = 1.0
        mistakes_last_epoch = 0
        for _ in range(self.max_iter):
            indices = rng.permutation(n_samples) if self.shuffle else np.arange(n_samples)
            mistakes_last_epoch = 0
            for i in indices:
                if y[i] * (X[i] @ w + b) <= 0.0:
                    update = self.learning_rate * y[i]
                    w += update * X[i]
                    b += update
                    u += counter * update * X[i]
                    beta += counter * update
                    mistakes_last_epoch += 1
                counter += 1.0
            if mistakes_last_epoch == 0:
                break
        self.coef_ = w - u / counter
        self.intercept_ = float(b - beta / counter)
        self.mistakes_ = mistakes_last_epoch
