"""Fisher Linear Discriminant Analysis.

Appears twice in Table 1: Azure's "Fisher LDA" feature-selection module
and scikit-learn's LinearDiscriminantAnalysis classifier (tunable solver
and shrinkage).  Implemented as the classic two-class Fisher discriminant
with optional covariance shrinkage toward the identity.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.linear.base import LinearBinaryClassifier

__all__ = ["LinearDiscriminantAnalysis"]


class LinearDiscriminantAnalysis(LinearBinaryClassifier):
    """Two-class LDA with shared covariance and optional shrinkage.

    Parameters
    ----------
    solver : {"lsqr", "eigen"}
        "lsqr" solves the linear system ``S w = (mu1 - mu0)`` directly;
        "eigen" goes through the eigendecomposition of the within-class
        scatter.  Both produce the Fisher direction; they differ in
        numerical path, mirroring sklearn's solver choices.
    shrinkage : float or None
        Convex shrinkage ``(1 - s) * S + s * tr(S)/d * I`` of the pooled
        covariance; ``None`` means no shrinkage.  Shrinkage keeps the model
        well-posed when features outnumber samples.
    """

    def __init__(self, solver: str = "lsqr", shrinkage: float | None = None):
        self.solver = solver
        self.shrinkage = shrinkage

    def _fit_signed(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.solver not in ("lsqr", "eigen"):
            raise ValidationError(f"unknown solver {self.solver!r}")
        if self.shrinkage is not None and not 0.0 <= self.shrinkage <= 1.0:
            raise ValidationError(
                f"shrinkage must be in [0, 1], got {self.shrinkage}"
            )
        n_features = X.shape[1]
        positive = y > 0
        X_pos, X_neg = X[positive], X[~positive]
        mean_pos = X_pos.mean(axis=0)
        mean_neg = X_neg.mean(axis=0)
        prior_pos = X_pos.shape[0] / X.shape[0]
        prior_neg = 1.0 - prior_pos

        # Pooled within-class covariance.
        centered = np.vstack([X_pos - mean_pos, X_neg - mean_neg])
        covariance = (centered.T @ centered) / max(X.shape[0] - 2, 1)
        if self.shrinkage is not None:
            mu = np.trace(covariance) / n_features
            covariance = (
                (1.0 - self.shrinkage) * covariance
                + self.shrinkage * mu * np.eye(n_features)
            )
        # Small ridge keeps singular scatter matrices invertible.
        covariance = covariance + 1e-8 * np.eye(n_features)

        mean_diff = mean_pos - mean_neg
        if self.solver == "lsqr":
            w = np.linalg.solve(covariance, mean_diff)
        else:
            eigenvalues, eigenvectors = np.linalg.eigh(covariance)
            eigenvalues = np.maximum(eigenvalues, 1e-12)
            w = eigenvectors @ ((eigenvectors.T @ mean_diff) / eigenvalues)

        midpoint = (mean_pos + mean_neg) / 2.0
        self.coef_ = w
        self.intercept_ = float(
            -midpoint @ w + np.log(prior_pos / prior_neg)
        )
        self.means_ = np.vstack([mean_neg, mean_pos])
        self.priors_ = np.array([prior_neg, prior_pos])
