"""Bayes Point Machine (Herbrich, Graepel & Campbell 2001).

Azure ML Studio exposes this classifier with a single tunable parameter
(number of training iterations, Table 1).  The Bayes point approximates
Bayesian model averaging over the version space of linear separators by
averaging several independently-trained perceptrons — each trained on a
bootstrap/permuted view of the data — into a single weight vector.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.linear.base import LinearBinaryClassifier
from repro.learn.validation import check_random_state

__all__ = ["BayesPointMachine"]


class BayesPointMachine(LinearBinaryClassifier):
    """Approximate Bayes point via an ensemble of randomized perceptrons.

    Parameters
    ----------
    n_iter : int
        Training epochs for each member perceptron (Azure's knob).
    n_members : int
        Number of independently-initialized perceptrons averaged into the
        Bayes point.
    random_state : int, Generator, or None
        Seed controlling member initialization and data permutations.
    """

    def __init__(self, n_iter: int = 30, n_members: int = 11, random_state=None):
        self.n_iter = n_iter
        self.n_members = n_members
        self.random_state = random_state

    def _fit_signed(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_iter < 1:
            raise ValidationError(f"n_iter must be >= 1, got {self.n_iter}")
        if self.n_members < 1:
            raise ValidationError(
                f"n_members must be >= 1, got {self.n_members}"
            )
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        weights = np.zeros((self.n_members, n_features))
        biases = np.zeros(self.n_members)
        for m in range(self.n_members):
            w = rng.normal(scale=0.01, size=n_features)
            b = 0.0
            for _ in range(self.n_iter):
                mistakes = 0
                for i in rng.permutation(n_samples):
                    if y[i] * (X[i] @ w + b) <= 0.0:
                        w += y[i] * X[i]
                        b += y[i]
                        mistakes += 1
                if mistakes == 0:
                    break
            norm = np.linalg.norm(w)
            if norm > 0.0:
                # Normalize so each member contributes a direction, not a
                # magnitude — the Bayes point is a centre of version space.
                w = w / norm
                b = b / norm
            weights[m] = w
            biases[m] = b
        self.coef_ = weights.mean(axis=0)
        self.intercept_ = float(biases.mean())
        self.member_weights_ = weights
