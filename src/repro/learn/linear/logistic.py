"""Logistic Regression — the one classifier every platform supports.

The paper uses Logistic Regression with platform-default parameters as the
zero-control *baseline* configuration (§3.2) because it is the only
classifier available on all four platforms that expose classifier choice.

Supports L1/L2 penalties and two solvers: ``lbfgs`` (scipy's L-BFGS-B on
the smooth L2 objective) and ``saga``-style proximal SGD handling both
penalties.  Mirrors Table 1's tunable parameters (penalty, C, solver).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.exceptions import ValidationError
from repro.learn.linear.base import LinearBinaryClassifier
from repro.learn.validation import check_random_state

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


class LogisticRegression(LinearBinaryClassifier):
    """Binary logistic regression with L1/L2 regularization.

    Parameters
    ----------
    penalty : {"l2", "l1", "none"}
        Regularization type.  ``lbfgs`` supports only "l2"/"none".
    C : float
        Inverse regularization strength (larger = weaker regularization).
    solver : {"lbfgs", "sgd"}
        Optimizer.  "lbfgs" uses scipy's quasi-Newton minimizer on the full
        objective; "sgd" is proximal stochastic gradient descent and
        supports the L1 penalty.
    max_iter : int
        Iteration budget (L-BFGS iterations, or SGD epochs).
    tol : float
        Convergence tolerance.
    fit_intercept : bool
        Learn an additive bias term.
    shuffle : bool
        Reshuffle sample order each SGD epoch (Amazon's ``shuffleType``);
        ignored by the lbfgs solver.
    random_state : int, Generator, or None
        Seed for SGD shuffling.
    """

    def __init__(
        self,
        penalty: str = "l2",
        C: float = 1.0,
        solver: str = "lbfgs",
        max_iter: int = 200,
        tol: float = 1e-5,
        fit_intercept: bool = True,
        shuffle: bool = True,
        random_state=None,
    ):
        self.penalty = penalty
        self.C = C
        self.solver = solver
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.shuffle = shuffle
        self.random_state = random_state

    def _fit_signed(self, X: np.ndarray, y_signed: np.ndarray) -> None:
        if self.penalty not in ("l1", "l2", "none"):
            raise ValidationError(f"unknown penalty {self.penalty!r}")
        if self.C <= 0:
            raise ValidationError(f"C must be positive, got {self.C}")
        if self.solver == "lbfgs":
            if self.penalty == "l1":
                raise ValidationError(
                    "the lbfgs solver does not support the l1 penalty; "
                    "use solver='sgd'"
                )
            self._fit_lbfgs(X, y_signed)
        elif self.solver == "sgd":
            self._fit_sgd(X, y_signed)
        else:
            raise ValidationError(f"unknown solver {self.solver!r}")

    # -- L-BFGS on the full-batch objective --------------------------------

    def _fit_lbfgs(self, X: np.ndarray, y: np.ndarray) -> None:
        n_samples, n_features = X.shape
        alpha = 0.0 if self.penalty == "none" else 1.0 / (self.C * n_samples)

        def objective(w_full: np.ndarray):
            w = w_full[:n_features]
            b = w_full[n_features] if self.fit_intercept else 0.0
            margins = y * (X @ w + b)
            # log(1 + exp(-m)) computed stably.
            losses = np.logaddexp(0.0, -margins)
            loss = losses.mean() + 0.5 * alpha * (w @ w)
            probs = _sigmoid(-margins)  # d loss / d margin = -p
            grad_w = -(X.T @ (y * probs)) / n_samples + alpha * w
            grad = np.empty_like(w_full)
            grad[:n_features] = grad_w
            if self.fit_intercept:
                grad[n_features] = -(y * probs).mean()
            return loss, grad

        size = n_features + (1 if self.fit_intercept else 0)
        result = optimize.minimize(
            objective,
            np.zeros(size),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        w_full = result.x
        self.coef_ = w_full[:n_features]
        self.intercept_ = float(w_full[n_features]) if self.fit_intercept else 0.0
        self.n_iter_ = int(result.nit)

    # -- proximal SGD (supports L1) ----------------------------------------

    #: Minibatch size for the SGD solver.  Batched updates are vectorized
    #: over numpy, which is what makes large grid sweeps tractable.
    _BATCH = 32

    def _fit_sgd(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        alpha = 0.0 if self.penalty == "none" else 1.0 / (self.C * n_samples)
        w = np.zeros(n_features)
        b = 0.0
        step0 = 1.0
        t = 0
        batch = min(self._BATCH, n_samples)
        previous_loss = np.inf
        for epoch in range(self.max_iter):
            order = rng.permutation(n_samples) if self.shuffle else np.arange(n_samples)
            for start in range(0, n_samples, batch):
                rows = order[start : start + batch]
                t += rows.size
                eta = step0 / (1.0 + step0 * alpha * t) if alpha else step0 / np.sqrt(t)
                margins = y[rows] * (X[rows] @ w + b)
                # d loss / d margin averaged over the minibatch.
                gradient_scales = -y[rows] * _sigmoid(-margins) / rows.size
                if self.penalty == "l2":
                    w *= 1.0 - eta * alpha
                w -= eta * (X[rows].T @ gradient_scales)
                if self.fit_intercept:
                    b -= eta * float(gradient_scales.sum())
                if self.penalty == "l1":
                    # Soft-threshold (proximal step for the L1 term).
                    shrink = eta * alpha
                    w = np.sign(w) * np.maximum(np.abs(w) - shrink, 0.0)
            margins = y * (X @ w + b)
            loss = float(np.logaddexp(0.0, -margins).mean())
            if self.penalty == "l2":
                loss += 0.5 * alpha * float(w @ w)
            elif self.penalty == "l1":
                loss += alpha * float(np.abs(w).sum())
            if abs(previous_loss - loss) < self.tol:
                self.n_iter_ = epoch + 1
                break
            previous_loss = loss
        else:
            self.n_iter_ = self.max_iter
        self.coef_ = w
        self.intercept_ = float(b) if self.fit_intercept else 0.0
