"""Linear classifier family.

These are the classifiers the paper's §6 analysis groups as the *linear*
family (Table 5): Logistic Regression, linear SVM, LDA — plus the linear
online learners Azure exposes (Averaged Perceptron, Bayes Point Machine).
"""

from repro.learn.linear.base import LinearBinaryClassifier
from repro.learn.linear.bayes_point import BayesPointMachine
from repro.learn.linear.discriminant import LinearDiscriminantAnalysis
from repro.learn.linear.logistic import LogisticRegression
from repro.learn.linear.perceptron import AveragedPerceptron
from repro.learn.linear.svm import LinearSVC

__all__ = [
    "LinearBinaryClassifier",
    "LogisticRegression",
    "LinearSVC",
    "AveragedPerceptron",
    "BayesPointMachine",
    "LinearDiscriminantAnalysis",
]
