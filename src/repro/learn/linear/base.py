"""Shared machinery for binary linear classifiers.

All linear models here learn a weight vector ``coef_`` and scalar
``intercept_`` defining the decision function ``X @ coef_ + intercept_``;
samples with a positive score are assigned the second (larger) class.
Subclasses implement :meth:`_fit_signed`, receiving labels in {-1, +1}.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.validation import check_array, check_binary_labels, check_X_y

__all__ = ["LinearBinaryClassifier"]


class LinearBinaryClassifier(BaseEstimator, ClassifierMixin):
    """Template for binary classifiers with a linear decision function."""

    def fit(self, X, y) -> "LinearBinaryClassifier":
        X, y = check_X_y(X, y, min_samples=2)
        self.classes_ = check_binary_labels(y)
        signed = np.where(y == self.classes_[1], 1.0, -1.0)
        self._fit_signed(X, signed)
        self.n_features_in_ = X.shape[1]
        return self

    def _fit_signed(self, X: np.ndarray, y_signed: np.ndarray) -> None:
        raise NotImplementedError

    def decision_function(self, X) -> np.ndarray:
        """Signed distance-like score; positive means the second class."""
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return np.where(scores > 0.0, self.classes_[1], self.classes_[0])

    def predict_proba(self, X) -> np.ndarray:
        """Probability estimates via a logistic link on the decision score.

        For :class:`LogisticRegression` this is the exact model probability;
        for margin-based linear models it is a standard calibration.
        """
        scores = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))
        return np.column_stack([1.0 - positive, positive])
