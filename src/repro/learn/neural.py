"""Multi-Layer Perceptron classifier.

Table 1 lists MLP in the local scikit-learn configuration with tunable
activation, solver and alpha (L2 penalty).  Table 4(b) shows MLP becoming
the top local classifier once parameters are optimized — reproducing that
requires a real MLP, implemented here with backpropagation on the
cross-entropy loss and minibatch SGD/Adam.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.validation import (
    check_array,
    check_binary_labels,
    check_random_state,
    check_X_y,
)

__all__ = ["MLPClassifier"]

_ACTIVATIONS = {
    "relu": (
        lambda z: np.maximum(z, 0.0),
        lambda z, a: (z > 0.0).astype(np.float64),
    ),
    "tanh": (
        np.tanh,
        lambda z, a: 1.0 - a**2,
    ),
    "logistic": (
        lambda z: 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500))),
        lambda z, a: a * (1.0 - a),
    ),
}


class MLPClassifier(BaseEstimator, ClassifierMixin):
    """Feed-forward network with one sigmoid output unit.

    Parameters
    ----------
    hidden_layer_sizes : tuple of int
        Width of each hidden layer.
    activation : {"relu", "tanh", "logistic"}
        Hidden-layer nonlinearity.
    solver : {"adam", "sgd"}
        Weight update rule.
    alpha : float
        L2 penalty on all weights.
    learning_rate_init : float
        Initial step size.
    batch_size : int
        Minibatch size (capped at the dataset size).
    max_iter : int
        Training epochs.
    tol : float
        Early stop when the epoch loss improves by less than this for
        ``n_iter_no_change`` consecutive epochs.
    n_iter_no_change : int
        Patience for the early-stopping rule.
    random_state : int, Generator, or None
        Seed for initialization and shuffling.
    """

    def __init__(
        self,
        hidden_layer_sizes: tuple = (32,),
        activation: str = "relu",
        solver: str = "adam",
        alpha: float = 1e-4,
        learning_rate_init: float = 1e-3,
        batch_size: int = 32,
        max_iter: int = 200,
        tol: float = 1e-5,
        n_iter_no_change: int = 10,
        random_state=None,
    ):
        self.hidden_layer_sizes = hidden_layer_sizes
        self.activation = activation
        self.solver = solver
        self.alpha = alpha
        self.learning_rate_init = learning_rate_init
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.tol = tol
        self.n_iter_no_change = n_iter_no_change
        self.random_state = random_state

    def fit(self, X, y) -> "MLPClassifier":
        X, y = check_X_y(X, y, min_samples=2)
        if self.activation not in _ACTIVATIONS:
            raise ValidationError(
                f"unknown activation {self.activation!r}; "
                f"choose from {sorted(_ACTIVATIONS)}"
            )
        if self.solver not in ("adam", "sgd"):
            raise ValidationError(f"unknown solver {self.solver!r}")
        if self.alpha < 0:
            raise ValidationError("alpha must be non-negative")
        self.classes_ = check_binary_labels(y)
        y01 = (y == self.classes_[1]).astype(np.float64)
        rng = check_random_state(self.random_state)

        layer_sizes = [X.shape[1], *map(int, self.hidden_layer_sizes), 1]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            # Glorot-uniform initialization.
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

        n_samples = X.shape[0]
        batch = min(max(1, self.batch_size), n_samples)
        if self.solver == "adam":
            m_w = [np.zeros_like(w) for w in self.weights_]
            v_w = [np.zeros_like(w) for w in self.weights_]
            m_b = [np.zeros_like(b) for b in self.biases_]
            v_b = [np.zeros_like(b) for b in self.biases_]
            beta1, beta2, epsilon = 0.9, 0.999, 1e-8
            t = 0

        best_loss = np.inf
        stall = 0
        for epoch in range(self.max_iter):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, batch):
                rows = order[start : start + batch]
                grads_w, grads_b, loss = self._backprop(X[rows], y01[rows])
                epoch_loss += loss * rows.size
                if self.solver == "sgd":
                    eta = self.learning_rate_init
                    for layer in range(len(self.weights_)):
                        self.weights_[layer] -= eta * grads_w[layer]
                        self.biases_[layer] -= eta * grads_b[layer]
                else:
                    t += 1
                    eta = self.learning_rate_init
                    for layer in range(len(self.weights_)):
                        m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                        v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                        m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                        v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                        m_w_hat = m_w[layer] / (1 - beta1**t)
                        v_w_hat = v_w[layer] / (1 - beta2**t)
                        m_b_hat = m_b[layer] / (1 - beta1**t)
                        v_b_hat = v_b[layer] / (1 - beta2**t)
                        self.weights_[layer] -= eta * m_w_hat / (np.sqrt(v_w_hat) + epsilon)
                        self.biases_[layer] -= eta * m_b_hat / (np.sqrt(v_b_hat) + epsilon)
            epoch_loss /= n_samples
            if epoch_loss > best_loss - self.tol:
                stall += 1
                if stall >= self.n_iter_no_change:
                    self.n_iter_ = epoch + 1
                    break
            else:
                stall = 0
                best_loss = epoch_loss
        else:
            self.n_iter_ = self.max_iter
        self.loss_ = float(best_loss if best_loss < np.inf else epoch_loss)
        self.n_features_in_ = X.shape[1]
        return self

    def _forward(self, X: np.ndarray):
        """Return pre-activations and activations for every layer."""
        activation_fn, _ = _ACTIVATIONS[self.activation]
        pre_activations = []
        activations = [X]
        a = X
        last = len(self.weights_) - 1
        for layer, (w, b) in enumerate(zip(self.weights_, self.biases_)):
            z = a @ w + b
            pre_activations.append(z)
            if layer == last:
                a = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
            else:
                a = activation_fn(z)
            activations.append(a)
        return pre_activations, activations

    def _backprop(self, X: np.ndarray, y01: np.ndarray):
        _, activation_grad = _ACTIVATIONS[self.activation]
        pre_activations, activations = self._forward(X)
        n = X.shape[0]
        output = activations[-1][:, 0]
        clipped = np.clip(output, 1e-12, 1.0 - 1e-12)
        loss = float(
            -np.mean(y01 * np.log(clipped) + (1 - y01) * np.log(1 - clipped))
        )
        if self.alpha:
            loss += 0.5 * self.alpha * sum(float((w**2).sum()) for w in self.weights_)
        # Output delta for sigmoid + cross-entropy.
        delta = ((output - y01) / n)[:, None]
        grads_w = [None] * len(self.weights_)
        grads_b = [None] * len(self.biases_)
        for layer in range(len(self.weights_) - 1, -1, -1):
            grads_w[layer] = activations[layer].T @ delta + self.alpha * self.weights_[layer]
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * activation_grad(
                    pre_activations[layer - 1], activations[layer]
                )
        return grads_w, grads_b, loss

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "weights_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        _, activations = self._forward(X)
        positive = activations[-1][:, 0]
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return np.where(
            probabilities[:, 1] > 0.5, self.classes_[1], self.classes_[0]
        )
