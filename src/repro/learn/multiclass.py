"""Multi-class classification via one-vs-rest reduction.

The paper restricts itself to binary classification because "other
learning tasks, e.g. clustering and multi-class classification, are only
supported by a small subset of platforms" (§3).  This extension provides
the standard reduction that turns any of our binary classifiers into a
multi-class one, so the methodology can be carried to multi-class
datasets.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted, clone
from repro.learn.validation import check_array, check_X_y

__all__ = ["OneVsRestClassifier"]


class OneVsRestClassifier(BaseEstimator, ClassifierMixin):
    """Fit one binary classifier per class against the rest.

    Prediction picks the class whose member classifier reports the
    highest positive score (probability when available, decision value
    otherwise, vote as a last resort).

    Parameters
    ----------
    estimator : binary classifier
        Prototype cloned per class.
    """

    def __init__(self, estimator: BaseEstimator):
        self.estimator = estimator

    def fit(self, X, y) -> "OneVsRestClassifier":
        X, y = check_X_y(X, y, min_samples=2)
        self.classes_ = np.unique(y)
        if self.classes_.shape[0] < 2:
            raise ValidationError("need at least 2 classes")
        self.estimators_ = []
        for c in self.classes_:
            member = clone(self.estimator)
            member.fit(X, (y == c).astype(np.intp))
            self.estimators_.append(member)
        self.n_features_in_ = X.shape[1]
        return self

    def _scores(self, X: np.ndarray) -> np.ndarray:
        columns = []
        for member in self.estimators_:
            if hasattr(member, "predict_proba"):
                columns.append(member.predict_proba(X)[:, 1])
            elif hasattr(member, "decision_function"):
                columns.append(member.decision_function(X))
            else:
                columns.append(np.asarray(member.predict(X), dtype=np.float64))
        return np.column_stack(columns)

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        return self.classes_[np.argmax(self._scores(X), axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Per-class scores normalized to sum to one per sample."""
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        scores = self._scores(X)
        scores = scores - scores.min(axis=1, keepdims=True)
        totals = scores.sum(axis=1, keepdims=True)
        uniform = np.full_like(scores, 1.0 / scores.shape[1])
        with np.errstate(invalid="ignore"):
            normalized = np.where(totals > 0.0, scores / totals, uniform)
        return normalized
