"""CART decision tree for binary classification.

Available (with varying knobs) on BigML, PredictionIO, Microsoft and the
local library (Table 1).  Growing runs on the split engines in
:mod:`repro.learn.tree.splitter`: the default ``splitter="exact"``
presorts every feature once per tree and partitions the sorted index
lists down the recursion (bit-identical splits to re-sorting at every
node, without the per-node ``argsort``), while the opt-in
``splitter="hist"`` bins features LightGBM-style for large ``n``.
Fitted trees are additionally lowered into compiled flat arrays
(:mod:`repro.learn.tree.flat`) so prediction is a vectorized level-wise
array walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.tree.criteria import criterion_function
from repro.learn.tree.flat import flatten_tree
from repro.learn.tree.splitter import make_split_engine, scan_sorted_feature
from repro.learn.validation import (
    check_array,
    check_binary_labels,
    check_random_state,
    check_X_y,
)

__all__ = ["DecisionTreeClassifier", "TreeNode", "find_best_split"]


@dataclass
class TreeNode:
    """A node of a fitted tree.

    Leaves have ``feature == -1``; internal nodes route samples with
    ``x[feature] <= threshold`` to ``left`` and the rest to ``right``.
    """

    positive_fraction: float
    n_samples: int
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    depth: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.feature == -1

    def count_leaves(self) -> int:
        """Number of leaves under this node."""
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()

    def max_depth(self) -> int:
        """Depth of the deepest leaf under this node."""
        if self.is_leaf:
            return self.depth
        return max(self.left.max_depth(), self.right.max_depth())


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate a max_features spec into a concrete count."""
    if max_features is None or max_features == "all":
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValidationError(
                f"fractional max_features must be in (0, 1], got {max_features}"
            )
        return max(1, int(round(max_features * n_features)))
    count = int(max_features)
    if count < 1:
        raise ValidationError(f"max_features must be >= 1, got {count}")
    return min(count, n_features)


def find_best_split(
    X: np.ndarray,
    y01: np.ndarray,
    feature_indices: np.ndarray,
    impurity_fn,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Find the (feature, threshold) with the largest impurity decrease.

    Returns ``(feature, threshold, gain)`` or ``None`` when no valid split
    exists.  ``y01`` must be 0/1 floats.  This is the exact-mode search:
    every distinct value boundary is a candidate threshold.
    """
    parent_impurity = float(impurity_fn(y01.mean()))
    if parent_impurity == 0.0:
        return None
    best = None
    # Zero-gain splits are accepted (classic CART grows to purity; XOR is
    # unlearnable otherwise) — recursion still terminates because children
    # are strictly smaller.
    best_gain = -1e-12
    for feature in feature_indices:
        values = X[:, feature]
        order = np.argsort(values, kind="stable")
        found = scan_sorted_feature(
            values[order], y01[order], impurity_fn, min_samples_leaf,
            parent_impurity, best_gain,
        )
        if found is not None:
            best_gain, threshold, _ = found
            best = (int(feature), threshold, best_gain)
    return best


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """Binary CART tree.

    Parameters
    ----------
    criterion : {"gini", "entropy"}
        Impurity measure for split quality.
    max_depth : int or None
        Depth cap; ``None`` grows until pure or unsplittable.
    min_samples_split : int
        Minimum samples required to consider splitting a node.
    min_samples_leaf : int
        Minimum samples in each child (BigML's "node threshold").
    max_features : None, "all", "sqrt", "log2", int, or float
        Features examined per split; sampled randomly when fewer than all
        (the randomization behind Random Forests).
    splitter : {"exact", "hist"}
        Split search mode.  ``"exact"`` presorts each feature once and
        considers every distinct value boundary (default; identical
        splits to the classic per-node search).  ``"hist"`` bins each
        feature into at most ``max_bins`` quantile bins and splits on
        bin edges — much faster on large ``n``, approximate thresholds.
    max_bins : int
        Bin budget per feature for ``splitter="hist"`` (ignored in exact
        mode).  Features with at most this many distinct values keep
        their exact candidate thresholds.
    random_state : int, Generator, or None
        Seed for feature subsampling.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        splitter: str = "exact",
        max_bins: int = 255,
        random_state=None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y, sample_indices: np.ndarray | None = None) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y, min_samples=1)
        if self.min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2, got {self.min_samples_split}"
            )
        if self.min_samples_leaf < 1:
            raise ValidationError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.max_depth is not None and self.max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {self.max_depth}")
        self.classes_ = check_binary_labels(y)
        y01 = (y == self.classes_[1]).astype(np.float64)
        if sample_indices is not None:
            X = X[sample_indices]
            y01 = y01[sample_indices]
        rng = check_random_state(self.random_state)
        impurity_fn = criterion_function(self.criterion)
        n_candidate_features = _resolve_max_features(self.max_features, X.shape[1])
        self.n_features_in_ = X.shape[1]
        self.tree_ = self._build_tree(
            X, y01, rng=rng, impurity_fn=impurity_fn,
            n_candidate_features=n_candidate_features,
        )
        self.flat_tree_ = flatten_tree(self.tree_)
        return self

    def _build_tree(
        self,
        X: np.ndarray,
        y01: np.ndarray,
        rng: np.random.Generator,
        impurity_fn,
        n_candidate_features: int,
    ) -> TreeNode:
        """Grow the TreeNode graph with the configured split engine."""
        engine = make_split_engine(
            self.splitter, X, y01, impurity_fn, self.min_samples_leaf,
            self.max_bins,
        )
        return self._grow(
            engine, engine.root_state(), depth=0, rng=rng,
            impurity_fn=impurity_fn,
            n_candidate_features=n_candidate_features,
            n_features=X.shape[1],
        )

    def _grow(
        self,
        engine,
        state,
        depth: int,
        rng: np.random.Generator,
        impurity_fn,
        n_candidate_features: int,
        n_features: int,
    ) -> TreeNode:
        n_node, positive_fraction = engine.node_stats(state)
        node = TreeNode(
            positive_fraction=positive_fraction,
            n_samples=n_node,
            depth=depth,
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or n_node < self.min_samples_split
            or positive_fraction in (0.0, 1.0)
        ):
            return node
        if n_candidate_features < n_features:
            feature_indices = rng.choice(
                n_features, size=n_candidate_features, replace=False
            )
        else:
            feature_indices = np.arange(n_features)
        parent_impurity = float(impurity_fn(positive_fraction))
        if parent_impurity == 0.0:
            return node
        split = engine.best_split(state, feature_indices, parent_impurity)
        if split is None:
            return node
        feature, threshold, handle = split
        left_state, right_state = engine.partition(
            state, feature, threshold, handle
        )
        left_n = engine.node_stats(left_state)[0] if left_state.size else 0
        right_n = engine.node_stats(right_state)[0] if right_state.size else 0
        if left_n == 0 or right_n == 0:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(
            engine, left_state, depth + 1, rng, impurity_fn,
            n_candidate_features, n_features,
        )
        node.right = self._grow(
            engine, right_state, depth + 1, rng, impurity_fn,
            n_candidate_features, n_features,
        )
        return node

    def _positive_fractions(self, X: np.ndarray) -> np.ndarray:
        """Route every sample to its leaf via the compiled flat tree."""
        return self.flat_tree_.predict_value(X)

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        positive = self._positive_fractions(X)
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return np.where(
            probabilities[:, 1] > 0.5, self.classes_[1], self.classes_[0]
        )

    # Introspection helpers used by tests and analysis.

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        check_is_fitted(self, "tree_")
        return self.tree_.count_leaves()

    def depth(self) -> int:
        """Depth of the fitted tree (root = 0)."""
        check_is_fitted(self, "tree_")
        return self.tree_.max_depth()
