"""CART decision tree for binary classification.

Available (with varying knobs) on BigML, PredictionIO, Microsoft and the
local library (Table 1).  Split search is vectorized: for each candidate
feature the samples are sorted once and every threshold's impurity drop is
evaluated with cumulative sums, so growing is O(features * n log n) per
node rather than O(features * n^2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.tree.criteria import criterion_function
from repro.learn.validation import (
    check_array,
    check_binary_labels,
    check_random_state,
    check_X_y,
)

__all__ = ["DecisionTreeClassifier", "TreeNode", "find_best_split"]


@dataclass
class TreeNode:
    """A node of a fitted tree.

    Leaves have ``feature == -1``; internal nodes route samples with
    ``x[feature] <= threshold`` to ``left`` and the rest to ``right``.
    """

    positive_fraction: float
    n_samples: int
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    depth: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.feature == -1

    def count_leaves(self) -> int:
        """Number of leaves under this node."""
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()

    def max_depth(self) -> int:
        """Depth of the deepest leaf under this node."""
        if self.is_leaf:
            return self.depth
        return max(self.left.max_depth(), self.right.max_depth())


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate a max_features spec into a concrete count."""
    if max_features is None or max_features == "all":
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValidationError(
                f"fractional max_features must be in (0, 1], got {max_features}"
            )
        return max(1, int(round(max_features * n_features)))
    count = int(max_features)
    if count < 1:
        raise ValidationError(f"max_features must be >= 1, got {count}")
    return min(count, n_features)


def find_best_split(
    X: np.ndarray,
    y01: np.ndarray,
    feature_indices: np.ndarray,
    impurity_fn,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Find the (feature, threshold) with the largest impurity decrease.

    Returns ``(feature, threshold, gain)`` or ``None`` when no valid split
    exists.  ``y01`` must be 0/1 floats.
    """
    n_samples = y01.shape[0]
    parent_impurity = float(impurity_fn(y01.mean()))
    if parent_impurity == 0.0:
        return None
    best = None
    # Zero-gain splits are accepted (classic CART grows to purity; XOR is
    # unlearnable otherwise) — recursion still terminates because children
    # are strictly smaller.
    best_gain = -1e-12
    for feature in feature_indices:
        values = X[:, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_y = y01[order]
        # Candidate split positions: between distinct consecutive values.
        distinct = sorted_values[1:] != sorted_values[:-1]
        if not distinct.any():
            continue
        positions = np.flatnonzero(distinct) + 1  # left side sizes
        if min_samples_leaf > 1:
            positions = positions[
                (positions >= min_samples_leaf)
                & (positions <= n_samples - min_samples_leaf)
            ]
            if positions.size == 0:
                continue
        cum_pos = np.cumsum(sorted_y)
        left_count = positions.astype(float)
        right_count = n_samples - left_count
        left_positive = cum_pos[positions - 1]
        right_positive = cum_pos[-1] - left_positive
        left_impurity = impurity_fn(left_positive / left_count)
        right_impurity = impurity_fn(right_positive / right_count)
        weighted = (
            left_count * left_impurity + right_count * right_impurity
        ) / n_samples
        gains = parent_impurity - weighted
        best_local = int(np.argmax(gains))
        if gains[best_local] > best_gain:
            split_at = positions[best_local]
            threshold = 0.5 * (
                sorted_values[split_at - 1] + sorted_values[split_at]
            )
            # Guard against midpoints rounding onto the right value.
            if threshold >= sorted_values[split_at]:
                threshold = sorted_values[split_at - 1]
            best_gain = float(gains[best_local])
            best = (int(feature), float(threshold), best_gain)
    return best


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """Binary CART tree.

    Parameters
    ----------
    criterion : {"gini", "entropy"}
        Impurity measure for split quality.
    max_depth : int or None
        Depth cap; ``None`` grows until pure or unsplittable.
    min_samples_split : int
        Minimum samples required to consider splitting a node.
    min_samples_leaf : int
        Minimum samples in each child (BigML's "node threshold").
    max_features : None, "all", "sqrt", "log2", int, or float
        Features examined per split; sampled randomly when fewer than all
        (the randomization behind Random Forests).
    random_state : int, Generator, or None
        Seed for feature subsampling.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state=None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y, sample_indices: np.ndarray | None = None) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y, min_samples=1)
        if self.min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2, got {self.min_samples_split}"
            )
        if self.min_samples_leaf < 1:
            raise ValidationError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.max_depth is not None and self.max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {self.max_depth}")
        self.classes_ = check_binary_labels(y)
        y01 = (y == self.classes_[1]).astype(float)
        if sample_indices is not None:
            X = X[sample_indices]
            y01 = y01[sample_indices]
        rng = check_random_state(self.random_state)
        impurity_fn = criterion_function(self.criterion)
        n_candidate_features = _resolve_max_features(self.max_features, X.shape[1])
        self.n_features_in_ = X.shape[1]
        self.tree_ = self._grow(
            X, y01, depth=0, rng=rng, impurity_fn=impurity_fn,
            n_candidate_features=n_candidate_features,
        )
        return self

    def _grow(
        self,
        X: np.ndarray,
        y01: np.ndarray,
        depth: int,
        rng: np.random.Generator,
        impurity_fn,
        n_candidate_features: int,
    ) -> TreeNode:
        node = TreeNode(
            positive_fraction=float(y01.mean()),
            n_samples=y01.shape[0],
            depth=depth,
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y01.shape[0] < self.min_samples_split
            or node.positive_fraction in (0.0, 1.0)
        ):
            return node
        if n_candidate_features < X.shape[1]:
            feature_indices = rng.choice(
                X.shape[1], size=n_candidate_features, replace=False
            )
        else:
            feature_indices = np.arange(X.shape[1])
        split = find_best_split(
            X, y01, feature_indices, impurity_fn, self.min_samples_leaf
        )
        if split is None:
            return node
        feature, threshold, _ = split
        goes_left = X[:, feature] <= threshold
        if not goes_left.any() or goes_left.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(
            X[goes_left], y01[goes_left], depth + 1, rng, impurity_fn,
            n_candidate_features,
        )
        node.right = self._grow(
            X[~goes_left], y01[~goes_left], depth + 1, rng, impurity_fn,
            n_candidate_features,
        )
        return node

    def _positive_fractions(self, X: np.ndarray) -> np.ndarray:
        """Route every sample to its leaf iteratively (no recursion)."""
        fractions = np.empty(X.shape[0])
        # Iterative routing with an explicit stack of (node, index array)
        # avoids per-sample Python overhead on deep trees.
        stack: list[tuple[TreeNode, np.ndarray]] = [
            (self.tree_, np.arange(X.shape[0]))
        ]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                fractions[indices] = node.positive_fraction
                continue
            goes_left = X[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[goes_left]))
            stack.append((node.right, indices[~goes_left]))
        return fractions

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        positive = self._positive_fractions(X)
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return np.where(
            probabilities[:, 1] > 0.5, self.classes_[1], self.classes_[0]
        )

    # Introspection helpers used by tests and analysis.

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        check_is_fitted(self, "tree_")
        return self.tree_.count_leaves()

    def depth(self) -> int:
        """Depth of the fitted tree (root = 0)."""
        check_is_fitted(self, "tree_")
        return self.tree_.max_depth()
