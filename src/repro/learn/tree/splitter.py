"""Split-search engines for CART growing: presorted exact and histogram.

The seed implementation re-sorted every candidate feature at every node,
making tree growth ``O(nodes * features * n log n)``.  The engines here
restore the classic presort/partition scheme and add an opt-in binned
mode:

``PresortedSplitEngine`` (the default, ``splitter="exact"``)
    Sorts each feature **once per tree** and partitions the per-feature
    sorted index lists down the recursion.  A stable partition of a
    stably-sorted list is itself stably sorted, so every node sees
    exactly the (values, labels) sequences the seed implementation
    produced by re-sorting — splits, thresholds, and tie-breaking are
    bit-for-bit identical while the per-node ``argsort`` disappears.

``HistogramSplitEngine`` (opt-in, ``splitter="hist"``)
    LightGBM-style binned split finding (Ke et al., NeurIPS 2017): each
    feature is quantile-binned once per fit and candidate thresholds are
    bin upper edges, so a node's split search is one ``bincount`` per
    feature instead of a scan over every distinct value.  When a feature
    has at most ``max_bins`` distinct values its bin edges are the exact
    midpoint thresholds, making the histogram search coincide with the
    exact one on small-cardinality data.

Both engines present the same interface to the grower — an opaque node
*state*, ``node_stats``, ``best_split``, and ``partition`` — and both
are deterministic: all randomness (feature subsampling) stays in the
grower's ``random_state``-threaded generator.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

# Marks this module for repro perf's P306 rule (hot loops stay
# allocation-free); the analyzer reads it from the AST, not via import.
_COMPILED_SUBSTRATE = True  # repro: disable=F104 -- read by repro perf's P306 rule from the AST, not through imports

__all__ = [
    "PresortedSplitEngine",
    "HistogramSplitEngine",
    "make_split_engine",
    "scan_sorted_feature",
]

#: Gain threshold accepting zero-gain splits (classic CART grows to
#: purity; XOR is unlearnable otherwise) — recursion still terminates
#: because children are strictly smaller.
_GAIN_FLOOR = -1e-12


def scan_sorted_feature(
    sorted_values: np.ndarray,
    sorted_y: np.ndarray,
    impurity_fn,
    min_samples_leaf: int,
    parent_impurity: float,
    best_gain: float,
) -> tuple[float, float, int] | None:
    """Best threshold of one presorted feature, if it beats ``best_gain``.

    ``sorted_values`` / ``sorted_y`` are the node's feature values and
    0/1 labels in ascending feature order.  Returns ``(gain, threshold,
    split_at)`` — ``split_at`` is the left-child size in sorted order —
    or ``None`` when no candidate position improves on ``best_gain``.
    """
    n_samples = sorted_y.shape[0]
    # Candidate split positions: between distinct consecutive values.
    distinct = sorted_values[1:] != sorted_values[:-1]
    if not distinct.any():
        return None
    positions = np.flatnonzero(distinct) + 1  # left side sizes
    if min_samples_leaf > 1:
        positions = positions[
            (positions >= min_samples_leaf)
            & (positions <= n_samples - min_samples_leaf)
        ]
        if positions.size == 0:
            return None
    cum_pos = np.cumsum(sorted_y)
    left_count = positions.astype(np.float64)
    right_count = n_samples - left_count
    left_positive = cum_pos[positions - 1]
    right_positive = cum_pos[-1] - left_positive
    left_impurity = impurity_fn(left_positive / left_count)
    right_impurity = impurity_fn(right_positive / right_count)
    weighted = (
        left_count * left_impurity + right_count * right_impurity
    ) / n_samples
    gains = parent_impurity - weighted
    best_local = int(np.argmax(gains))
    if not gains[best_local] > best_gain:
        return None
    split_at = int(positions[best_local])
    threshold = 0.5 * (sorted_values[split_at - 1] + sorted_values[split_at])
    # Guard against midpoints rounding onto the right value.
    if threshold >= sorted_values[split_at]:
        threshold = sorted_values[split_at - 1]
    return float(gains[best_local]), float(threshold), split_at


class PresortedSplitEngine:
    """Exact split search over per-feature index lists sorted once.

    Node state is an ``(n_features, n_node)`` integer matrix whose row
    ``f`` holds the node's sample indices in ascending order of feature
    ``f`` (ties broken by original row position, exactly like a stable
    sort of the node's subarray).
    """

    def __init__(self, X: np.ndarray, y01: np.ndarray,
                 impurity_fn, min_samples_leaf: int):
        self.X = X
        self.y01 = y01
        self.impurity_fn = impurity_fn
        self.min_samples_leaf = min_samples_leaf
        # One stable sort per feature for the whole tree.
        self._root_order = np.ascontiguousarray(
            np.argsort(X, axis=0, kind="stable").T
        )
        # Scratch buffer reused by partition() to split index lists.
        self._mask = np.zeros(X.shape[0], dtype=bool)
        # Left-child sizes 1..n as floats; nodes slice views off it.
        self._counts = np.arange(1.0, X.shape[0] + 1.0)

    def root_state(self) -> np.ndarray:
        """State covering every training sample."""
        return self._root_order

    def node_stats(self, state: np.ndarray) -> tuple[int, float]:
        """``(n_samples, positive_fraction)`` of the node."""
        n_node = state.shape[1]
        positives = self.y01[state[0]].sum()  # 0/1 sum: exact integer
        return n_node, float(positives / n_node)

    def best_split(
        self, state: np.ndarray, feature_indices: np.ndarray,
        parent_impurity: float,
    ) -> tuple[int, float, int] | None:
        """Best ``(feature, threshold, split_at)`` over candidate features.

        All candidate features are scanned as one ``(features, n)``
        matrix — cumulative label sums, impurities, and gains are
        computed in a handful of vectorized passes instead of one
        Python-level scan per feature.  Selection order matches the
        sequential scan exactly: ``argmax`` over the gain matrix in row-
        major order returns the first feature (in ``feature_indices``
        order) attaining the maximum gain, at its first-best position.
        """
        n_node = state.shape[1]
        if n_node < 2:
            return None
        features = np.asarray(feature_indices)
        if features.shape[0] == state.shape[0]:
            orders = state  # all features are candidates: no row gather
        else:
            orders = state[features]
        values = self.X[orders, features[:, None]]
        distinct = values[:, 1:] != values[:, :-1]
        if not distinct.any():
            return None
        left_count = self._counts[:n_node - 1]
        valid = distinct
        if self.min_samples_leaf > 1:
            inside = (left_count >= self.min_samples_leaf) & (
                left_count <= n_node - self.min_samples_leaf
            )
            valid = distinct & inside
            if not valid.any():
                return None
        cum_positive = np.cumsum(self.y01[orders], axis=1)
        left_positive = cum_positive[:, :-1]
        right_positive = cum_positive[:, -1:] - left_positive
        right_count = n_node - left_count
        weighted = (
            left_count * self.impurity_fn(left_positive / left_count)
            + right_count * self.impurity_fn(right_positive / right_count)
        ) / n_node
        gains = parent_impurity - weighted
        gains[~valid] = -np.inf
        flat_best = int(np.argmax(gains))
        row, position = divmod(flat_best, n_node - 1)
        if not gains[row, position] > _GAIN_FLOOR:
            return None
        split_at = position + 1
        sorted_values = values[row]
        threshold = 0.5 * (
            sorted_values[split_at - 1] + sorted_values[split_at]
        )
        # Guard against midpoints rounding onto the right value.
        if threshold >= sorted_values[split_at]:
            threshold = sorted_values[split_at - 1]
        return int(features[row]), float(threshold), split_at

    def partition(
        self, state: np.ndarray, feature: int, threshold: float, split_at: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split the node's sorted index lists into left/right children.

        The first ``split_at`` entries of the split feature's order are
        exactly the samples with ``x[feature] <= threshold``; a boolean
        membership mask carries that set to every other feature's list
        while preserving order (stable partition).
        """
        left_members = state[feature, :split_at]
        mask = self._mask
        mask[left_members] = True
        take_left = mask[state]
        n_features, n_node = state.shape
        left = state[take_left].reshape(n_features, split_at)
        right = state[~take_left].reshape(n_features, n_node - split_at)
        mask[left_members] = False
        return left, right


def _bin_edges(values: np.ndarray, max_bins: int) -> np.ndarray:
    """Ascending candidate thresholds (bin upper edges) for one feature.

    With at most ``max_bins`` distinct values the edges are the exact
    CART midpoints (including the rounding guard); otherwise interior
    quantiles of the value distribution.
    """
    unique = np.unique(values)
    if unique.size <= 1:
        return np.empty(0)
    if unique.size <= max_bins:
        edges = 0.5 * (unique[:-1] + unique[1:])
        # Same guard as the exact scan: a midpoint must route its left
        # value left, so it may never round up onto the right value.
        rounded_up = edges >= unique[1:]
        edges[rounded_up] = unique[:-1][rounded_up]
        return edges
    quantiles = np.quantile(
        values, np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    )
    edges = np.unique(quantiles)
    return edges[edges < unique[-1]]


class HistogramSplitEngine:
    """Binned split search: one ``bincount`` per feature per node.

    Node state is a plain array of the node's sample indices.  Features
    are quantile-binned once per fit; a split between bins ``b`` and
    ``b+1`` routes ``x <= edges[b]`` left, so fitted thresholds are real
    feature-space values and prediction needs no binning.
    """

    def __init__(self, X: np.ndarray, y01: np.ndarray,
                 impurity_fn, min_samples_leaf: int, max_bins: int):
        if max_bins < 2:
            raise ValidationError(f"max_bins must be >= 2, got {max_bins}")
        self.X = X
        self.y01 = y01
        self.impurity_fn = impurity_fn
        self.min_samples_leaf = min_samples_leaf
        self.edges: list[np.ndarray] = []
        self.codes = np.empty(X.shape, dtype=np.int32)
        for feature in range(X.shape[1]):
            edges = _bin_edges(X[:, feature], max_bins)
            self.edges.append(edges)
            # code c satisfies edges[c-1] < x <= edges[c], so the samples
            # with code <= b are exactly those with x <= edges[b].
            self.codes[:, feature] = np.searchsorted(
                edges, X[:, feature], side="left"
            )

    def root_state(self) -> np.ndarray:
        """State covering every training sample."""
        return np.arange(self.X.shape[0])

    def node_stats(self, state: np.ndarray) -> tuple[int, float]:
        """``(n_samples, positive_fraction)`` of the node."""
        positives = self.y01[state].sum()
        return state.size, float(positives / state.size)

    def best_split(
        self, state: np.ndarray, feature_indices: np.ndarray,
        parent_impurity: float,
    ) -> tuple[int, float, float] | None:
        """Best ``(feature, threshold, threshold)`` over candidate features.

        The partition handle is the threshold itself: children are
        recovered by comparing raw feature values against it.
        """
        n_samples = state.size
        y_node = self.y01[state]
        total_positive = y_node.sum()
        best = None
        best_gain = _GAIN_FLOOR
        for feature in feature_indices:
            edges = self.edges[feature]
            if edges.size == 0:
                continue
            codes = self.codes[state, feature]
            n_bins = edges.size + 1
            counts = np.bincount(codes, minlength=n_bins)
            positives = np.bincount(codes, weights=y_node, minlength=n_bins)
            left_count = np.cumsum(counts)[:-1]  # split after bin b
            valid = (left_count >= self.min_samples_leaf) & (
                left_count <= n_samples - self.min_samples_leaf
            )
            if not valid.any():
                continue
            left_positive = np.cumsum(positives)[:-1][valid]
            left_n = left_count[valid].astype(np.float64)
            right_n = n_samples - left_n
            right_positive = total_positive - left_positive
            weighted = (
                left_n * self.impurity_fn(left_positive / left_n)
                + right_n * self.impurity_fn(right_positive / right_n)
            ) / n_samples
            gains = parent_impurity - weighted
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                threshold = float(edges[np.flatnonzero(valid)[best_local]])
                best = (int(feature), threshold, threshold)
        return best

    def partition(
        self, state: np.ndarray, feature: int, threshold: float, handle: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split the node's members on ``x[feature] <= threshold``."""
        goes_left = self.X[state, feature] <= threshold
        return state[goes_left], state[~goes_left]


def make_split_engine(
    splitter: str, X: np.ndarray, y01: np.ndarray,
    impurity_fn, min_samples_leaf: int, max_bins: int,
):
    """Construct the split engine named by ``splitter``."""
    if splitter == "exact":
        return PresortedSplitEngine(X, y01, impurity_fn, min_samples_leaf)
    if splitter == "hist":
        return HistogramSplitEngine(
            X, y01, impurity_fn, min_samples_leaf, max_bins
        )
    raise ValidationError(
        f"splitter must be 'exact' or 'hist', got {splitter!r}"
    )
