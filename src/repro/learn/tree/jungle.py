"""Decision Jungle (Shotton et al., NIPS 2013).

Azure ML Studio's Decision Jungle (Table 1: #DAGs, max depth, max width,
optimization steps per layer).  A jungle is an ensemble of rooted decision
DAGs: each level of the graph is limited to a maximum *width*, and child
nodes are merged so that multiple parents can route into the same child.
The width cap trades a small accuracy loss for a much smaller model — we
reproduce that structure with greedy level-wise training followed by
impurity-driven node merging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.tree.cart import find_best_split
from repro.learn.tree.criteria import criterion_function
from repro.learn.validation import (
    check_array,
    check_binary_labels,
    check_random_state,
    check_X_y,
)

__all__ = ["DecisionJungleClassifier"]


@dataclass
class _DagLevelNode:
    """One node in one level of a decision DAG."""

    feature: int = -1
    threshold: float = 0.0
    left_child: int = -1   # index into the next level's node list
    right_child: int = -1
    positive_fraction: float = 0.5
    n_samples: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.feature == -1


class _DecisionDAG:
    """A single width-limited decision DAG, trained level by level."""

    def __init__(self, max_depth: int, max_width: int, merge_rounds: int,
                 criterion: str, rng: np.random.Generator):
        self.max_depth = max_depth
        self.max_width = max_width
        self.merge_rounds = merge_rounds
        self.impurity_fn = criterion_function(criterion)
        self.rng = rng
        self.levels: list[list[_DagLevelNode]] = []

    def fit(self, X: np.ndarray, y01: np.ndarray) -> None:
        n_samples = X.shape[0]
        assignments = np.zeros(n_samples, dtype=np.intp)  # node index at level
        self.levels = [[_DagLevelNode(
            positive_fraction=float(y01.mean()), n_samples=n_samples
        )]]
        for depth in range(self.max_depth):
            level = self.levels[depth]
            tentative: list[tuple[int, float]] = []  # per-node split
            child_slots: list[tuple[int, int]] = []  # (parent, side) per slot
            # 1. Propose the best split for each current node.
            for node_index, node in enumerate(level):
                members = np.flatnonzero(assignments == node_index)
                node.n_samples = members.size
                if members.size:
                    node.positive_fraction = float(y01[members].mean())
                split = None
                if members.size >= 2 and 0.0 < node.positive_fraction < 1.0:
                    split = find_best_split(
                        X[members], y01[members],
                        np.arange(X.shape[1]), self.impurity_fn,
                        min_samples_leaf=1,
                    )
                if split is None:
                    tentative.append((-1, 0.0))
                else:
                    tentative.append((split[0], split[1]))
            # 2. Allocate child slots, two per split node.
            for node_index, (feature, _) in enumerate(tentative):
                if feature >= 0:
                    child_slots.append((node_index, 0))
                    child_slots.append((node_index, 1))
            if not child_slots:
                break
            # 3. Route samples to their tentative child slot.
            slot_of = {pair: slot for slot, pair in enumerate(child_slots)}
            next_assign = np.full(n_samples, -1, dtype=np.intp)
            for node_index, (feature, threshold) in enumerate(tentative):
                members = np.flatnonzero(assignments == node_index)
                if feature < 0 or members.size == 0:
                    continue
                goes_left = X[members, feature] <= threshold
                next_assign[members[goes_left]] = slot_of[(node_index, 0)]
                next_assign[members[~goes_left]] = slot_of[(node_index, 1)]
            # 4. Merge slots down to max_width by grouping slots with the
            #    most similar class posteriors (the jungle's key step).
            slot_groups = self._merge_slots(child_slots, next_assign, y01)
            # 5. Materialize the new level and rewrite parent pointers.
            new_level: list[_DagLevelNode] = []
            group_index_of_slot = {}
            for group_id, slots in enumerate(slot_groups):
                group_members = np.flatnonzero(np.isin(next_assign, slots))
                fraction = float(y01[group_members].mean()) if group_members.size else 0.5
                new_level.append(_DagLevelNode(
                    positive_fraction=fraction, n_samples=group_members.size
                ))
                for slot in slots:
                    group_index_of_slot[slot] = group_id
            for node_index, (feature, threshold) in enumerate(tentative):
                node = level[node_index]
                if feature < 0:
                    continue
                node.feature = feature
                node.threshold = threshold
                node.left_child = group_index_of_slot[slot_of[(node_index, 0)]]
                node.right_child = group_index_of_slot[slot_of[(node_index, 1)]]
            # Samples whose node became a leaf keep no next-level slot.
            routed = next_assign >= 0
            remapped = np.full(n_samples, -1, dtype=np.intp)
            remapped[routed] = [
                group_index_of_slot[s] for s in next_assign[routed]
            ]
            # Leaf-stuck samples stay out of deeper levels.
            assignments = remapped
            self.levels.append(new_level)
            if not routed.any():
                break

    def _merge_slots(
        self,
        child_slots: list[tuple[int, int]],
        next_assign: np.ndarray,
        y01: np.ndarray,
    ) -> list[list[int]]:
        """Greedily merge child slots until at most ``max_width`` remain.

        Each merge round joins the pair of groups whose pooled impurity
        increases the least — ``merge_rounds`` controls how many candidate
        pairs are scanned per merge (Azure's "optimization steps").
        """
        n_slots = len(child_slots)
        groups: list[list[int]] = [[slot] for slot in range(n_slots)]
        counts = np.empty(n_slots)
        positives = np.empty(n_slots)
        for slot in range(n_slots):
            members = np.flatnonzero(next_assign == slot)
            counts[slot] = members.size
            positives[slot] = float(y01[members].sum())
        while len(groups) > self.max_width:
            a_idx, b_idx = self._candidate_pairs(len(groups))
            n_a, n_b = counts[a_idx], counts[b_idx]
            n_ab = n_a + n_b
            safe = np.maximum(n_ab, 1.0)
            merged = n_ab * self.impurity_fn((positives[a_idx] + positives[b_idx]) / safe)
            separate = (
                n_a * self.impurity_fn(positives[a_idx] / np.maximum(n_a, 1.0))
                + n_b * self.impurity_fn(positives[b_idx] / np.maximum(n_b, 1.0))
            )
            costs = np.where(n_ab > 0, merged - separate, 0.0)
            best = int(np.argmin(costs))
            a, b = int(a_idx[best]), int(b_idx[best])
            groups[a].extend(groups[b])
            counts[a] += counts[b]
            positives[a] += positives[b]
            del groups[b]
            counts = np.delete(counts, b)
            positives = np.delete(positives, b)
        return groups

    def _candidate_pairs(self, n_groups: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized candidate pair indices (a < b), sampled if many."""
        a_idx, b_idx = np.triu_indices(n_groups, k=1)
        if a_idx.size > self.merge_rounds:
            chosen = self.rng.choice(a_idx.size, size=self.merge_rounds, replace=False)
            a_idx, b_idx = a_idx[chosen], b_idx[chosen]
        return a_idx, b_idx

    def predict_fraction(self, X: np.ndarray) -> np.ndarray:
        fractions = np.empty(X.shape[0])
        current = np.zeros(X.shape[0], dtype=np.intp)
        active = np.arange(X.shape[0])
        for depth, level in enumerate(self.levels):
            if active.size == 0:
                break
            # Per-node arrays for vectorized routing of this level.
            features = np.array([node.feature for node in level])
            thresholds = np.array([node.threshold for node in level])
            lefts = np.array([node.left_child for node in level])
            rights = np.array([node.right_child for node in level])
            values = np.array([node.positive_fraction for node in level])
            nodes = current[active]
            at_leaf = (features[nodes] == -1) | (depth + 1 >= len(self.levels))
            leaf_samples = active[at_leaf]
            fractions[leaf_samples] = values[nodes[at_leaf]]
            moving = active[~at_leaf]
            if moving.size:
                moving_nodes = nodes[~at_leaf]
                feature_values = X[moving, features[moving_nodes]]
                goes_left = feature_values <= thresholds[moving_nodes]
                current[moving] = np.where(
                    goes_left, lefts[moving_nodes], rights[moving_nodes]
                )
            active = moving
        return fractions


class DecisionJungleClassifier(BaseEstimator, ClassifierMixin):
    """Ensemble of width-limited decision DAGs.

    Parameters
    ----------
    n_dags : int
        Number of DAGs in the ensemble.
    max_depth : int
        Maximum number of decision levels per DAG.
    max_width : int
        Maximum nodes per level (the memory cap that defines a jungle).
    merge_rounds : int
        Candidate merge pairs examined per merge ("optimization steps per
        DAG layer" in Azure).
    bootstrap : bool
        Train each DAG on a bootstrap resample (Azure's "bagging"
        resampling) instead of the full training set ("replicate").
    random_state : int, Generator, or None
        Seed for bagging and merge sampling.
    """

    def __init__(
        self,
        n_dags: int = 8,
        max_depth: int = 8,
        max_width: int = 16,
        merge_rounds: int = 64,
        bootstrap: bool = True,
        random_state=None,
    ):
        self.n_dags = n_dags
        self.max_depth = max_depth
        self.max_width = max_width
        self.merge_rounds = merge_rounds
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionJungleClassifier":
        X, y = check_X_y(X, y, min_samples=2)
        for name in ("n_dags", "max_depth", "max_width", "merge_rounds"):
            if getattr(self, name) < 1:
                raise ValidationError(f"{name} must be >= 1")
        self.classes_ = check_binary_labels(y)
        y01 = (y == self.classes_[1]).astype(np.float64)
        rng = check_random_state(self.random_state)
        self.dags_ = []
        n_samples = X.shape[0]
        for _ in range(self.n_dags):
            if self.bootstrap:
                sample = rng.integers(0, n_samples, size=n_samples)
            else:
                sample = rng.permutation(n_samples)
            dag = _DecisionDAG(
                self.max_depth, self.max_width, self.merge_rounds,
                criterion="gini", rng=rng,
            )
            dag.fit(X[sample], y01[sample])
            self.dags_.append(dag)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "dags_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        positive = np.mean(
            [dag.predict_fraction(X) for dag in self.dags_], axis=0
        )
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return np.where(
            probabilities[:, 1] > 0.5, self.classes_[1], self.classes_[0]
        )
