"""Tree-based classifiers: CART decision trees and Decision Jungles.

Fitted trees are compiled into flat arrays (:mod:`repro.learn.tree.flat`)
and grown by the split engines in :mod:`repro.learn.tree.splitter`.
"""

from repro.learn.tree.cart import DecisionTreeClassifier
from repro.learn.tree.criteria import entropy_impurity, gini_impurity
from repro.learn.tree.flat import FlatForest, FlatTree, flatten_tree, stack_trees
from repro.learn.tree.jungle import DecisionJungleClassifier

__all__ = [
    "DecisionTreeClassifier",
    "DecisionJungleClassifier",
    "gini_impurity",
    "entropy_impurity",
    "FlatTree",
    "FlatForest",
    "flatten_tree",
    "stack_trees",
]
