"""Tree-based classifiers: CART decision trees and Decision Jungles."""

from repro.learn.tree.cart import DecisionTreeClassifier
from repro.learn.tree.criteria import entropy_impurity, gini_impurity
from repro.learn.tree.jungle import DecisionJungleClassifier

__all__ = [
    "DecisionTreeClassifier",
    "DecisionJungleClassifier",
    "gini_impurity",
    "entropy_impurity",
]
