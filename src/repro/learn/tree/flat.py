"""Compiled flat trees: fitted node graphs lowered to parallel arrays.

A fitted :class:`~repro.learn.tree.cart.TreeNode` graph is convenient to
grow and introspect but slow to evaluate — every node costs a Python
stack operation per batch.  :func:`flatten_tree` lowers a fitted graph
into five parallel numpy arrays (``feature/threshold/left/right/value``)
and :class:`FlatTree` routes an entire prediction batch level-by-level
with vectorized comparisons, retiring rows as they reach leaves.
:func:`stack_trees` concatenates several flat trees into one
:class:`FlatForest` node pool so a whole ensemble is evaluated by one
compressed routing loop rather than per-tree Python recursion.

Routing uses the same ``x[feature] <= threshold`` comparisons and the
same leaf values as the node graph, so flat predictions are bit-for-bit
identical to walking the ``TreeNode`` structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FlatTree", "FlatForest", "flatten_tree", "stack_trees"]

#: Marks this module for ``repro perf``'s P306 rule: the compiled
#: layout promises allocation-free per-row inner loops, and the
#: analyzer holds it to that.
_COMPILED_SUBSTRATE = True  # repro: disable=F104 -- read by repro perf's P306 rule from the AST, not through imports


@dataclass
class FlatTree:
    """One fitted tree as parallel arrays (preorder node layout).

    ``feature[i] == -1`` marks node ``i`` as a leaf holding ``value[i]``
    (a positive-class fraction for classification trees, a leaf score
    for regression trees); internal nodes route ``x[feature[i]] <=
    threshold[i]`` to ``left[i]`` and the rest to ``right[i]``.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Total number of nodes (internal + leaves)."""
        return self.feature.shape[0]

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Route every row of ``X`` to its leaf value, level by level.

        Rows that reach a leaf are written out and dropped from the
        working set, so each iteration only advances rows still inside
        the tree — total work is ``sum over rows of path length``.
        """
        return _route(self.feature, self.threshold, self.left, self.right,
                      self.value, X, np.zeros(X.shape[0], dtype=np.intp))


def _route(
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    value: np.ndarray,
    X: np.ndarray,
    start_nodes: np.ndarray,
    sample_rows: np.ndarray | None = None,
) -> np.ndarray:
    """Shared compressed routing loop for flat trees and forests.

    Each entry of ``start_nodes`` is an independent routing job starting
    at that node; ``sample_rows`` maps jobs to rows of ``X`` (identity
    when omitted — one job per row).  Finished jobs (those sitting on a
    leaf) are retired from the working arrays every iteration.
    """
    n_jobs = start_nodes.shape[0]
    out = np.empty(n_jobs)
    pending = np.arange(n_jobs)
    nodes = start_nodes
    rows = np.arange(n_jobs) if sample_rows is None else sample_rows
    feat = feature[nodes]
    while True:
        at_leaf = feat < 0
        if at_leaf.any():
            done = np.flatnonzero(at_leaf)
            out[pending[done]] = value[nodes[done]]
            keep = np.flatnonzero(~at_leaf)
            pending = pending[keep]
            nodes = nodes[keep]
            rows = rows[keep]
            feat = feat[keep]
        if pending.size == 0:
            return out
        goes_left = X[rows, feat] <= threshold[nodes]
        nodes = np.where(goes_left, left[nodes], right[nodes])
        feat = feature[nodes]


def flatten_tree(root) -> FlatTree:
    """Lower a fitted ``TreeNode`` graph into a :class:`FlatTree`."""
    order = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        if not node.is_leaf:
            stack.append(node.right)
            stack.append(node.left)
    index = {id(node): position for position, node in enumerate(order)}
    n_nodes = len(order)
    feature = np.full(n_nodes, -1, dtype=np.int32)
    threshold = np.zeros(n_nodes)
    left = np.zeros(n_nodes, dtype=np.int32)
    right = np.zeros(n_nodes, dtype=np.int32)
    value = np.empty(n_nodes)
    for position, node in enumerate(order):
        value[position] = node.positive_fraction
        if not node.is_leaf:
            feature[position] = node.feature
            threshold[position] = node.threshold
            left[position] = index[id(node.left)]
            right[position] = index[id(node.right)]
    return FlatTree(feature, threshold, left, right, value)


@dataclass
class FlatForest:
    """Several flat trees concatenated into one node pool.

    ``roots[t]`` is the offset of tree ``t``'s root; child pointers are
    rebased into the pool, so every ``(tree, sample)`` routing job is
    just a starting node in a single shared array set.  The whole
    ensemble is evaluated by one compressed routing loop instead of
    per-tree Python recursion.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    roots: np.ndarray

    @property
    def n_trees(self) -> int:
        """Number of stacked trees."""
        return self.roots.shape[0]

    def predict_values(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf values, shape ``(n_trees, n_samples)``.

        Every ``(tree, sample)`` pair routes concurrently through the
        shared node pool; row ``t`` of the result is bit-identical to
        ``trees[t].predict_value(X)``.
        """
        n_trees = self.roots.shape[0]
        n_samples = X.shape[0]
        start = np.repeat(self.roots, n_samples)
        rows = np.tile(np.arange(n_samples), n_trees)
        flat = _route(self.feature, self.threshold, self.left, self.right,
                      self.value, X, start, rows)
        return flat.reshape(n_trees, n_samples)


def stack_trees(trees: list[FlatTree]) -> FlatForest:
    """Concatenate flat trees into one :class:`FlatForest` node pool."""
    sizes = [tree.n_nodes for tree in trees]
    roots = np.concatenate([[0], np.cumsum(sizes[:-1])]).astype(np.intp)
    feature = np.concatenate([tree.feature for tree in trees])
    threshold = np.concatenate([tree.threshold for tree in trees])
    left = np.concatenate([
        tree.left.astype(np.intp) + offset
        for tree, offset in zip(trees, roots)
    ])
    right = np.concatenate([
        tree.right.astype(np.intp) + offset
        for tree, offset in zip(trees, roots)
    ])
    value = np.concatenate([tree.value for tree in trees])
    return FlatForest(feature, threshold, left, right, value, roots)
