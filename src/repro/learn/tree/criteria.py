"""Split-quality criteria for tree growing."""

from __future__ import annotations

import numpy as np

__all__ = ["gini_impurity", "entropy_impurity", "criterion_function"]


def gini_impurity(positive_fraction: np.ndarray) -> np.ndarray:
    """Binary Gini impurity ``2 p (1 - p)``; works elementwise."""
    p = np.asarray(positive_fraction, dtype=np.float64)
    return 2.0 * p * (1.0 - p)


def entropy_impurity(positive_fraction: np.ndarray) -> np.ndarray:
    """Binary Shannon entropy in nats; 0 log 0 treated as 0."""
    p = np.asarray(positive_fraction, dtype=np.float64)
    p = np.clip(p, 1e-12, 1.0 - 1e-12)
    return -(p * np.log(p) + (1.0 - p) * np.log(1.0 - p))


def criterion_function(name: str):
    """Return the impurity function for a criterion name."""
    if name == "gini":
        return gini_impurity
    if name == "entropy":
        return entropy_impurity
    raise ValueError(f"unknown criterion {name!r}; use 'gini' or 'entropy'")
