"""k-Nearest Neighbors classifier.

Table 1 lists kNN in the local scikit-learn configuration with tunable
``n_neighbors``, ``weights`` and Minkowski ``p``.  The paper notes (§3.1)
that its ordinal encoding of categoricals can hurt distance-based
classifiers like kNN — this implementation is the one affected.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.validation import check_array, check_binary_labels, check_X_y

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Brute-force kNN with uniform or inverse-distance vote weighting.

    Parameters
    ----------
    n_neighbors : int
        Number of neighbors consulted per query.
    weights : {"uniform", "distance"}
        Vote weighting; "distance" uses 1/d with exact-match override.
    p : float
        Minkowski order (1 = Manhattan, 2 = Euclidean).
    """

    _CHUNK = 256  # query rows per distance-matrix block, bounds memory

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform", p: float = 2.0):
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.p = p

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y, min_samples=1)
        if self.n_neighbors < 1:
            raise ValidationError(
                f"n_neighbors must be >= 1, got {self.n_neighbors}"
            )
        if self.weights not in ("uniform", "distance"):
            raise ValidationError(f"unknown weights {self.weights!r}")
        if self.p <= 0:
            raise ValidationError(f"p must be positive, got {self.p}")
        self.classes_ = check_binary_labels(y)
        self._fit_X = X
        self._fit_y01 = (y == self.classes_[1]).astype(np.float64)
        self.n_features_in_ = X.shape[1]
        return self

    def _distances(self, queries: np.ndarray) -> np.ndarray:
        diff = np.abs(queries[:, None, :] - self._fit_X[None, :, :])
        if self.p == 2.0:
            return np.sqrt((diff**2).sum(axis=2))
        if self.p == 1.0:
            return diff.sum(axis=2)
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "_fit_X")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        k = min(self.n_neighbors, self._fit_X.shape[0])
        positive = np.empty(X.shape[0])
        for start in range(0, X.shape[0], self._CHUNK):
            block = X[start : start + self._CHUNK]
            distances = self._distances(block)
            neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            rows = np.arange(block.shape[0])[:, None]
            neighbor_dist = distances[rows, neighbor_idx]
            neighbor_y = self._fit_y01[neighbor_idx]
            if self.weights == "uniform":
                positive[start : start + block.shape[0]] = neighbor_y.mean(axis=1)
            else:
                exact = neighbor_dist == 0.0
                weights = np.where(exact, 0.0, 1.0 / np.where(exact, 1.0, neighbor_dist))
                # Queries identical to a training point: exact matches vote alone.
                has_exact = exact.any(axis=1)
                weights[has_exact] = exact[has_exact].astype(np.float64)
                weight_sums = weights.sum(axis=1)
                weight_sums[weight_sums == 0.0] = 1.0
                positive[start : start + block.shape[0]] = (
                    (weights * neighbor_y).sum(axis=1) / weight_sums
                )
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return np.where(
            probabilities[:, 1] > 0.5, self.classes_[1], self.classes_[0]
        )
