"""Content-hash keyed memoization for repeated estimator fits.

Grid search evaluates many parameter candidates against the same
cross-validation folds, and candidates that share a pipeline prefix
(e.g. the same FEAT selection stage in front of different classifier
settings) re-fit that prefix once per candidate per fold.  A
:class:`FitCache` keys each transformer fit by *content* — estimator
class, full parameter configuration, and crc32 digests of the training
arrays (the same digest scheme as the platform simulators' model
hashes) — so identical stage fits are computed once and replayed
everywhere else.

Because every estimator in :mod:`repro.learn` is deterministic given
its parameters (an omitted ``random_state`` means the documented
default seed, never OS entropy), replaying a cached fit is bit-for-bit
equivalent to recomputing it; the cache changes wall-clock, never
results.  Cached transformed arrays are shared read-only by downstream
stages and must not be mutated in place.

:func:`derive_candidate_seed` is the crc32 seed derivation used by the
parallel grid-search backend — per-candidate seeds depend only on the
base seed and the candidate's identity, never on worker count or
execution order (the same pattern as per-platform backoff seeds in
:mod:`repro.service`).
"""

from __future__ import annotations

import threading
import zlib

import numpy as np

from repro.learn.base import BaseEstimator, clone

__all__ = ["FitCache", "array_digest", "params_token", "derive_candidate_seed"]


def array_digest(array) -> str:
    """Hex crc32 digest of an array's dtype, shape, and raw bytes.

    Uses crc32 (not ``hash``, which is salted per process) so digests
    are stable across processes and sessions.
    """
    contiguous = np.ascontiguousarray(array)
    digest = zlib.crc32(str(contiguous.dtype).encode())
    digest = zlib.crc32(str(contiguous.shape).encode(), digest)
    digest = zlib.crc32(contiguous.tobytes(), digest)
    return f"{digest:08x}"


def params_token(value) -> str:
    """Deterministic string token for a parameter value.

    Nested estimators expand to their class and full parameters, arrays
    and generators to content digests; unknown objects fall back to
    ``repr``, which can only cause cache *misses* (distinct tokens for
    equal values), never false hits.
    """
    if isinstance(value, BaseEstimator):
        return f"{type(value).__name__}({params_token(value.get_params())})"
    if isinstance(value, np.ndarray):
        return f"ndarray:{array_digest(value)}"
    if isinstance(value, np.random.Generator):
        # repr() hides the state; digest it so two generators with
        # different states never share a token.
        state = str(value.bit_generator.state).encode()
        return f"generator:{zlib.crc32(state):08x}"
    if isinstance(value, dict):
        inner = ",".join(
            f"{key}={params_token(value[key])}" for key in sorted(value)
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(params_token(item) for item in value) + "]"
    return repr(value)


def derive_candidate_seed(base_seed, label: str) -> int:
    """crc32-derived deterministic seed for one grid-search candidate.

    Same derivation pattern as :mod:`repro.service` backoff seeds:
    ``crc32(f"{base_seed}:{label}")``, independent of worker count and
    evaluation order.
    """
    return int(zlib.crc32(f"{base_seed}:{label}".encode()))


class FitCache:
    """In-memory memo of fitted transformer stages, keyed by content.

    The cache object is deliberately shared, not cloned: estimators
    holding one as a parameter (``Pipeline(memory=...)``) keep pointing
    at the same store through :func:`repro.learn.base.clone`.  Because
    it is shared, lookups and insertions are guarded by a lock and the
    insert is atomic (``setdefault``): two threads missing the same key
    both fit, but the store keeps exactly one entry and both callers
    see the same objects.  Fits themselves run outside the lock, so the
    cache never serializes compute.  In serial use the hit/miss counts
    are identical to the unguarded implementation.
    """

    def __init__(self):
        self._entries: dict[str, tuple] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __deepcopy__(self, memo) -> "FitCache":
        """Cloning an estimator must share, not fork, its fit cache."""
        return self

    def __getstate__(self) -> dict:
        """Pickle without the lock (it cannot cross process boundaries)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, estimator: BaseEstimator, X, y=None) -> str:
        """Content key for fitting ``estimator`` on ``(X, y)``."""
        head = f"{type(estimator).__module__}.{type(estimator).__qualname__}"
        y_digest = "-" if y is None else array_digest(y)
        return (
            f"{head}|{params_token(estimator.get_params())}"
            f"|X:{array_digest(X)}|y:{y_digest}"
        )

    def fit_transform(self, prototype: BaseEstimator, X, y):
        """Memoized ``(fitted_clone, transformed_X)`` for one stage.

        On a miss the prototype is cloned, fitted, and applied exactly
        as an uncached pipeline would; on a hit both the fitted stage
        and its output are replayed from the store.
        """
        cache_key = self.key(prototype, X, y)
        with self._lock:
            entry = self._entries.get(cache_key)
            if entry is not None:
                self.hits += 1
                return entry
            self.misses += 1
        fitted = clone(prototype)
        transformed = fitted.fit(X, y).transform(X)
        with self._lock:
            return self._entries.setdefault(
                cache_key, (fitted, transformed)
            )
