"""Content-hash keyed memoization for repeated estimator fits.

Grid search evaluates many parameter candidates against the same
cross-validation folds, and candidates that share a pipeline prefix
(e.g. the same FEAT selection stage in front of different classifier
settings) re-fit that prefix once per candidate per fold.  A
:class:`FitCache` keys each transformer fit by *content* — estimator
class, full parameter configuration, and crc32 digests of the training
arrays (the same digest scheme as the platform simulators' model
hashes) — so identical stage fits are computed once and replayed
everywhere else.

Because every estimator in :mod:`repro.learn` is deterministic given
its parameters (an omitted ``random_state`` means the documented
default seed, never OS entropy), replaying a cached fit is bit-for-bit
equivalent to recomputing it; the cache changes wall-clock, never
results.  Cached transformed arrays are shared read-only by downstream
stages and must not be mutated in place.

:func:`derive_candidate_seed` is the crc32 seed derivation used by the
parallel grid-search backend — per-candidate seeds depend only on the
base seed and the candidate's identity, never on worker count or
execution order (the same pattern as per-platform backoff seeds in
:mod:`repro.service`).
"""

from __future__ import annotations

import threading
import weakref
import zlib

import numpy as np

from repro.learn.base import BaseEstimator, clone

__all__ = ["FitCache", "array_digest", "params_token", "derive_candidate_seed"]


def _uncached_digest(array) -> str:
    """The raw crc32 digest computation behind :func:`array_digest`."""
    contiguous = np.ascontiguousarray(array)
    digest = zlib.crc32(str(contiguous.dtype).encode())
    digest = zlib.crc32(str(contiguous.shape).encode(), digest)
    digest = zlib.crc32(contiguous.tobytes(), digest)
    return f"{digest:08x}"


#: Identity memo for :func:`array_digest`: ``id(array)`` -> (weakref,
#: shape, dtype, digest).  A grid sweep hashes the *same* training fold
#: once per candidate; the memo computes the bytes digest once per array
#: object instead.  Entries are validated by dereferencing the weakref
#: (a recycled ``id`` after garbage collection can never alias a live
#: entry) plus a shape/dtype guard.  Digested arrays are treated as
#: read-only — the same contract :class:`FitCache` already imposes on
#: the folds it stores.
_DIGEST_MEMO: dict[int, tuple] = {}
_DIGEST_MEMO_LOCK = threading.Lock()
_DIGEST_MEMO_MAX = 2048


def _digest_memo_purge() -> None:
    """Drop dead entries (caller holds the memo lock)."""
    dead = [key for key, (ref, _, _, _) in _DIGEST_MEMO.items()
            if ref() is None]
    for key in dead:
        del _DIGEST_MEMO[key]


def array_digest(array) -> str:
    """Hex crc32 digest of an array's dtype, shape, and raw bytes.

    Uses crc32 (not ``hash``, which is salted per process) so digests
    are stable across processes and sessions.  Digests of ``ndarray``
    inputs are memoized per array *identity* (weakref-verified, with a
    shape/dtype guard), so hashing the same training fold for every
    grid-search candidate costs one bytes-pass total; the digest itself
    is content-derived, so equal-content arrays still collide to the
    same key.  Arrays passed here must not be mutated in place
    afterwards (the :class:`FitCache` read-only fold contract).
    """
    if not isinstance(array, np.ndarray):
        return _uncached_digest(array)
    key = id(array)
    with _DIGEST_MEMO_LOCK:
        entry = _DIGEST_MEMO.get(key)
        if entry is not None:
            ref, shape, dtype, digest = entry
            if ref() is array and shape == array.shape \
                    and dtype == array.dtype:
                return digest
    digest = _uncached_digest(array)
    try:
        ref = weakref.ref(array)
    except TypeError:  # exotic ndarray subclass without weakref support
        return digest
    with _DIGEST_MEMO_LOCK:
        if len(_DIGEST_MEMO) >= _DIGEST_MEMO_MAX:
            _digest_memo_purge()
        if len(_DIGEST_MEMO) < _DIGEST_MEMO_MAX:
            _DIGEST_MEMO[key] = (ref, array.shape, array.dtype, digest)
    return digest


def params_token(value) -> str:
    """Deterministic string token for a parameter value.

    Nested estimators expand to their class and full parameters, arrays
    and generators to content digests; unknown objects fall back to
    ``repr``, which can only cause cache *misses* (distinct tokens for
    equal values), never false hits.
    """
    if isinstance(value, BaseEstimator):
        return f"{type(value).__name__}({params_token(value.get_params())})"
    if isinstance(value, np.ndarray):
        return f"ndarray:{array_digest(value)}"
    if isinstance(value, np.random.Generator):
        # repr() hides the state; digest it so two generators with
        # different states never share a token.
        state = str(value.bit_generator.state).encode()
        return f"generator:{zlib.crc32(state):08x}"
    if isinstance(value, dict):
        inner = ",".join(
            f"{key}={params_token(value[key])}" for key in sorted(value)
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(params_token(item) for item in value) + "]"
    return repr(value)


def derive_candidate_seed(base_seed, label: str) -> int:
    """crc32-derived deterministic seed for one grid-search candidate.

    Same derivation pattern as :mod:`repro.service` backoff seeds:
    ``crc32(f"{base_seed}:{label}")``, independent of worker count and
    evaluation order.
    """
    return int(zlib.crc32(f"{base_seed}:{label}".encode()))


class FitCache:
    """In-memory memo of fitted transformer stages, keyed by content.

    The cache object is deliberately shared, not cloned: estimators
    holding one as a parameter (``Pipeline(memory=...)``) keep pointing
    at the same store through :func:`repro.learn.base.clone`.  Because
    it is shared, lookups and insertions are guarded by a lock and the
    insert is atomic (``setdefault``): two threads missing the same key
    both fit, but the store keeps exactly one entry and both callers
    see the same objects.  Fits themselves run outside the lock, so the
    cache never serializes compute.  In serial use the hit/miss counts
    are identical to the unguarded implementation.
    """

    def __init__(self):
        self._entries: dict[str, tuple] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __deepcopy__(self, memo) -> "FitCache":
        """Cloning an estimator must share, not fork, its fit cache."""
        return self

    def __getstate__(self) -> dict:
        """Pickle without the lock (it cannot cross process boundaries)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every memoized fit, keeping the hit/miss counters.

        Platforms call this when their last dataset is deleted so a
        long-lived service does not pin dead arrays; the counters
        survive so campaign accounting spans the whole run.
        """
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Picklable accounting snapshot: entries / hits / misses.

        This is what a campaign shard ships back across the process
        boundary instead of the cache itself (entries hold fitted
        estimators and transformed folds — data the parent does not
        need).
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

    def merge_counts(self, stats) -> None:
        """Fold another cache's hit/miss counters into this one.

        ``stats`` is a :class:`FitCache` or a mapping like
        :meth:`stats` returns.  Only the counters merge — entries stay
        process-local — and addition is commutative, so merging shard
        caches in serial shard order yields the same totals regardless
        of which shard finished first.
        """
        if isinstance(stats, FitCache):
            stats = stats.stats()
        with self._lock:
            self.hits += int(stats["hits"])
            self.misses += int(stats["misses"])

    def key(self, estimator: BaseEstimator, X, y=None) -> str:
        """Content key for fitting ``estimator`` on ``(X, y)``."""
        head = f"{type(estimator).__module__}.{type(estimator).__qualname__}"
        y_digest = "-" if y is None else array_digest(y)
        return (
            f"{head}|{params_token(estimator.get_params())}"
            f"|X:{array_digest(X)}|y:{y_digest}"
        )

    def fit_transform(self, prototype: BaseEstimator, X, y):
        """Memoized ``(fitted_clone, transformed_X)`` for one stage.

        On a miss the prototype is cloned, fitted, and applied exactly
        as an uncached pipeline would; on a hit both the fitted stage
        and its output are replayed from the store.
        """
        cache_key = self.key(prototype, X, y)
        with self._lock:
            entry = self._entries.get(cache_key)
            if entry is not None:
                self.hits += 1
                return entry
            self.misses += 1
        fitted = clone(prototype)
        transformed = fitted.fit(X, y).transform(X)
        with self._lock:
            return self._entries.setdefault(
                cache_key, (fitted, transformed)
            )
