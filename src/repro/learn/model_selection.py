"""Dataset splitting, cross-validation, and grid search.

Implements the experimental protocol of §3: a stratified 70/30
train/test split per dataset, and exhaustive grid search over parameter
grids (``D/100, D, 100*D`` around each numeric default; all options for
categorical parameters).
"""

from __future__ import annotations

import itertools
import numbers
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import ReproError, ValidationError
from repro.learn.base import BaseEstimator, clone
from repro.learn.cache import FitCache, derive_candidate_seed, params_token
from repro.learn.metrics import f_score
from repro.learn.validation import (
    DEFAULT_SEED,
    UNSEEDED,
    check_random_state,
    check_X_y,
)

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "ParameterGrid",
    "GridSearchCV",
    "paper_numeric_scan",
]


def train_test_split(
    X,
    y,
    test_size: float = 0.3,
    random_state=None,
    stratify: bool = True,
):
    """Split ``(X, y)`` into train and test partitions.

    Defaults to the paper's 70/30 split.  Stratification keeps the class
    ratio similar in both partitions and guarantees each partition sees
    both classes whenever that is possible.
    """
    X, y = check_X_y(X, y, min_samples=2)
    if not 0.0 < test_size < 1.0:
        raise ValidationError(f"test_size must be in (0, 1), got {test_size}")
    rng = check_random_state(random_state)
    n_samples = X.shape[0]
    n_test = max(1, int(round(test_size * n_samples)))
    if n_test >= n_samples:
        n_test = n_samples - 1
    if stratify:
        test_indices = []
        classes = np.unique(y)
        for c in classes:
            members = np.flatnonzero(y == c)
            members = members[rng.permutation(members.size)]
            share = int(round(n_test * members.size / n_samples))
            share = min(max(share, 1 if members.size > 1 else 0), members.size - 1) \
                if members.size > 1 else 0
            test_indices.extend(members[:share].tolist())
        test_indices = np.array(sorted(test_indices), dtype=np.intp)
    else:
        order = rng.permutation(n_samples)
        test_indices = np.sort(order[:n_test])
    test_mask = np.zeros(n_samples, dtype=bool)
    test_mask[test_indices] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class KFold:
    """Plain k-fold splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state=None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n_samples = np.asarray(X).shape[0]
        if n_samples < self.n_splits:
            raise ValidationError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = check_random_state(self.random_state)
            indices = rng.permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        for k in range(self.n_splits):
            test = np.sort(folds[k])
            train = np.sort(np.concatenate([folds[j] for j in range(self.n_splits) if j != k]))
            yield train, test


class StratifiedKFold:
    """K-fold splitter preserving per-class proportions in each fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state=None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        rng = check_random_state(self.random_state)
        per_fold: list[list[np.ndarray]] = [[] for _ in range(self.n_splits)]
        for c in np.unique(y):
            members = np.flatnonzero(y == c)
            if self.shuffle:
                members = members[rng.permutation(members.size)]
            # Round-robin assignment position % n_splits == k is exactly
            # the strided slice members[k::n_splits]: same fold members
            # as the former per-sample Python loop, k slices per class.
            for k in range(self.n_splits):
                per_fold[k].append(members[k :: self.n_splits])
        chunks = [
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.intp)
            for parts in per_fold
        ]
        for k in range(self.n_splits):
            test = np.sort(chunks[k])
            train = np.sort(np.concatenate(
                [chunks[j] for j in range(self.n_splits) if j != k]
            ))
            yield train, test


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    cv: int = 5,
    scoring: Callable = f_score,
    random_state=None,
    folds: Sequence[tuple[np.ndarray, np.ndarray]] | None = None,
) -> np.ndarray:
    """Stratified cross-validated scores of a cloned estimator.

    ``folds`` accepts precomputed ``(train, test)`` index pairs; grid
    search passes the same fold set to every candidate so the splitter
    runs once per fit instead of once per candidate.  When omitted, a
    :class:`StratifiedKFold` seeded by ``random_state`` generates them.
    """
    X, y = check_X_y(X, y)
    if folds is None:
        splitter = StratifiedKFold(
            n_splits=cv, shuffle=True, random_state=random_state
        )
        folds = splitter.split(X, y)
    scores = []
    # repro: disable=P304 -- each fold's fit sees distinct train rows, so the content-keyed cache could never hit; pipeline stages are memoized via the memory GridSearchCV injects
    for train, test in folds:
        if len(np.unique(y[train])) < 2:
            continue
        model = clone(estimator)
        model.fit(X[train], y[train])
        scores.append(scoring(y[test], model.predict(X[test])))
    if not scores:
        raise ValidationError("no valid folds; dataset too small or degenerate")
    return np.asarray(scores)


class ParameterGrid:
    """Iterate over the Cartesian product of a parameter grid.

    A grid maps parameter names to lists of candidate values; iteration
    yields plain dicts in a deterministic order.  A list of grids yields
    their concatenation (used when some parameter combinations are only
    valid together, e.g. penalty='l1' needing solver='sgd').
    """

    def __init__(self, grid: Mapping[str, Sequence] | Sequence[Mapping[str, Sequence]]):
        if isinstance(grid, Mapping):
            grid = [grid]
        self.grids = [dict(g) for g in grid]
        for g in self.grids:
            for name, values in g.items():
                if not isinstance(values, (list, tuple, np.ndarray)):
                    raise ValidationError(
                        f"grid values for {name!r} must be a sequence, "
                        f"got {type(values).__name__}"
                    )

    def __iter__(self) -> Iterator[dict]:
        for g in self.grids:
            if not g:
                yield {}
                continue
            names = sorted(g)
            for combo in itertools.product(*(g[name] for name in names)):
                yield dict(zip(names, combo))

    def __len__(self) -> int:
        total = 0
        for g in self.grids:
            size = 1
            for values in g.values():
                size *= len(values)
            total += size
        return total


def paper_numeric_scan(default: float) -> list[float]:
    """The paper's numeric parameter scan: ``D/100, D, 100*D`` (§3.2)."""
    return [default / 100.0, default, default * 100.0]


def _nested_estimators(value) -> Iterator[BaseEstimator]:
    """Yield every BaseEstimator reachable inside a parameter value."""
    if isinstance(value, BaseEstimator):
        yield value
        for sub in value.get_params().values():
            yield from _nested_estimators(sub)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _nested_estimators(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _nested_estimators(item)


def _inject_fit_cache(estimator: BaseEstimator, cache: FitCache) -> None:
    """Point every cache-capable nested estimator at the shared cache."""
    for sub in _nested_estimators(estimator):
        if "memory" in sub._param_names() and sub.memory is None:
            sub.set_params(memory=cache)


def _evaluate_candidate(
    candidate: BaseEstimator, X, y, folds, scoring, cache,
) -> float | None:
    """Mean CV score of one prepared candidate, or None if it failed.

    A candidate whose parameters are invalid for this dataset (e.g.
    ``k > n_samples``) is skipped, as a measurement script would skip a
    failed platform job.
    """
    if cache is not None:
        _inject_fit_cache(candidate, cache)
    try:
        scores = cross_val_score(candidate, X, y, scoring=scoring, folds=folds)
    except ReproError:
        return None
    return float(scores.mean())


#: Per-process fit cache for the parallel grid-search backend; workers
#: memoize shared pipeline stages across the candidates they evaluate.
_WORKER_CACHE: FitCache | None = None


def _init_worker_cache(memoize: bool) -> None:
    """Process-pool initializer: build this worker's fit cache."""
    global _WORKER_CACHE
    _WORKER_CACHE = FitCache() if memoize else None


def _candidate_worker(payload) -> float | None:
    """Evaluate one candidate inside a worker process."""
    candidate, X, y, folds, scoring = payload
    return _evaluate_candidate(candidate, X, y, folds, scoring, _WORKER_CACHE)


class GridSearchCV(BaseEstimator):
    """Exhaustive grid search with cross-validated model selection.

    Fold indices are generated **once per fit** and shared by every
    parameter candidate, candidate evaluation memoizes shared pipeline
    stages through a content-keyed :class:`~repro.learn.cache.FitCache`,
    and ``n_jobs > 1`` fans candidates out over a process pool.  All
    three are pure wall-clock optimizations: scores and the selected
    model are identical to the serial, uncached search, and independent
    of worker count.

    Parameters
    ----------
    estimator : estimator
        Prototype estimator, cloned per candidate.
    param_grid : mapping or list of mappings
        Grid specification (see :class:`ParameterGrid`).
    cv : int
        Stratified folds.
    scoring : callable
        ``scoring(y_true, y_pred) -> float``; larger is better.  Must be
        picklable (a module-level function) when ``n_jobs > 1``.
    random_state : int, Generator, or None
        Seed for fold shuffling and the per-candidate seed derivation.
    n_jobs : int
        Process-pool width for candidate evaluation; ``1`` (default)
        evaluates serially in-process.  Candidates carrying shared-state
        seeds (a numpy ``Generator`` or the ``UNSEEDED`` sentinel, both
        meaningless across process boundaries) are reseeded with
        crc32-derived per-candidate integers — the same derivation as
        :mod:`repro.service` — in *both* the serial and parallel paths,
        so results never depend on worker count.
    memoize : bool
        Enable the shared fit cache for pipeline candidates.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid,
        cv: int = 3,
        scoring: Callable = f_score,
        random_state=None,
        n_jobs: int = 1,
        memoize: bool = True,
    ):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.memoize = memoize

    def _base_seed(self) -> int:
        """Integer root of the per-candidate seed derivation."""
        if isinstance(self.random_state, numbers.Integral):
            return int(self.random_state)
        return DEFAULT_SEED

    def _prepare_candidate(self, params: dict, index: int) -> BaseEstimator:
        """Clone, configure, and deterministically reseed one candidate."""
        candidate = clone(self.estimator).set_params(**params)
        for sub in _nested_estimators(candidate):
            if "random_state" not in sub._param_names():
                continue
            value = sub.random_state
            if isinstance(value, np.random.Generator) or value is UNSEEDED:
                seed = derive_candidate_seed(
                    self._base_seed(), f"grid:{index}:{params_token(params)}"
                )
                sub.set_params(random_state=seed)
        return candidate

    def fit(self, X, y) -> "GridSearchCV":
        X, y = check_X_y(X, y)
        n_jobs = 1 if self.n_jobs is None else int(self.n_jobs)
        if n_jobs < 1:
            raise ValidationError(f"n_jobs must be >= 1, got {self.n_jobs}")
        # Fold indices are a function of (y, cv, random_state) only:
        # compute them once and share them across every candidate.
        splitter = StratifiedKFold(
            n_splits=self.cv, shuffle=True, random_state=self.random_state
        )
        folds = list(splitter.split(X, y))
        grid = list(ParameterGrid(self.param_grid))
        prepared = [
            self._prepare_candidate(params, index)
            for index, params in enumerate(grid)
        ]
        if n_jobs == 1:
            cache = FitCache() if self.memoize else None
            outcomes = [
                _evaluate_candidate(candidate, X, y, folds, self.scoring, cache)
                for candidate in prepared
            ]
        else:
            payloads = [
                (candidate, X, y, folds, self.scoring)
                for candidate in prepared
            ]
            with ProcessPoolExecutor(
                max_workers=n_jobs,
                initializer=_init_worker_cache,
                initargs=(self.memoize,),
            ) as pool:
                outcomes = list(pool.map(_candidate_worker, payloads))
        results = []
        best_score = -np.inf
        best_params: dict = {}
        best_index = 0
        for index, (params, mean_score) in enumerate(zip(grid, outcomes)):
            if mean_score is None:
                continue
            results.append({"params": params, "mean_score": mean_score})
            if mean_score > best_score:
                best_score = mean_score
                best_params = params
                best_index = index
        if not results:
            raise ValidationError("every grid candidate failed to fit")
        self.cv_results_ = results
        self.best_params_ = best_params
        self.best_score_ = best_score
        self.best_estimator_ = self._prepare_candidate(best_params, best_index)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        if not hasattr(self, "best_estimator_"):
            raise ValidationError("GridSearchCV is not fitted")
        return self.best_estimator_.predict(X)
