"""Classification metrics.

The paper's headline metric is the F-score (harmonic mean of precision and
recall), chosen because many of the corpus datasets have imbalanced classes
(§3.2 "Evaluation Metrics").  Accuracy, precision and recall are reported
alongside it in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.validation import column_or_1d

__all__ = [
    "confusion_binary",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f_score",
    "classification_summary",
    "roc_auc_score",
    "MetricSummary",
]


def _align(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = column_or_1d(y_true)
    y_pred = column_or_1d(y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValidationError(
            f"y_true has {y_true.shape[0]} samples, y_pred has {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValidationError("cannot score an empty label array")
    return y_true, y_pred


def _positive_label(y_true: np.ndarray, pos_label) -> object:
    if pos_label is not None:
        return pos_label
    classes = np.unique(y_true)
    # By convention the numerically largest class is "positive" (matches
    # the 0/1 encoding used throughout the corpus).
    return classes[-1]


def confusion_binary(y_true, y_pred, pos_label=None) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, fn, tn)`` counts for a binary problem."""
    y_true, y_pred = _align(y_true, y_pred)
    pos = _positive_label(y_true, pos_label)
    true_pos = y_true == pos
    pred_pos = y_pred == pos
    tp = int(np.sum(true_pos & pred_pos))
    fp = int(np.sum(~true_pos & pred_pos))
    fn = int(np.sum(true_pos & ~pred_pos))
    tn = int(np.sum(~true_pos & ~pred_pos))
    return tp, fp, fn, tn


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of predictions equal to the true labels."""
    y_true, y_pred = _align(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred, pos_label=None) -> float:
    """tp / (tp + fp); 0.0 when nothing was predicted positive."""
    tp, fp, _, _ = confusion_binary(y_true, y_pred, pos_label)
    denominator = tp + fp
    return tp / denominator if denominator else 0.0


def recall_score(y_true, y_pred, pos_label=None) -> float:
    """tp / (tp + fn); 0.0 when there are no true positives to find."""
    tp, _, fn, _ = confusion_binary(y_true, y_pred, pos_label)
    denominator = tp + fn
    return tp / denominator if denominator else 0.0


def f_score(y_true, y_pred, pos_label=None, beta: float = 1.0) -> float:
    """F-beta score; beta=1 gives the paper's harmonic-mean F-score."""
    if beta <= 0:
        raise ValidationError(f"beta must be positive, got {beta}")
    precision = precision_score(y_true, y_pred, pos_label)
    recall = recall_score(y_true, y_pred, pos_label)
    if precision == 0.0 and recall == 0.0:
        return 0.0
    beta2 = beta * beta
    return (1 + beta2) * precision * recall / (beta2 * precision + recall)


def roc_auc_score(y_true, y_score, pos_label=None) -> float:
    """Area under the ROC curve via the rank-statistic formulation.

    Not used for platform ranking (the paper notes some platforms do not
    expose prediction scores) but provided for local-library analysis.
    """
    y_true = column_or_1d(y_true)
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    if y_true.shape[0] != y_score.shape[0]:
        raise ValidationError("y_true and y_score length mismatch")
    pos = _positive_label(y_true, pos_label)
    positive = y_true == pos
    n_pos = int(positive.sum())
    n_neg = int((~positive).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("ROC AUC requires both classes present")
    # Mann-Whitney U with midranks for ties.
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(len(y_score), dtype=np.float64)
    sorted_scores = y_score[order]
    i = 0
    rank_position = 1
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        midrank = (rank_position + rank_position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = midrank
        rank_position += j - i + 1
        i = j + 1
    rank_sum = float(ranks[positive].sum())
    u_statistic = rank_sum - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)


@dataclass(frozen=True)
class MetricSummary:
    """The four metrics the paper reports per experiment (Table 3)."""

    f_score: float
    accuracy: float
    precision: float
    recall: float

    def as_dict(self) -> dict[str, float]:
        """Return the four metrics as a plain dict."""
        return {
            "f_score": self.f_score,
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
        }


def classification_summary(y_true, y_pred, pos_label=None) -> MetricSummary:
    """Compute all four paper metrics from one confusion matrix pass."""
    tp, fp, fn, tn = confusion_binary(y_true, y_pred, pos_label)
    total = tp + fp + fn + tn
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    if precision == 0.0 and recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return MetricSummary(
        f_score=f1,
        accuracy=(tp + tn) / total,
        precision=precision,
        recall=recall,
    )
