"""Pipeline composing transformers with a final classifier.

The platform simulators assemble (feature selection -> classifier)
pipelines exactly the way Figure 1 of the paper draws the ML pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, clone

__all__ = ["Pipeline"]


class Pipeline(BaseEstimator, ClassifierMixin):
    """Chain of named (transformer..., classifier) steps.

    Parameters
    ----------
    steps : list of (name, estimator)
        All but the last must be transformers (have ``transform``); the
        last must be a classifier (have ``predict``).
    memory : FitCache or None
        Optional :class:`repro.learn.cache.FitCache` memoizing the
        transformer stages by content.  Pipelines sharing one cache
        (e.g. grid-search candidates differing only in classifier
        parameters) fit each distinct transformer stage once per
        distinct input; results are bit-identical to fitting uncached.
    """

    def __init__(self, steps: list, memory=None):
        self.steps = steps
        self.memory = memory

    def set_params(self, **params) -> "Pipeline":
        """Set pipeline parameters, routing ``<step>__<param>`` to steps.

        Plain names (``steps``, ``memory``) behave as on any estimator;
        double-underscore names are forwarded to the named step so grid
        search can sweep e.g. ``classifier__max_depth`` over a pipeline.
        """
        nested: dict[str, dict] = {}
        direct = {}
        for name, value in params.items():
            if "__" in name:
                prefix, _, key = name.partition("__")
                nested.setdefault(prefix, {})[key] = value
            else:
                direct[name] = value
        super().set_params(**direct)
        if nested:
            step_map = dict(self.steps)
            for prefix, sub_params in nested.items():
                if prefix not in step_map:
                    raise ValueError(
                        f"Invalid parameter prefix {prefix!r} for Pipeline; "
                        f"step names are {sorted(step_map)}"
                    )
                step_map[prefix].set_params(**sub_params)
        return self

    def _validate(self) -> None:
        if not self.steps:
            raise ValidationError("Pipeline needs at least one step")
        names = [name for name, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate step names: {names}")
        for name, step in self.steps[:-1]:
            if not hasattr(step, "transform"):
                raise ValidationError(
                    f"intermediate step {name!r} must be a transformer"
                )
        if not hasattr(self.steps[-1][1], "predict"):
            raise ValidationError("final pipeline step must be a classifier")

    def fit(self, X, y) -> "Pipeline":
        self._validate()
        self.fitted_steps_ = []
        data = X
        for name, step in self.steps[:-1]:
            if self.memory is not None:
                fitted, data = self.memory.fit_transform(step, data, y)
            else:
                fitted = clone(step)
                data = fitted.fit(data, y).transform(data)
            self.fitted_steps_.append((name, fitted))
        final_name, final_step = self.steps[-1]
        fitted_final = clone(final_step)
        fitted_final.fit(data, y)
        self.fitted_steps_.append((final_name, fitted_final))
        self.classes_ = getattr(fitted_final, "classes_", None)
        return self

    def _transform(self, X) -> np.ndarray:
        if not hasattr(self, "fitted_steps_"):
            raise ValidationError("Pipeline is not fitted")
        data = X
        for _, step in self.fitted_steps_[:-1]:
            data = step.transform(data)
        return data

    @property
    def final_estimator_(self):
        """The fitted classifier at the end of the pipeline."""
        if not hasattr(self, "fitted_steps_"):
            raise ValidationError("Pipeline is not fitted")
        return self.fitted_steps_[-1][1]

    def predict(self, X) -> np.ndarray:
        return self.final_estimator_.predict(self._transform(X))

    def predict_proba(self, X) -> np.ndarray:
        final = self.final_estimator_
        if not hasattr(final, "predict_proba"):
            raise ValidationError(
                f"{type(final).__name__} does not provide predict_proba"
            )
        return final.predict_proba(self._transform(X))
