"""Naive Bayes classifiers.

PredictionIO's Naive Bayes (single ``lambda`` smoothing parameter, Table 1)
and scikit-learn's GaussianNB (tunable class prior) are both represented.
The paper's §6 family analysis places NB in the linear family (Table 5) —
Gaussian NB with shared-ish variances induces a near-linear boundary.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, ClassifierMixin, check_is_fitted
from repro.learn.validation import check_array, check_binary_labels, check_X_y

__all__ = ["GaussianNB", "BernoulliNB"]


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Gaussian Naive Bayes with variance smoothing.

    Parameters
    ----------
    priors : sequence of 2 floats, or None
        Class prior probabilities; estimated from data when ``None``.
    var_smoothing : float
        Fraction of the largest feature variance added to every variance
        for numerical stability (PredictionIO's ``lambda`` analogue).
    """

    def __init__(self, priors=None, var_smoothing: float = 1e-9):
        self.priors = priors
        self.var_smoothing = var_smoothing

    def fit(self, X, y) -> "GaussianNB":
        X, y = check_X_y(X, y, min_samples=2)
        self.classes_ = check_binary_labels(y)
        if self.var_smoothing < 0:
            raise ValidationError("var_smoothing must be non-negative")
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        counts = np.zeros(n_classes)
        for k, c in enumerate(self.classes_):
            Xc = X[y == c]
            counts[k] = Xc.shape[0]
            self.theta_[k] = Xc.mean(axis=0)
            self.var_[k] = Xc.var(axis=0)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        self.var_ += epsilon
        self.var_ = np.maximum(self.var_, 1e-12)
        if self.priors is None:
            self.class_prior_ = counts / counts.sum()
        else:
            priors = np.asarray(self.priors, dtype=np.float64)
            if priors.shape != (n_classes,) or not np.isclose(priors.sum(), 1.0):
                raise ValidationError(
                    f"priors must be {n_classes} probabilities summing to 1"
                )
            self.class_prior_ = priors
        self.n_features_in_ = n_features
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "theta_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        jll = np.zeros((X.shape[0], len(self.classes_)))
        for k in range(len(self.classes_)):
            log_prior = np.log(self.class_prior_[k] + 1e-300)
            gauss = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[k])
                + (X - self.theta_[k]) ** 2 / self.var_[k],
                axis=1,
            )
            jll[:, k] = log_prior + gauss
        return jll

    def predict(self, X) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(jll, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        probabilities = np.exp(jll)
        return probabilities / probabilities.sum(axis=1, keepdims=True)


class BernoulliNB(BaseEstimator, ClassifierMixin):
    """Bernoulli Naive Bayes over binarized features.

    Parameters
    ----------
    alpha : float
        Laplace/Lidstone smoothing (PredictionIO's ``lambda``).
    binarize : float
        Threshold mapping features to {0, 1} before fitting.
    """

    def __init__(self, alpha: float = 1.0, binarize: float = 0.0):
        self.alpha = alpha
        self.binarize = binarize

    def fit(self, X, y) -> "BernoulliNB":
        X, y = check_X_y(X, y, min_samples=2)
        if self.alpha < 0:
            raise ValidationError("alpha must be non-negative")
        self.classes_ = check_binary_labels(y)
        X_bin = (X > self.binarize).astype(np.float64)
        n_classes = len(self.classes_)
        self.feature_log_prob_ = np.zeros((n_classes, X.shape[1], 2))
        counts = np.zeros(n_classes)
        for k, c in enumerate(self.classes_):
            Xc = X_bin[y == c]
            counts[k] = Xc.shape[0]
            p_one = (Xc.sum(axis=0) + self.alpha) / (Xc.shape[0] + 2.0 * self.alpha)
            p_one = np.clip(p_one, 1e-12, 1.0 - 1e-12)
            self.feature_log_prob_[k, :, 1] = np.log(p_one)
            self.feature_log_prob_[k, :, 0] = np.log(1.0 - p_one)
        self.class_log_prior_ = np.log(counts / counts.sum())
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "feature_log_prob_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        X_bin = (X > self.binarize).astype(np.intp)
        jll = np.zeros((X.shape[0], len(self.classes_)))
        for k in range(len(self.classes_)):
            log_p = self.feature_log_prob_[k]
            jll[:, k] = self.class_log_prior_[k] + (
                X_bin * log_p[:, 1] + (1 - X_bin) * log_p[:, 0]
            ).sum(axis=1)
        return self.classes_[np.argmax(jll, axis=1)]
