"""repro.learn — a from-scratch ML library standing in for scikit-learn.

This package implements, using only numpy/scipy, every classifier,
preprocessing method and feature-selection filter that appears in Table 1
of the paper, plus the model-selection tooling (grid search, stratified
splits) the measurement methodology requires.

Classifier inventory (paper Table 4 abbreviations):

====  =============================  ==============================
Abbr  Classifier                     Class
====  =============================  ==============================
LR    Logistic Regression            :class:`LogisticRegression`
NB    Naive Bayes                    :class:`GaussianNB`
SVM   Linear SVM                     :class:`LinearSVC`
LDA   Linear Discriminant Analysis   :class:`LinearDiscriminantAnalysis`
AP    Averaged Perceptron            :class:`AveragedPerceptron`
BPM   Bayes Point Machine            :class:`BayesPointMachine`
KNN   k-Nearest Neighbors            :class:`KNeighborsClassifier`
DT    Decision Tree                  :class:`DecisionTreeClassifier`
BAG   Bagged Trees                   :class:`BaggingClassifier`
RF    Random Forests                 :class:`RandomForestClassifier`
BST   Boosted Decision Trees         :class:`GradientBoostingClassifier`
DJ    Decision Jungle                :class:`DecisionJungleClassifier`
MLP   Multi-Layer Perceptron         :class:`MLPClassifier`
====  =============================  ==============================
"""

from repro.learn.base import (
    BaseEstimator,
    ClassifierMixin,
    TransformerMixin,
    check_is_fitted,
    clone,
)
from repro.learn.bayes import BernoulliNB, GaussianNB
from repro.learn.cache import FitCache, array_digest, derive_candidate_seed
from repro.learn.ensemble import (
    AdaBoostClassifier,
    BaggingClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from repro.learn.linear import (
    AveragedPerceptron,
    BayesPointMachine,
    LinearDiscriminantAnalysis,
    LinearSVC,
    LogisticRegression,
)
from repro.learn.metrics import (
    MetricSummary,
    accuracy_score,
    classification_summary,
    f_score,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.learn.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    StratifiedKFold,
    cross_val_score,
    paper_numeric_scan,
    train_test_split,
)
from repro.learn.multiclass import OneVsRestClassifier
from repro.learn.neighbors import KNeighborsClassifier
from repro.learn.neural import MLPClassifier
from repro.learn.pipeline import Pipeline
from repro.learn.regression import (
    DecisionTreeRegressor,
    KNeighborsRegressor,
    LinearRegression,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
)
from repro.learn.tree import DecisionJungleClassifier, DecisionTreeClassifier

__all__ = [
    # base
    "BaseEstimator", "ClassifierMixin", "TransformerMixin", "clone",
    "check_is_fitted",
    # classifiers
    "LogisticRegression", "GaussianNB", "BernoulliNB", "LinearSVC",
    "LinearDiscriminantAnalysis", "AveragedPerceptron", "BayesPointMachine",
    "KNeighborsClassifier", "DecisionTreeClassifier", "DecisionJungleClassifier",
    "BaggingClassifier", "RandomForestClassifier", "GradientBoostingClassifier",
    "AdaBoostClassifier", "MLPClassifier",
    # metrics
    "accuracy_score", "precision_score", "recall_score", "f_score",
    "roc_auc_score", "classification_summary", "MetricSummary",
    # model selection
    "train_test_split", "KFold", "StratifiedKFold", "cross_val_score",
    "ParameterGrid", "GridSearchCV", "paper_numeric_scan",
    # composition and fit memoization
    "Pipeline", "FitCache", "array_digest", "derive_candidate_seed",
    # extensions: regression (the paper's other universal task) and
    # multi-class reduction (§8 future work)
    "LinearRegression", "DecisionTreeRegressor", "KNeighborsRegressor",
    "mean_squared_error", "mean_absolute_error", "r2_score",
    "OneVsRestClassifier",
    # registries (Tables 4 & 5)
    "CLASSIFIER_REGISTRY", "LINEAR_FAMILY", "NONLINEAR_FAMILY",
]

#: Classifier abbreviation -> class, as used in the paper's Table 4/5.
CLASSIFIER_REGISTRY = {
    "LR": LogisticRegression,
    "NB": GaussianNB,
    "SVM": LinearSVC,
    "LDA": LinearDiscriminantAnalysis,
    "AP": AveragedPerceptron,
    "BPM": BayesPointMachine,
    "KNN": KNeighborsClassifier,
    "DT": DecisionTreeClassifier,
    "BAG": BaggingClassifier,
    "RF": RandomForestClassifier,
    "BST": GradientBoostingClassifier,
    "DJ": DecisionJungleClassifier,
    "MLP": MLPClassifier,
}

#: Paper Table 5: assignment of classifiers to linear / non-linear families.
LINEAR_FAMILY = frozenset({"LR", "NB", "SVM", "LDA", "AP", "BPM"})
NONLINEAR_FAMILY = frozenset({"DT", "RF", "BST", "KNN", "BAG", "MLP", "DJ"})
