"""Estimator protocol shared by every model in :mod:`repro.learn`.

The protocol deliberately mirrors scikit-learn's: estimators are configured
entirely through constructor keyword arguments, learn state in :meth:`fit`
(storing learned attributes with a trailing underscore), and are cloneable
into unfitted copies via :func:`clone`.  Grid search, pipelines, and the
MLaaS platform simulators all rely only on this protocol.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

from repro.exceptions import NotFittedError

__all__ = ["BaseEstimator", "ClassifierMixin", "TransformerMixin", "clone",
           "check_is_fitted"]


class BaseEstimator:
    """Base class providing parameter introspection and cloning.

    Subclasses must accept all configuration as explicit keyword arguments
    in ``__init__`` and store each argument verbatim on an attribute of the
    same name.  That invariant is what makes :meth:`get_params` /
    :meth:`set_params` work without any per-class bookkeeping.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        """Return the sorted constructor parameter names for this class."""
        init = cls.__init__
        if init is object.__init__:
            return []
        signature = inspect.signature(init)
        names = [
            name
            for name, param in signature.parameters.items()
            if name != "self"
            and param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
        ]
        return sorted(names)

    def get_params(self) -> dict[str, Any]:
        """Return the estimator's constructor parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set constructor parameters on this estimator and return self."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Mixin adding a default accuracy :meth:`score` for classifiers."""

    _estimator_kind = "classifier"

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Return mean accuracy of ``self.predict(X)`` against ``y``."""
        predictions = np.asarray(self.predict(X))
        return float(np.mean(predictions == np.asarray(y)))


class TransformerMixin:
    """Mixin adding :meth:`fit_transform` for transformers."""

    _estimator_kind = "transformer"

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Fit to ``X`` (optionally with labels ``y``) then transform it."""
        return self.fit(X, y).transform(X)


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return a new unfitted estimator with the same parameters.

    Parameter values are deep-copied so that mutable defaults (lists of
    layer sizes, nested estimators) are not shared between clones.  Nested
    estimators found among the parameters are themselves cloned.
    """
    params = estimator.get_params()
    cloned_params = {}
    for name, value in params.items():
        if isinstance(value, BaseEstimator):
            cloned_params[name] = clone(value)
        else:
            cloned_params[name] = copy.deepcopy(value)
    return type(estimator)(**cloned_params)


def check_is_fitted(estimator: Any, attribute: str = "classes_") -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` has ``attribute``."""
    if not hasattr(estimator, attribute):
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted; call fit() before "
            f"using this method (missing attribute {attribute!r})"
        )
