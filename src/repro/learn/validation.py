"""Input validation helpers used across :mod:`repro.learn`."""

from __future__ import annotations

import numbers

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["DEFAULT_SEED", "UNSEEDED", "check_array", "check_X_y",
           "check_random_state", "column_or_1d", "check_binary_labels"]

#: Seed used when ``random_state`` is omitted (``None``).  An omitted
#: seed must never make a measurement silently irreproducible (§3.2's
#: protocol is seed-chained end to end), so ``None`` now means "the
#: documented default seed", not "fresh OS entropy".
DEFAULT_SEED = 0


class _UnseededSentinel:
    """Type of :data:`UNSEEDED`; never instantiated elsewhere.

    The sentinel is recognized by identity (``random_state is
    UNSEEDED``), so copying — which :func:`repro.learn.base.clone` does
    to every parameter — must return the singleton, not a lookalike.
    """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "repro.learn.validation.UNSEEDED"

    def __copy__(self) -> "_UnseededSentinel":
        return self

    def __deepcopy__(self, memo) -> "_UnseededSentinel":
        return self

    def __reduce__(self):
        return (_unseeded_singleton, ())


def _unseeded_singleton() -> "_UnseededSentinel":
    """Unpickling hook keeping :data:`UNSEEDED` a process-wide singleton."""
    return UNSEEDED


#: Explicit opt-in to a nondeterministic generator.  Passing this as
#: ``random_state`` is the only supported way to get OS-entropy
#: randomness, which keeps every unseeded RNG grep-able and auditable
#: (lint rule R001 forbids bare ``np.random.default_rng()``).
UNSEEDED = _UnseededSentinel()


def check_array(
    X,
    *,
    ensure_2d: bool = True,
    allow_nan: bool = False,
    min_samples: int = 1,
    dtype=np.float64,
) -> np.ndarray:
    """Validate and convert ``X`` to a numeric ndarray.

    Parameters
    ----------
    X : array-like
        Input data.
    ensure_2d : bool
        Require a 2-D matrix (n_samples, n_features).
    allow_nan : bool
        Permit NaN entries (used by the imputer, which exists to remove
        them; everything else rejects NaN).
    min_samples : int
        Minimum number of rows.
    dtype : numpy dtype
        Target dtype of the returned array.
    """
    try:
        X = np.asarray(X, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"could not convert input to {dtype}: {exc}") from exc
    if ensure_2d:
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.ndim != 2:
            raise ValidationError(f"expected 2-D array, got shape {X.shape}")
        if X.shape[1] == 0:
            raise ValidationError("input has 0 features")
    if X.shape[0] < min_samples:
        raise ValidationError(
            f"at least {min_samples} samples required, got {X.shape[0]}"
        )
    if not allow_nan and X.dtype.kind == "f":
        if not np.isfinite(X).all():
            raise ValidationError(
                "input contains NaN or infinity; impute or clean it first "
                "(see repro.learn.preprocessing.MedianImputer)"
            )
    return X


def column_or_1d(y) -> np.ndarray:
    """Flatten a column vector to 1-D; reject higher-dimensional labels."""
    y = np.asarray(y)
    if y.ndim == 2 and y.shape[1] == 1:
        y = y.ravel()
    if y.ndim != 1:
        raise ValidationError(f"expected 1-D label array, got shape {y.shape}")
    return y


def check_X_y(
    X,
    y,
    *,
    allow_nan: bool = False,
    min_samples: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a (data, labels) pair and check consistent lengths."""
    X = check_array(X, allow_nan=allow_nan, min_samples=min_samples)
    y = column_or_1d(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError(
            f"X has {X.shape[0]} samples but y has {y.shape[0]}"
        )
    return X, y


def check_binary_labels(y: np.ndarray) -> np.ndarray:
    """Return sorted class values, requiring exactly two distinct classes."""
    classes = np.unique(y)
    if classes.shape[0] != 2:
        raise ValidationError(
            f"binary classification requires exactly 2 classes, "
            f"got {classes.shape[0]}: {classes[:10]}"
        )
    return classes


def check_random_state(seed) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (deterministic generator seeded with
    :data:`DEFAULT_SEED`, so omitting a seed can never silently make a
    sweep irreproducible), an integer seed, an existing Generator
    (returned as-is so state is shared), or the :data:`UNSEEDED`
    sentinel — the explicit, documented opt-in to OS-entropy
    nondeterminism.
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if seed is UNSEEDED:
        # The one sanctioned escape hatch from the seed chain; every
        # caller must opt in by name so unseeded paths stay grep-able.
        return np.random.default_rng()  # repro: disable=R001 -- UNSEEDED sentinel is the audited opt-in to OS entropy
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, numbers.Integral):
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"random_state must be None, UNSEEDED, an int, or a numpy "
        f"Generator; got {type(seed).__name__}"
    )
