"""Fisher-LDA projection used as a feature-selection step.

Azure ML Studio's "Fisher Linear Discriminant Analysis" module (Table 1,
Microsoft FEAT column) projects the feature space onto discriminant
directions before classification.  For binary problems the Fisher
criterion yields a single direction; this transform emits that projection
optionally alongside the top original features so downstream classifiers
keep some raw signal.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator, TransformerMixin, check_is_fitted
from repro.learn.validation import check_array, check_binary_labels, check_X_y

__all__ = ["FisherLDATransform"]


class FisherLDATransform(BaseEstimator, TransformerMixin):
    """Project data onto the binary Fisher discriminant direction.

    Parameters
    ----------
    keep_original : int
        Number of original features (by Fisher score) appended to the
        projection; 0 emits the 1-D discriminant alone.
    """

    def __init__(self, keep_original: int = 0):
        self.keep_original = keep_original

    def fit(self, X, y) -> "FisherLDATransform":
        X, y = check_X_y(X, y)
        classes = check_binary_labels(y)
        positive = y == classes[1]
        mean_pos = X[positive].mean(axis=0)
        mean_neg = X[~positive].mean(axis=0)
        centered = np.vstack([
            X[positive] - mean_pos,
            X[~positive] - mean_neg,
        ])
        scatter = centered.T @ centered / max(X.shape[0] - 2, 1)
        scatter = scatter + 1e-6 * np.eye(X.shape[1])
        self.direction_ = np.linalg.solve(scatter, mean_pos - mean_neg)
        norm = np.linalg.norm(self.direction_)
        if norm > 0.0:
            self.direction_ /= norm
        if self.keep_original > 0:
            # Rank original features by per-feature Fisher criterion.
            variances = X[positive].var(axis=0) + X[~positive].var(axis=0)
            variances[variances == 0.0] = 1e-12
            scores = (mean_pos - mean_neg) ** 2 / variances
            order = np.argsort(-scores, kind="stable")
            self.kept_indices_ = np.sort(order[: self.keep_original])
        else:
            self.kept_indices_ = np.array([], dtype=np.intp)
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "direction_")
        X = check_array(X)
        projection = (X @ self.direction_)[:, None]
        if self.kept_indices_.size:
            return np.hstack([projection, X[:, self.kept_indices_]])
        return projection
