"""Filter-method feature selection (Figure 1, "Feature Selection").

The paper notes that Microsoft is the only MLaaS platform with built-in
feature selection, offering 8 filter methods; the local scikit-learn
configuration uses FClassif and MutualInfoClassif (Table 1).  All scorers
here are classifier-independent statistical filters, matching the paper's
definition of the Filter method.
"""

from repro.learn.feature_selection.filters import (
    chi2_score,
    count_score,
    f_classif_score,
    fisher_score,
    kendall_score,
    mutual_info_score,
    pearson_score,
    spearman_score,
)
from repro.learn.feature_selection.fisher_lda import FisherLDATransform
from repro.learn.feature_selection.selector import FILTER_SCORERS, SelectKBest

__all__ = [
    "SelectKBest",
    "FILTER_SCORERS",
    "FisherLDATransform",
    "pearson_score",
    "spearman_score",
    "kendall_score",
    "chi2_score",
    "mutual_info_score",
    "fisher_score",
    "count_score",
    "f_classif_score",
]
