"""Statistical filter scorers ranking features by class discriminatory power.

Each scorer takes ``(X, y)`` and returns one non-negative relevance score
per feature; higher means more discriminative.  These are the 8 filter
methods Microsoft Azure ML Studio exposes (Pearson, Mutual information,
Kendall, Spearman, Chi-squared, Fisher, Count) plus the ANOVA F-test
(FClassif) used in the local library configuration.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.learn.validation import check_X_y

__all__ = [
    "pearson_score",
    "spearman_score",
    "kendall_score",
    "chi2_score",
    "mutual_info_score",
    "fisher_score",
    "count_score",
    "f_classif_score",
]


def _encode_binary(y: np.ndarray) -> np.ndarray:
    """Map the two class values onto {0, 1} for correlation computations."""
    classes = np.unique(y)
    return (y == classes[-1]).astype(np.float64)


def pearson_score(X, y) -> np.ndarray:
    """Absolute Pearson correlation between each feature and the label."""
    X, y = check_X_y(X, y)
    y01 = _encode_binary(y)
    Xc = X - X.mean(axis=0)
    yc = y01 - y01.mean()
    x_norm = np.sqrt((Xc**2).sum(axis=0))
    y_norm = np.sqrt((yc**2).sum())
    denominator = x_norm * y_norm
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = (Xc * yc[:, None]).sum(axis=0) / denominator
    corr[~np.isfinite(corr)] = 0.0
    return np.abs(corr)


def _rankdata_columns(X: np.ndarray) -> np.ndarray:
    return np.apply_along_axis(stats.rankdata, 0, X)


def spearman_score(X, y) -> np.ndarray:
    """Absolute Spearman rank correlation per feature.

    Spearman correlation is Pearson correlation computed on ranks; for a
    binary label the rank transform of ``y`` is a monotone recoding of the
    two classes, so ranking the features and reusing the Pearson scorer is
    exact.
    """
    X, y = check_X_y(X, y)
    return pearson_score(_rankdata_columns(X), y)


def kendall_score(X, y) -> np.ndarray:
    """Absolute Kendall tau-b per feature (O(n log n) via scipy)."""
    X, y = check_X_y(X, y)
    y01 = _encode_binary(y)
    scores = np.zeros(X.shape[1])
    # repro: disable=P301 -- tau-b has no vectorized numpy form; scipy's O(n log n) kernel per column beats any dense spelling
    for j in range(X.shape[1]):
        column = X[:, j]
        if np.all(column == column[0]):
            continue
        tau = stats.kendalltau(column, y01).statistic
        scores[j] = abs(tau) if np.isfinite(tau) else 0.0
    return scores


def chi2_score(X, y) -> np.ndarray:
    """Chi-squared statistic between non-negative features and the label.

    Features are shifted to be non-negative first (the statistic is defined
    on counts/frequencies), matching how practitioners apply chi2 filters
    to real-valued data.
    """
    X, y = check_X_y(X, y)
    X = X - X.min(axis=0)
    y01 = _encode_binary(y).astype(bool)
    observed = np.vstack([X[y01].sum(axis=0), X[~y01].sum(axis=0)])
    feature_totals = observed.sum(axis=0)
    class_fractions = np.array([y01.mean(), 1.0 - y01.mean()])
    expected = class_fractions[:, None] * feature_totals[None, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        chi2 = ((observed - expected) ** 2 / expected).sum(axis=0)
    chi2[~np.isfinite(chi2)] = 0.0
    return chi2


def mutual_info_score(X, y, n_bins: int = 10) -> np.ndarray:
    """Mutual information per feature after equal-width discretization."""
    X, y = check_X_y(X, y)
    y01 = _encode_binary(y).astype(np.intp)
    n_samples = X.shape[0]
    class_prob = np.bincount(y01, minlength=2) / n_samples
    scores = np.zeros(X.shape[1])
    # Each column's bin edges come from its own min/max, so columns are
    # independent subproblems with no whole-matrix spelling that keeps
    # the linspace edges bit-identical; the per-column histogram over
    # (bin, class) cells is a single bincount instead of the former
    # n_bins × 2 boolean-mask passes.  A bool-mask ``.mean()`` is an
    # exact integer count divided by n, so ``count / n_samples`` below
    # reproduces the old probabilities bit for bit.
    # repro: disable=P301 -- per-column linspace edges make columns independent subproblems; the inner histogram is vectorized via bincount
    for j in range(X.shape[1]):
        column = X[:, j]
        lo, hi = column.min(), column.max()
        if lo == hi:
            continue
        bins = np.linspace(lo, hi, n_bins + 1)
        codes = np.clip(np.digitize(column, bins[1:-1]), 0, n_bins - 1)
        joint = np.bincount(codes * 2 + y01, minlength=2 * n_bins)
        mi = 0.0
        for b in range(n_bins):
            count_bin = joint[2 * b] + joint[2 * b + 1]
            if count_bin == 0:
                continue
            p_bin = count_bin / n_samples
            for c in (0, 1):
                p_joint = joint[2 * b + c] / n_samples
                if p_joint > 0.0 and class_prob[c] > 0.0:
                    mi += p_joint * np.log(p_joint / (p_bin * class_prob[c]))
        scores[j] = max(mi, 0.0)
    return scores


def fisher_score(X, y) -> np.ndarray:
    """Fisher score: between-class variance over within-class variance."""
    X, y = check_X_y(X, y)
    classes = np.unique(y)
    overall_mean = X.mean(axis=0)
    numerator = np.zeros(X.shape[1])
    denominator = np.zeros(X.shape[1])
    for c in classes:
        Xc = X[y == c]
        n_c = Xc.shape[0]
        numerator += n_c * (Xc.mean(axis=0) - overall_mean) ** 2
        denominator += n_c * Xc.var(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        scores = numerator / denominator
    scores[~np.isfinite(scores)] = 0.0
    return scores


def count_score(X, y) -> np.ndarray:
    """Count-based score: number of distinct non-zero values per feature.

    Azure's "Count" feature scorer ranks features by how much signal they
    carry at all; constant and near-constant columns score lowest.
    """
    X, y = check_X_y(X, y)
    scores = np.empty(X.shape[1])
    # The "vectorized" spelling (np.sort(X, axis=0) + np.diff) measured
    # ~2x slower at every bench scale: the axis-0 sort and the diff
    # temporaries cost more than the Python loop saves.
    # repro: disable=P301 -- measured slower vectorized; per-column np.unique wins at every bench scale
    for j in range(X.shape[1]):
        scores[j] = len(np.unique(X[:, j]))
    return scores


def f_classif_score(X, y) -> np.ndarray:
    """One-way ANOVA F-statistic per feature (sklearn's f_classif)."""
    X, y = check_X_y(X, y)
    classes = np.unique(y)
    n_samples = X.shape[0]
    overall_mean = X.mean(axis=0)
    ss_between = np.zeros(X.shape[1])
    ss_within = np.zeros(X.shape[1])
    for c in classes:
        Xc = X[y == c]
        n_c = Xc.shape[0]
        class_mean = Xc.mean(axis=0)
        ss_between += n_c * (class_mean - overall_mean) ** 2
        ss_within += ((Xc - class_mean) ** 2).sum(axis=0)
    df_between = len(classes) - 1
    df_within = n_samples - len(classes)
    if df_between <= 0 or df_within <= 0:
        return np.zeros(X.shape[1])
    with np.errstate(invalid="ignore", divide="ignore"):
        f_stat = (ss_between / df_between) / (ss_within / df_within)
    f_stat[~np.isfinite(f_stat)] = 0.0
    return f_stat
