"""SelectKBest-style feature selector over the filter scorers."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, TransformerMixin, check_is_fitted
from repro.learn.feature_selection.filters import (
    chi2_score,
    count_score,
    f_classif_score,
    fisher_score,
    kendall_score,
    mutual_info_score,
    pearson_score,
    spearman_score,
)
from repro.learn.validation import check_array, check_X_y

__all__ = ["SelectKBest", "FILTER_SCORERS"]

#: Registry mapping scorer names (as they appear in Table 1) to functions.
FILTER_SCORERS: dict[str, Callable] = {
    "pearson": pearson_score,
    "spearman": spearman_score,
    "kendall": kendall_score,
    "chi2": chi2_score,
    "mutual_info": mutual_info_score,
    "fisher": fisher_score,
    "count": count_score,
    "f_classif": f_classif_score,
}


class SelectKBest(BaseEstimator, TransformerMixin):
    """Keep the ``k`` features with the highest filter score.

    Parameters
    ----------
    scorer : str
        Name of a filter from :data:`FILTER_SCORERS`.
    k : int or "all" or float
        Number of features to keep.  ``"all"`` keeps everything; a float in
        (0, 1] keeps that fraction (at least one feature).
    """

    def __init__(self, scorer: str = "f_classif", k="all"):
        self.scorer = scorer
        self.k = k

    def _resolve_k(self, n_features: int) -> int:
        if self.k == "all":
            return n_features
        if isinstance(self.k, float):
            if not 0.0 < self.k <= 1.0:
                raise ValidationError(f"fractional k must be in (0, 1], got {self.k}")
            return max(1, int(round(self.k * n_features)))
        k = int(self.k)
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        return min(k, n_features)

    def fit(self, X, y) -> "SelectKBest":
        X, y = check_X_y(X, y)
        if self.scorer not in FILTER_SCORERS:
            raise ValidationError(
                f"unknown scorer {self.scorer!r}; "
                f"choose from {sorted(FILTER_SCORERS)}"
            )
        self.scores_ = FILTER_SCORERS[self.scorer](X, y)
        k = self._resolve_k(X.shape[1])
        # Stable selection: break score ties by original feature index.
        order = np.argsort(-self.scores_, kind="stable")
        self.support_ = np.zeros(X.shape[1], dtype=bool)
        self.support_[order[:k]] = True
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "support_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"selector was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        return X[:, self.support_]

    def selected_indices(self) -> np.ndarray:
        """Return the indices of the kept features, in original order."""
        check_is_fitted(self, "support_")
        return np.flatnonzero(self.support_)
