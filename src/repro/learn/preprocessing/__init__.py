"""Data transformation step of the ML pipeline (Figure 1, "Preprocessing").

The paper notes Microsoft is the only MLaaS platform exposing data
transformation; the local library (this package standing in for
scikit-learn) exposes all of it: Gaussian/standard scaling, min-max and
max-abs scaling, L1/L2 row normalization, median imputation and ordinal
encoding of categorical features.
"""

from repro.learn.preprocessing.binning import QuantileBinningTransform
from repro.learn.preprocessing.encoding import OrdinalEncoder
from repro.learn.preprocessing.imputation import MedianImputer
from repro.learn.preprocessing.scalers import (
    IdentityTransform,
    L1Normalizer,
    L2Normalizer,
    MaxAbsScaler,
    MinMaxScaler,
    StandardScaler,
)

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "MaxAbsScaler",
    "L1Normalizer",
    "L2Normalizer",
    "IdentityTransform",
    "MedianImputer",
    "OrdinalEncoder",
    "QuantileBinningTransform",
]
