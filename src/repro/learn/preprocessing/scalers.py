"""Feature scaling and row normalization transformers.

These are the data-transformation choices listed for scikit-learn in
Table 1 of the paper: GaussianNorm/StandardScaler, MinMaxScaler,
MaxAbsScaler, and L1/L2 normalization.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import BaseEstimator, TransformerMixin, check_is_fitted
from repro.learn.validation import check_array

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "MaxAbsScaler",
    "L1Normalizer",
    "L2Normalizer",
    "IdentityTransform",
]


class StandardScaler(BaseEstimator, TransformerMixin):
    """Scale features to zero mean and unit variance (GaussianNorm).

    Constant features (zero variance) are centred but left unscaled to
    avoid division by zero, matching standard library behaviour.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_array(X)
        constant = X.max(axis=0) == X.min(axis=0)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_mean:
            # Use the exact value for constant columns so centering yields
            # exactly zero even for denormal inputs where the computed mean
            # carries rounding residue.
            self.mean_[constant] = X[0, constant]
        if self.with_std:
            std = X.std(axis=0)
            std[(std == 0.0) | constant] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "mean_")
        X = check_array(X)
        return (X - self.mean_) / self.scale_


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale each feature into ``feature_range`` (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = check_array(X)
        low, high = self.feature_range
        if low >= high:
            raise ValueError(f"invalid feature_range {self.feature_range}")
        self.data_min_ = X.min(axis=0)
        data_range = X.max(axis=0) - self.data_min_
        # Ranges below the smallest normal float would overflow 1/range.
        data_range[data_range < np.finfo(np.float64).tiny] = 1.0
        self.scale_ = (high - low) / data_range
        self.min_ = low - self.data_min_ * self.scale_
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X)
        return X * self.scale_ + self.min_


class MaxAbsScaler(BaseEstimator, TransformerMixin):
    """Scale each feature by its maximum absolute value into [-1, 1]."""

    def fit(self, X, y=None) -> "MaxAbsScaler":
        X = check_array(X)
        max_abs = np.abs(X).max(axis=0)
        max_abs[max_abs == 0.0] = 1.0
        self.scale_ = max_abs
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = check_array(X)
        return X / self.scale_


class _RowNormalizer(BaseEstimator, TransformerMixin):
    """Shared implementation for Lp row normalization."""

    _order: float = 2.0

    def fit(self, X, y=None) -> "_RowNormalizer":
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "n_features_in_")
        X = check_array(X)
        # Normalization is scale-invariant, so divide each row by its peak
        # magnitude first: raising subnormal-range entries to a power would
        # otherwise underflow and let x/||x|| land slightly above 1.
        peak = np.max(np.abs(X), axis=1)
        peak[peak == 0.0] = 1.0
        X = X / peak[:, None]
        norms = np.linalg.norm(X, ord=self._order, axis=1)
        norms[norms == 0.0] = 1.0
        return X / norms[:, None]


class L1Normalizer(_RowNormalizer):
    """Scale each sample to unit L1 norm."""

    _order = 1.0


class L2Normalizer(_RowNormalizer):
    """Scale each sample to unit L2 norm."""

    _order = 2.0


class IdentityTransform(BaseEstimator, TransformerMixin):
    """No-op transformer, used as the 'no preprocessing' baseline choice."""

    def fit(self, X, y=None) -> "IdentityTransform":
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "n_features_in_")
        return check_array(X)
