"""Quantile binning with one-hot expansion.

Amazon ML's data "recipes" apply quantile binning to numeric features,
letting its Logistic Regression learn additive piecewise-constant
functions of each feature — a *non-linear* decision surface despite the
linear classifier.  Section 6.2 of the paper observes exactly this:
Amazon claims Logistic Regression yet produces a non-linear boundary on
the CIRCLE dataset (Fig 13).  This transform is how our Amazon simulator
reproduces that behavior.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, TransformerMixin, check_is_fitted
from repro.learn.validation import check_array

__all__ = ["QuantileBinningTransform"]


class QuantileBinningTransform(BaseEstimator, TransformerMixin):
    """One-hot encode each feature's quantile bin.

    Parameters
    ----------
    n_bins : int
        Number of quantile bins per feature.  Output dimensionality is
        ``n_features * n_bins``.
    """

    def __init__(self, n_bins: int = 10):
        self.n_bins = n_bins

    def fit(self, X, y=None) -> "QuantileBinningTransform":
        X = check_array(X)
        if self.n_bins < 2:
            raise ValidationError(f"n_bins must be >= 2, got {self.n_bins}")
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        self.bin_edges_ = [
            np.unique(np.quantile(X[:, j], quantiles)) for j in range(X.shape[1])
        ]
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "bin_edges_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"binner was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        blocks = []
        for j, edges in enumerate(self.bin_edges_):
            codes = np.digitize(X[:, j], edges)
            width = len(edges) + 1
            block = np.zeros((X.shape[0], width))
            block[np.arange(X.shape[0]), codes] = 1.0
            blocks.append(block)
        return np.hstack(blocks)
