"""Missing-value imputation.

The paper replaces missing fields with the median of the corresponding
feature before uploading datasets to any platform (§3.1), because none of
the MLaaS platforms performs data cleaning.  :class:`MedianImputer`
implements exactly that step; a mean strategy is included for the ablation
called out in DESIGN.md.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, TransformerMixin, check_is_fitted
from repro.learn.validation import check_array

__all__ = ["MedianImputer"]


class MedianImputer(BaseEstimator, TransformerMixin):
    """Replace NaN entries with a per-feature statistic.

    Parameters
    ----------
    strategy : {"median", "mean"}
        Statistic computed over the non-missing values of each feature.
        The paper uses the median.
    """

    def __init__(self, strategy: str = "median"):
        self.strategy = strategy

    def fit(self, X, y=None) -> "MedianImputer":
        X = check_array(X, allow_nan=True)
        if self.strategy not in ("median", "mean"):
            raise ValidationError(f"unknown imputation strategy {self.strategy!r}")
        with warnings.catch_warnings():
            # An all-NaN feature is handled explicitly below.
            warnings.simplefilter("ignore", RuntimeWarning)
            if self.strategy == "median":
                fill = np.nanmedian(X, axis=0)
            else:
                fill = np.nanmean(X, axis=0)
        # A feature that is entirely missing has no defined statistic;
        # fall back to zero so downstream classifiers see a constant column.
        fill = np.where(np.isnan(fill), 0.0, fill)
        self.fill_values_ = fill
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "fill_values_")
        X = check_array(X, allow_nan=True)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"imputer was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        X = X.copy()
        missing = np.isnan(X)
        if missing.any():
            X[missing] = np.broadcast_to(self.fill_values_, X.shape)[missing]
        return X
