"""Categorical feature encoding.

Following the paper's convention (§3.1, citing Fernández-Delgado et al.),
categorical features ``{C1, ..., CN}`` are mapped to integers ``{1, ..., N}``
before upload.  The encoder works on object arrays mixing strings and
numbers; numeric columns pass through unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, TransformerMixin, check_is_fitted
from repro.learn.validation import check_array

__all__ = ["OrdinalEncoder"]


def _is_numeric_column(column: np.ndarray) -> bool:
    """True when every non-missing entry converts cleanly to float."""
    for value in column:
        if value is None:
            continue
        if isinstance(value, float) and np.isnan(value):
            continue
        try:
            float(value)
        except (TypeError, ValueError):
            return False
    return True


class OrdinalEncoder(BaseEstimator, TransformerMixin):
    """Map categorical columns to 1-based integer codes.

    Missing entries (``None`` or NaN) are emitted as NaN so that
    :class:`~repro.learn.preprocessing.MedianImputer` can handle them in the
    same way as numeric missing values.  Unseen categories at transform
    time receive the code ``N + 1`` (one past the largest training code),
    mirroring the "just map it to a new integer" treatment of the paper's
    preprocessing script.
    """

    def fit(self, X, y=None) -> "OrdinalEncoder":
        # dtype=object keeps mixed string/number columns intact; missing
        # entries are legitimate here (the imputer runs downstream).
        X = check_array(X, dtype=object)
        self.categories_: list[dict | None] = []
        for j in range(X.shape[1]):
            column = X[:, j]
            if _is_numeric_column(column):
                self.categories_.append(None)
            else:
                seen = sorted(
                    {str(v) for v in column if not self._is_missing(v)}
                )
                self.categories_.append({c: i + 1 for i, c in enumerate(seen)})
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "categories_")
        X = self._as_object_matrix(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"encoder was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        out = np.empty(X.shape, dtype=np.float64)
        for j, mapping in enumerate(self.categories_):
            column = X[:, j]
            if mapping is None:
                out[:, j] = [
                    np.nan if self._is_missing(v) else float(v) for v in column
                ]
            else:
                unseen_code = len(mapping) + 1
                out[:, j] = [
                    np.nan
                    if self._is_missing(v)
                    else mapping.get(str(v), unseen_code)
                    for v in column
                ]
        return out

    @staticmethod
    def _is_missing(value) -> bool:
        if value is None:
            return True
        return isinstance(value, float) and np.isnan(value)

    @staticmethod
    def _as_object_matrix(X) -> np.ndarray:
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.ndim != 2:
            raise ValidationError(f"expected 2-D input, got shape {X.shape}")
        return X
