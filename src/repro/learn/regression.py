"""Regression estimators and metrics.

Binary classification and regression are the two learning tasks the paper
notes are "commonly supported by all 6 ML platforms" (§3); the paper
studies only classification.  This module provides the regression half of
the substrate so the same measurement methodology can be extended to it:
ordinary least squares / ridge regression, a CART regression tree, and
kNN regression, plus the standard regression metrics.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learn.base import BaseEstimator, check_is_fitted
from repro.learn.tree.cart import TreeNode
from repro.learn.validation import check_array, check_random_state, check_X_y

__all__ = [
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "LinearRegression",
    "DecisionTreeRegressor",
    "KNeighborsRegressor",
]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def _align(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValidationError(
            f"length mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValidationError("cannot score empty arrays")
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    y_true, y_pred = _align(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of absolute residuals."""
    y_true, y_pred = _align(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 matches the mean."""
    y_true, y_pred = _align(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


class _RegressorMixin:
    """Mixin adding an R^2 :meth:`score` for regressors."""

    _estimator_kind = "regressor"

    def score(self, X, y) -> float:
        return r2_score(y, self.predict(X))


# ---------------------------------------------------------------------------
# Linear regression (OLS / ridge)
# ---------------------------------------------------------------------------

class LinearRegression(BaseEstimator, _RegressorMixin):
    """Least-squares linear regression with optional L2 (ridge) penalty.

    Parameters
    ----------
    alpha : float
        Ridge strength; 0 gives plain OLS (solved by lstsq).
    fit_intercept : bool
        Learn an unpenalized additive bias.
    """

    def __init__(self, alpha: float = 0.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_X_y(X, y, min_samples=2)
        y = y.astype(np.float64)
        if self.alpha < 0:
            raise ValidationError("alpha must be non-negative")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        if self.alpha == 0.0:
            coef, *_ = np.linalg.lstsq(Xc, yc, rcond=None)
        else:
            gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
            coef = np.linalg.solve(gram, Xc.T @ yc)
        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_


# ---------------------------------------------------------------------------
# CART regression tree
# ---------------------------------------------------------------------------

class DecisionTreeRegressor(BaseEstimator, _RegressorMixin):
    """Variance-reduction CART tree predicting leaf means.

    Parameters
    ----------
    max_depth : int or None
        Depth cap.
    min_samples_leaf : int
        Minimum samples per leaf.
    max_features : None, "sqrt", or int
        Features examined per split.
    random_state : int, Generator, or None
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state=None,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y, min_samples=2)
        y = y.astype(np.float64)
        if self.min_samples_leaf < 1:
            raise ValidationError("min_samples_leaf must be >= 1")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValidationError("max_depth must be >= 1")
        self._rng = check_random_state(self.random_state)
        self.tree_ = self._grow(X, y, depth=0)
        self.n_features_in_ = X.shape[1]
        return self

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(n_features)
        if self.max_features == "sqrt":
            count = max(1, int(np.sqrt(n_features)))
        else:
            count = min(int(self.max_features), n_features)
        return self._rng.choice(n_features, size=count, replace=False)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(
            positive_fraction=float(y.mean()),  # reused as the leaf value
            n_samples=y.shape[0],
            depth=depth,
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y.shape[0] < 2 * self.min_samples_leaf
            or np.all(y == y[0])
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        goes_left = X[:, feature] <= threshold
        if not goes_left.any() or goes_left.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[goes_left], y[goes_left], depth + 1)
        node.right = self._grow(X[~goes_left], y[~goes_left], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n_samples = X.shape[0]
        total_sum = y.sum()
        best = None
        best_score = -np.inf
        for feature in self._candidate_features(X.shape[1]):
            order = np.argsort(X[:, feature], kind="stable")
            sorted_values = X[order, feature]
            sorted_y = y[order]
            distinct = sorted_values[1:] != sorted_values[:-1]
            if not distinct.any():
                continue
            positions = np.flatnonzero(distinct) + 1
            positions = positions[
                (positions >= self.min_samples_leaf)
                & (positions <= n_samples - self.min_samples_leaf)
            ]
            if positions.size == 0:
                continue
            cumulative = np.cumsum(sorted_y)
            left_sum = cumulative[positions - 1]
            right_sum = total_sum - left_sum
            left_n = positions.astype(np.float64)
            right_n = n_samples - left_n
            scores = left_sum**2 / left_n + right_sum**2 / right_n
            local = int(np.argmax(scores))
            if scores[local] > best_score:
                split_at = positions[local]
                threshold = 0.5 * (sorted_values[split_at - 1] + sorted_values[split_at])
                if threshold >= sorted_values[split_at]:
                    threshold = sorted_values[split_at - 1]
                best_score = float(scores[local])
                best = (int(feature), float(threshold))
        return best

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        values = np.empty(X.shape[0])
        stack = [(self.tree_, np.arange(X.shape[0]))]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                values[indices] = node.positive_fraction
                continue
            goes_left = X[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[goes_left]))
            stack.append((node.right, indices[~goes_left]))
        return values


# ---------------------------------------------------------------------------
# kNN regression
# ---------------------------------------------------------------------------

class KNeighborsRegressor(BaseEstimator, _RegressorMixin):
    """Brute-force kNN regression (mean of neighbor targets).

    Parameters
    ----------
    n_neighbors : int
        Neighbors averaged per query.
    weights : {"uniform", "distance"}
        Averaging weights.
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsRegressor":
        X, y = check_X_y(X, y)
        if self.n_neighbors < 1:
            raise ValidationError("n_neighbors must be >= 1")
        if self.weights not in ("uniform", "distance"):
            raise ValidationError(f"unknown weights {self.weights!r}")
        self._fit_X = X
        self._fit_y = y.astype(np.float64)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "_fit_X")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValidationError(
                f"model was fitted on {self.n_features_in_} features, "
                f"got {X.shape[1]}"
            )
        k = min(self.n_neighbors, self._fit_X.shape[0])
        predictions = np.empty(X.shape[0])
        for start in range(0, X.shape[0], 256):
            block = X[start : start + 256]
            diff = block[:, None, :] - self._fit_X[None, :, :]
            distances = np.sqrt((diff**2).sum(axis=2))
            neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            rows = np.arange(block.shape[0])[:, None]
            neighbor_y = self._fit_y[neighbor_idx]
            if self.weights == "uniform":
                predictions[start : start + block.shape[0]] = neighbor_y.mean(axis=1)
            else:
                neighbor_dist = distances[rows, neighbor_idx]
                exact = neighbor_dist == 0.0
                weights = np.where(
                    exact, 0.0, 1.0 / np.where(exact, 1.0, neighbor_dist)
                )
                has_exact = exact.any(axis=1)
                weights[has_exact] = exact[has_exact].astype(np.float64)
                sums = weights.sum(axis=1)
                sums[sums == 0.0] = 1.0
                predictions[start : start + block.shape[0]] = (
                    (weights * neighbor_y).sum(axis=1) / sums
                )
        return predictions
