"""Reproduction of "Complexity vs. Performance: Empirical Analysis of
Machine Learning as a Service" (Yao et al., IMC 2017).

Subpackages
-----------
``repro.learn``
    From-scratch ML library (classifiers, feature selection, metrics,
    model selection) standing in for scikit-learn.
``repro.datasets``
    Deterministic 119-dataset corpus matching the paper's Figure 3
    characteristics, including the CIRCLE and LINEAR probe datasets.
``repro.platforms``
    Simulators of the six MLaaS platforms (ABM, Google, Amazon,
    PredictionIO, BigML, Microsoft) plus the fully-tunable local library,
    each exposing exactly the Table 1 control surface.
``repro.core``
    Measurement harness: control dimensions, configuration-space
    enumeration, experiment runner and study orchestration.
``repro.analysis``
    Statistical analysis reproducing every table and figure: Friedman
    ranking, per-control improvement, performance variation, k-classifier
    subsets, decision-boundary probing, classifier-family inference and
    the naive selection strategy.
"""

from repro.exceptions import (
    ConvergenceWarning,
    DeadlineExceededError,
    JobFailedError,
    NotFittedError,
    PayloadTooLargeError,
    PlatformError,
    QuotaExceededError,
    ReproError,
    ResourceNotFoundError,
    UnsupportedControlError,
    ValidationError,
)

__all__ = [
    "ConvergenceWarning",
    "DeadlineExceededError",
    "JobFailedError",
    "NotFittedError",
    "PayloadTooLargeError",
    "PlatformError",
    "QuotaExceededError",
    "ReproError",
    "ResourceNotFoundError",
    "UnsupportedControlError",
    "ValidationError",
    "__version__",
]

__version__ = "1.0.0"
