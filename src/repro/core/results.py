"""Experiment result records and the result store.

Every (platform, dataset, configuration) measurement produces an
:class:`ExperimentResult` holding the four paper metrics.  A
:class:`ResultStore` collects them with the query shapes the analysis
package needs (per-platform, per-dataset, per-control) and round-trips to
JSON so long sweeps can be checkpointed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.controls import Configuration
from repro.learn.metrics import MetricSummary

__all__ = ["ExperimentResult", "ResultStore"]


@dataclass(frozen=True)
class ExperimentResult:
    """One measurement: a configuration evaluated on one dataset."""

    platform: str
    dataset: str
    configuration: Configuration
    metrics: MetricSummary
    status: str = "ok"           # "ok" or "failed"
    failure_reason: str | None = None
    metadata: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def f_score(self) -> float:
        return self.metrics.f_score

    def to_dict(self) -> dict:
        """JSON-serializable representation of this result."""
        return {
            "platform": self.platform,
            "dataset": self.dataset,
            "classifier": self.configuration.classifier,
            "params": list(self.configuration.params),
            "feature_selection": self.configuration.feature_selection,
            "tuned": sorted(self.configuration.tuned),
            "metrics": self.metrics.as_dict(),
            "status": self.status,
            "failure_reason": self.failure_reason,
        }

    @staticmethod
    def from_dict(data: dict) -> "ExperimentResult":
        configuration = Configuration.make(
            classifier=data["classifier"],
            params={name: value for name, value in data["params"]},
            feature_selection=data["feature_selection"],
            tuned=data["tuned"],
        )
        metrics = MetricSummary(**data["metrics"])
        return ExperimentResult(
            platform=data["platform"],
            dataset=data["dataset"],
            configuration=configuration,
            metrics=metrics,
            status=data.get("status", "ok"),
            failure_reason=data.get("failure_reason"),
        )


class ResultStore:
    """Append-only collection of experiment results with query helpers."""

    def __init__(self, results: Iterable[ExperimentResult] = ()):
        self._results: list[ExperimentResult] = list(results)

    def add(self, result: ExperimentResult) -> None:
        """Append one result."""
        self._results.append(result)

    def extend(self, results: Iterable[ExperimentResult]) -> None:
        """Append many results."""
        self._results.extend(results)

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[ExperimentResult]:
        return iter(self._results)

    # -- queries ---------------------------------------------------------

    def ok(self) -> "ResultStore":
        """Successful measurements only."""
        return ResultStore(r for r in self._results if r.ok)

    def where(self, predicate: Callable[[ExperimentResult], bool]) -> "ResultStore":
        """Results satisfying an arbitrary predicate."""
        return ResultStore(r for r in self._results if predicate(r))

    def for_platform(self, platform: str) -> "ResultStore":
        """Results belonging to one platform."""
        return self.where(lambda r: r.platform == platform)

    def for_dataset(self, dataset: str) -> "ResultStore":
        """Results belonging to one dataset."""
        return self.where(lambda r: r.dataset == dataset)

    def platforms(self) -> list[str]:
        """Sorted platform names present in the store."""
        return sorted({r.platform for r in self._results})

    def datasets(self) -> list[str]:
        """Sorted dataset names present in the store."""
        return sorted({r.dataset for r in self._results})

    def best_per_dataset(self, metric: str = "f_score") -> dict[str, ExperimentResult]:
        """Best successful result per dataset by the given metric."""
        best: dict[str, ExperimentResult] = {}
        for result in self._results:
            if not result.ok:
                continue
            value = getattr(result.metrics, metric)
            current = best.get(result.dataset)
            if current is None or value > getattr(current.metrics, metric):
                best[result.dataset] = result
        return best

    def scores_by_dataset(self, metric: str = "f_score") -> dict[str, list[float]]:
        """All successful scores grouped by dataset."""
        grouped: dict[str, list[float]] = {}
        for result in self._results:
            if result.ok:
                grouped.setdefault(result.dataset, []).append(
                    getattr(result.metrics, metric)
                )
        return grouped

    def mean_score(self, metric: str = "f_score") -> float:
        """Mean of per-dataset *best* scores — the paper's 'optimized'
        aggregation (§4.1): pick the best configuration per dataset, then
        average across datasets."""
        best = self.best_per_dataset(metric)
        if not best:
            return float("nan")
        return float(np.mean([
            getattr(result.metrics, metric) for result in best.values()
        ]))

    # -- persistence ------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the store to a JSON file (see :meth:`load`), atomically.

        The payload is serialized first, written to a ``<name>.tmp``
        sibling, and moved over the destination with :func:`os.replace`
        (atomic within a filesystem).  A checkpoint writer killed at any
        instant therefore leaves either the previous complete checkpoint
        or the new one — never a truncated file that would poison a
        campaign resume.
        """
        path = Path(path)
        rendered = json.dumps(
            [result.to_dict() for result in self._results],
            indent=1, default=str,
        )
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(rendered)
        os.replace(tmp, path)

    @staticmethod
    def load(path: str | Path) -> "ResultStore":
        payload = json.loads(Path(path).read_text())
        return ResultStore(ExperimentResult.from_dict(item) for item in payload)
