"""Configuration-space enumeration per platform (paper §3.2, Table 2).

The paper's protocol:

* *baseline* — Logistic Regression with platform-default parameters and
  no feature selection (the zero-control reference).
* *full sweep* — every combination of FEAT x CLF x PARA the platform
  exposes.  PARA grids follow the paper: all options for categorical
  parameters, and the ``D/100, D, 100*D`` scan for numeric ones.
* *per-control sweeps* — vary exactly one dimension, others at baseline
  (Figures 5 and 7).

Full Cartesian PARA grids explode on Microsoft (the paper ran 1.7M
measurements); ``para_grid="single_axis"`` varies one parameter at a time
around the defaults, which preserves each parameter's marginal effect at
a fraction of the cost and is the default for benches.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.controls import CLF, FEAT, PARA, Configuration
from repro.exceptions import ValidationError
from repro.platforms.base import ClassifierOption, MLaaSPlatform

__all__ = [
    "baseline_configuration",
    "enumerate_configurations",
    "per_control_configurations",
    "count_measurements",
]


def baseline_configuration(platform: MLaaSPlatform) -> Configuration:
    """The platform's zero-control baseline (§3.2).

    Logistic Regression with default parameters where CLF is exposed
    (LR is the one classifier all such platforms support), the fully
    automatic mode on black-box platforms.
    """
    surface = platform.controls
    if not surface.classifiers:
        return Configuration.make()
    option = surface.classifier("LR")
    return Configuration.make(classifier="LR", params=option.default_params())


def _param_grids(option: ClassifierOption, para_grid: str) -> list[dict]:
    if para_grid == "full":
        return option.parameter_grid()
    if para_grid == "single_axis":
        return option.single_axis_grid()
    if para_grid == "default":
        return [option.default_params()]
    raise ValidationError(
        f"unknown para_grid {para_grid!r}; "
        f"use 'full', 'single_axis' or 'default'"
    )


def _feature_choices(platform: MLaaSPlatform, include: bool) -> list:
    choices: list = [None]
    if include and platform.controls.feature_selectors:
        choices.extend(platform.controls.feature_selectors)
    return choices


def enumerate_configurations(
    platform: MLaaSPlatform,
    para_grid: str = "single_axis",
    include_feat: bool = True,
) -> Iterator[Configuration]:
    """Yield the platform's configuration space.

    Black-box platforms yield exactly one (empty) configuration.
    """
    surface = platform.controls
    if not surface.classifiers:
        yield Configuration.make()
        return
    baseline = baseline_configuration(platform)
    for feature_selection in _feature_choices(platform, include_feat):
        for option in surface.classifiers:
            grids = (
                _param_grids(option, para_grid)
                if surface.supports_parameter_tuning
                else [option.default_params()]
            )
            for params in grids:
                tuned = set()
                if feature_selection is not None:
                    tuned.add(FEAT)
                if option.abbr != baseline.classifier:
                    tuned.add(CLF)
                if params != option.default_params():
                    tuned.add(PARA)
                yield Configuration.make(
                    classifier=option.abbr,
                    params=params,
                    feature_selection=feature_selection,
                    tuned=tuned,
                )


def per_control_configurations(
    platform: MLaaSPlatform,
    dimension: str,
    para_grid: str = "single_axis",
) -> list[Configuration]:
    """Configurations tuning exactly one dimension (others at baseline).

    Used for the per-control improvement (Fig 5) and per-control
    variation (Fig 7) analyses.  Returns an empty list when the platform
    does not expose the dimension.
    """
    surface = platform.controls
    baseline = baseline_configuration(platform)
    configurations: list[Configuration] = []
    if dimension == FEAT:
        for feature_selection in surface.feature_selectors:
            configurations.append(Configuration.make(
                classifier=baseline.classifier,
                params=baseline.params_dict,
                feature_selection=feature_selection,
                tuned={FEAT},
            ))
    elif dimension == CLF:
        if len(surface.classifiers) > 1:
            for option in surface.classifiers:
                configurations.append(Configuration.make(
                    classifier=option.abbr,
                    params=option.default_params(),
                    tuned={CLF} if option.abbr != baseline.classifier else set(),
                ))
    elif dimension == PARA:
        if surface.supports_parameter_tuning and surface.classifiers:
            option = surface.classifier(baseline.classifier)
            for params in _param_grids(option, para_grid):
                configurations.append(Configuration.make(
                    classifier=baseline.classifier,
                    params=params,
                    tuned={PARA} if params != option.default_params() else set(),
                ))
    else:
        raise ValidationError(
            f"unknown control dimension {dimension!r}; use FEAT, CLF or PARA"
        )
    return configurations


def count_measurements(
    platform: MLaaSPlatform,
    n_datasets: int = 119,
    para_grid: str = "full",
) -> dict:
    """Reproduce a Table 2 row: control-space sizes and total measurements.

    With ``para_grid="full"`` the count is the full Cartesian product the
    paper enumerates; the default Table 2 reproduction uses it.
    """
    surface = platform.controls
    n_feature_selectors = len(surface.feature_selectors)
    n_classifiers = max(1, len(surface.classifiers))
    n_parameters = sum(
        len(option.parameters) for option in surface.classifiers
    ) if surface.supports_parameter_tuning else 0
    total_configs = sum(
        1 for _ in enumerate_configurations(platform, para_grid=para_grid)
    )
    return {
        "platform": platform.name,
        "n_feature_selectors": n_feature_selectors,
        "n_classifiers": n_classifiers,
        "n_parameters": n_parameters,
        "configs_per_dataset": total_configs,
        "total_measurements": total_configs * n_datasets,
    }
