"""repro.core — the measurement harness.

Encodes the paper's methodology (§3): control dimensions FEAT / CLF /
PARA, configuration-space enumeration per platform (Table 1/2), the
experiment runner that drives each platform's service API, and the study
orchestration producing baseline / optimized / per-control results.
"""

from repro.core.config_space import (
    baseline_configuration,
    count_measurements,
    enumerate_configurations,
    per_control_configurations,
)
from repro.core.controls import CLF, FEAT, PARA, Configuration
from repro.core.results import ExperimentResult, ResultStore
from repro.core.runner import ExperimentRunner
from repro.core.study import MLaaSStudy, StudyScale

__all__ = [
    "FEAT",
    "CLF",
    "PARA",
    "Configuration",
    "baseline_configuration",
    "enumerate_configurations",
    "per_control_configurations",
    "count_measurements",
    "ExperimentResult",
    "ResultStore",
    "ExperimentRunner",
    "MLaaSStudy",
    "StudyScale",
]
