"""Experiment runner driving platform service APIs.

For each (platform, dataset, configuration) the runner performs exactly
the measurement sequence of the paper's scripts: upload the training
split, request a model with the configuration's controls, wait for the
job, run a batch prediction on the held-out test split, and score it
(§3.2).  Failed jobs are recorded as failed measurements rather than
aborting the sweep — as with a real service, some configurations simply
do not train on some datasets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.controls import Configuration
from repro.core.results import ExperimentResult, ResultStore
from repro.datasets.corpus import Dataset, SplitDataset
from repro.exceptions import PlatformError
from repro.learn.metrics import MetricSummary, classification_summary
from repro.platforms.base import JobState, MLaaSPlatform

__all__ = ["ExperimentRunner"]

_FAILED_METRICS = MetricSummary(f_score=0.0, accuracy=0.0, precision=0.0, recall=0.0)


class ExperimentRunner:
    """Stateless executor of measurements against platform instances.

    Parameters
    ----------
    test_size : float
        Held-out fraction (paper: 0.3).
    split_seed : int
        Seed of the per-dataset train/test split.  The same split is used
        for every platform and configuration, matching the paper ("We
        train classifiers on each MLaaS platform using the same training
        and held-out test set").
    """

    def __init__(self, test_size: float = 0.3, split_seed: int = 7):
        self.test_size = test_size
        self.split_seed = split_seed
        self._split_cache: dict[str, SplitDataset] = {}

    def split(self, dataset: Dataset) -> SplitDataset:
        """The canonical 70/30 split for a dataset (cached)."""
        cached = self._split_cache.get(dataset.name)
        if cached is None:
            cached = dataset.split(
                test_size=self.test_size, random_state=self.split_seed
            )
            self._split_cache[dataset.name] = cached
        return cached

    def run_one(
        self,
        platform: MLaaSPlatform,
        dataset: Dataset,
        configuration: Configuration,
        split: SplitDataset | None = None,
    ) -> ExperimentResult:
        """Run a single measurement and return its result record."""
        split = split or self.split(dataset)
        try:
            dataset_id = platform.upload_dataset(
                split.X_train, split.y_train, name=dataset.name
            )
            model_id = platform.create_model(
                dataset_id,
                classifier=configuration.classifier,
                params=configuration.params_dict or None,
                feature_selection=configuration.feature_selection,
            )
            handle = platform.get_model(model_id)
            if handle.state is JobState.FAILED:
                return ExperimentResult(
                    platform=platform.name,
                    dataset=dataset.name,
                    configuration=configuration,
                    metrics=_FAILED_METRICS,
                    status="failed",
                    failure_reason=str(handle.failure_reason),
                )
            predictions = platform.batch_predict(model_id, split.X_test)
            metrics = classification_summary(split.y_test, predictions)
            metadata = dict(handle.metadata)
            metadata["n_predictions"] = int(len(predictions))
            # Free server-side resources, as a quota-conscious script would.
            platform.delete_dataset(dataset_id)
            return ExperimentResult(
                platform=platform.name,
                dataset=dataset.name,
                configuration=configuration,
                metrics=metrics,
                metadata=metadata,
            )
        except PlatformError as exc:
            return ExperimentResult(
                platform=platform.name,
                dataset=dataset.name,
                configuration=configuration,
                metrics=_FAILED_METRICS,
                status="failed",
                failure_reason=str(exc),
            )

    def sweep(
        self,
        platform: MLaaSPlatform,
        datasets: Sequence[Dataset],
        configurations: Iterable[Configuration],
        resume_from: ResultStore | None = None,
        checkpoint_path=None,
        checkpoint_every: int = 200,
    ) -> ResultStore:
        """Run every configuration on every dataset.

        Parameters
        ----------
        resume_from : ResultStore or None
            Previously collected results; measurements already present
            (same platform, dataset, configuration) are skipped — this is
            how a paper-scale sweep survives interruption.
        checkpoint_path : path-like or None
            When set, the accumulated store is saved there every
            ``checkpoint_every`` new measurements and at the end.
        """
        store = ResultStore()
        done = set()
        if resume_from is not None:
            for result in resume_from:
                if result.platform == platform.name:
                    store.add(result)
                    done.add((result.dataset, result.configuration))
        configurations = list(configurations)
        new_measurements = 0
        for dataset in datasets:
            split = self.split(dataset)
            for configuration in configurations:
                if (dataset.name, configuration) in done:
                    continue
                store.add(self.run_one(platform, dataset, configuration, split))
                new_measurements += 1
                if checkpoint_path is not None and \
                        new_measurements % checkpoint_every == 0:
                    store.save(checkpoint_path)
        if checkpoint_path is not None and new_measurements:
            store.save(checkpoint_path)
        return store

    def predictions_for(
        self,
        platform: MLaaSPlatform,
        dataset: Dataset,
        configuration: Configuration,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (y_test, predictions) for one measurement.

        Used by the classifier-family inference analysis (§6.2), which
        needs the raw predicted labels rather than aggregate metrics.
        """
        split = self.split(dataset)
        dataset_id = platform.upload_dataset(
            split.X_train, split.y_train, name=dataset.name
        )
        model_id = platform.create_model(
            dataset_id,
            classifier=configuration.classifier,
            params=configuration.params_dict or None,
            feature_selection=configuration.feature_selection,
        )
        predictions = platform.batch_predict(model_id, split.X_test)
        platform.delete_dataset(dataset_id)
        return split.y_test, predictions
