"""Control dimensions and pipeline configurations.

The paper groups user control over the ML pipeline into three dimensions
(§3.2): Preprocessing + Feature Selection (FEAT), Classifier Choice (CLF)
and Parameter Tuning (PARA).  A :class:`Configuration` pins a value for
each dimension; the measurement harness varies them per the study
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FEAT", "CLF", "PARA", "CONTROL_DIMENSIONS", "Configuration"]

#: Feature selection / preprocessing control dimension.
FEAT = "FEAT"
#: Classifier choice control dimension.
CLF = "CLF"
#: Parameter tuning control dimension.
PARA = "PARA"

#: All control dimensions in the paper's presentation order.
CONTROL_DIMENSIONS = (FEAT, CLF, PARA)


@dataclass(frozen=True)
class Configuration:
    """One point in a platform's configuration space.

    Attributes
    ----------
    classifier : str or None
        Classifier abbreviation, or ``None`` for black-box platforms.
    params : tuple of (name, value)
        Classifier parameters as a sorted tuple (hashable, so
        configurations can key dicts/sets).
    feature_selection : str or None
        Feature-selection choice, or ``None`` for no feature selection.
    tuned : frozenset of str
        Which control dimensions deviate from the baseline; used by the
        per-control analyses (Fig 5 / Fig 7).
    """

    classifier: str | None = None
    params: tuple = ()
    feature_selection: str | None = None
    tuned: frozenset = field(default_factory=frozenset)

    @staticmethod
    def make(
        classifier: str | None = None,
        params: dict | None = None,
        feature_selection: str | None = None,
        tuned=(),
    ) -> "Configuration":
        """Build a configuration from a plain params dict."""
        items = tuple(sorted((params or {}).items(), key=lambda kv: kv[0]))
        return Configuration(
            classifier=classifier,
            params=items,
            feature_selection=feature_selection,
            tuned=frozenset(tuned),
        )

    @property
    def params_dict(self) -> dict:
        return dict(self.params)

    def label(self) -> str:
        """Short human-readable identifier for logs and reports."""
        parts = [self.classifier or "auto"]
        if self.feature_selection:
            parts.append(f"feat={self.feature_selection}")
        if self.params:
            rendered = ",".join(f"{k}={v}" for k, v in self.params)
            parts.append(rendered)
        return "|".join(parts)
