"""Study orchestration: the paper's three measurement protocols.

:class:`MLaaSStudy` drives all seven platforms over a dataset corpus and
produces the result stores consumed by :mod:`repro.analysis`:

* ``run_baseline()`` — one zero-control measurement per (platform,
  dataset), reproducing the "baseline" bars of Fig 4 and Table 3a.
* ``run_optimized()`` — the full configuration sweep per platform; the
  per-dataset best reproduces the "optimized" bars of Fig 4, Table 3b,
  and the sweep itself feeds Figs 5–8 and Table 4.
* ``run_per_control(dimension)`` — tune one control, others at baseline
  (Figs 5 and 7).

A :class:`StudyScale` preset bounds corpus size and grid resolution so
the same code runs as a quick test, a laptop bench, or a paper-scale
sweep.  With ``workers > 1`` every protocol runs through the
:mod:`repro.service` campaign scheduler — concurrent across platforms,
with retries and telemetry — and still produces a result store
bit-identical to the serial path (the scheduler's determinism contract).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config_space import (
    baseline_configuration,
    enumerate_configurations,
    per_control_configurations,
)
from repro.core.controls import CONTROL_DIMENSIONS
from repro.core.results import ResultStore
from repro.core.runner import ExperimentRunner
from repro.datasets.corpus import Dataset, load_corpus
from repro.exceptions import ValidationError
from repro.platforms import ALL_PLATFORMS
from repro.platforms.base import MLaaSPlatform

__all__ = ["StudyScale", "MLaaSStudy"]


@dataclass(frozen=True)
class StudyScale:
    """Resource preset for a study run.

    Attributes
    ----------
    max_datasets : int or None
        Corpus subset size (None = all 119).
    size_cap : int or None
        Per-dataset row cap.
    feature_cap : int or None
        Per-dataset column cap.
    para_grid : str
        "single_axis" (default), "full", or "default".
    """

    max_datasets: int | None = 12
    size_cap: int | None = 400
    feature_cap: int | None = 30
    para_grid: str = "single_axis"

    @staticmethod
    def tiny() -> "StudyScale":
        """A seconds-scale preset for tests."""
        return StudyScale(max_datasets=4, size_cap=150, feature_cap=8,
                          para_grid="default")

    @staticmethod
    def small() -> "StudyScale":
        """The default minutes-scale bench preset."""
        return StudyScale()

    @staticmethod
    def paper() -> "StudyScale":
        """Full corpus, full grids — the paper-scale protocol."""
        return StudyScale(max_datasets=None, size_cap=None, feature_cap=None,
                          para_grid="full")


class MLaaSStudy:
    """End-to-end measurement study over all platforms and a corpus.

    Parameters
    ----------
    scale : StudyScale
        Resource preset.
    platforms : sequence of platform classes or instances, or None
        Defaults to all seven platforms in complexity order.
    random_state : int
        Seed shared by corpus subsetting and platform internals.
    workers : int
        Worker threads for the measurement protocols.  ``1`` (default)
        keeps the serial sweep; ``> 1`` routes every protocol through
        :class:`repro.service.CampaignScheduler`, which guarantees the
        result store is identical to the serial path.
    processes : int
        Worker processes.  ``> 1`` routes every protocol through the
        process-sharded :class:`repro.service.ShardedCampaign` — the
        CPU-bound full-grid path past the GIL, still bit-identical to
        serial.  Threads and processes are alternative backends: at most
        one of ``workers``/``processes`` may exceed 1, and process mode
        does not accept an injected ``clock`` (it cannot cross the
        pickling boundary).
    clock : callable or None
        Optional shared time source with the :class:`VirtualClock`
        interface.  When given it is passed to every platform the study
        constructs (driving their rolling-minute rate limiters) and to
        the campaign scheduler's backoff, so waits and quota windows
        move together.
    """

    def __init__(
        self,
        scale: StudyScale | None = None,
        platforms=None,
        random_state: int = 0,
        workers: int = 1,
        processes: int = 1,
        clock=None,
    ):
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if processes < 1:
            raise ValidationError(f"processes must be >= 1, got {processes}")
        if workers > 1 and processes > 1:
            raise ValidationError(
                "choose one campaign backend: thread workers "
                f"(workers={workers}) or process shards "
                f"(processes={processes}), not both"
            )
        if processes > 1 and clock is not None:
            raise ValidationError(
                "process-sharded campaigns cannot use an injected clock; "
                "it does not cross the pickling boundary"
            )
        self.scale = scale or StudyScale.small()
        self.random_state = random_state
        self.workers = int(workers)
        self.processes = int(processes)
        self.clock = clock
        platform_kwargs = {"random_state": random_state}
        if clock is not None:
            platform_kwargs["clock"] = clock
        platform_sources = platforms if platforms is not None else ALL_PLATFORMS
        # Classes are instantiated with the study's seed/clock; anything
        # already constructed — an in-process platform or a wire client
        # such as repro.serving.HTTPPlatformClient — passes through, so
        # a campaign runs unchanged against a remote server.
        self.platforms: list[MLaaSPlatform] = [
            source(**platform_kwargs) if isinstance(source, type)
            else source
            for source in platform_sources
        ]
        self.runner = ExperimentRunner(split_seed=random_state + 7)
        #: Telemetry of the most recent campaign run (None before any,
        #: and always None on the pure serial path).
        self.telemetry = None
        self._corpus: list[Dataset] | None = None

    @property
    def corpus(self) -> list[Dataset]:
        """The study's dataset corpus (loaded lazily, then cached)."""
        if self._corpus is None:
            self._corpus = load_corpus(
                max_datasets=self.scale.max_datasets,
                size_cap=self.scale.size_cap,
                feature_cap=self.scale.feature_cap,
                random_state=self.random_state,
            )
        return self._corpus

    def platform(self, name: str) -> MLaaSPlatform:
        """Look up one of the study's platform instances by name."""
        for platform in self.platforms:
            if platform.name == name:
                return platform
        raise KeyError(f"study has no platform {name!r}")

    # -- protocols ---------------------------------------------------------

    def protocol_plan(self, protocol: str, platforms: list[str] | None = None) -> list:
        """The (platform, configurations) plan of a measurement protocol.

        ``protocol`` is ``"baseline"``, ``"optimized"`` or a control
        dimension (``"FEAT"``/``"CLF"``/``"PARA"``); platforms with an
        empty configuration list are excluded.  The plan order is the
        serial sweep order, which the campaign scheduler preserves.
        """
        plan: list = []
        for platform in self.platforms:
            if platforms is not None and platform.name not in platforms:
                continue
            if protocol == "baseline":
                configurations = [baseline_configuration(platform)]
            elif protocol == "optimized":
                configurations = list(enumerate_configurations(
                    platform, para_grid=self.scale.para_grid
                ))
            elif protocol in CONTROL_DIMENSIONS:
                configurations = per_control_configurations(
                    platform, protocol, para_grid=self.scale.para_grid
                )
            else:
                raise ValidationError(
                    f"unknown protocol {protocol!r}; use 'baseline', "
                    f"'optimized' or one of {list(CONTROL_DIMENSIONS)}"
                )
            if configurations:
                plan.append((platform, configurations))
        return plan

    def _run_plan(self, plan: list) -> ResultStore:
        """Execute a plan serially, or as a campaign with workers/processes."""
        if self.workers > 1 or self.processes > 1:
            return self.run_campaign_plan(plan)
        store = ResultStore()
        for platform, configurations in plan:
            store.extend(
                self.runner.sweep(platform, self.corpus, configurations)
            )
        return store

    def run_campaign_plan(
        self,
        plan: list,
        resume_from: ResultStore | None = None,
        checkpoint_path=None,
        checkpoint_every: int = 200,
    ) -> ResultStore:
        """Run a plan through the concurrent campaign backend.

        ``processes > 1`` fans dataset-keyed shards over a process pool
        (:class:`~repro.service.ShardedCampaign`), checkpointing after
        every completed shard; otherwise the thread scheduler runs it,
        checkpointing every ``checkpoint_every`` measurements.  Either
        way the results are identical to the serial path, and the
        backend's :class:`~repro.service.Telemetry` is kept on
        ``self.telemetry`` for inspection/export.
        """
        # Imported here to keep repro.core importable without the service
        # layer at import time (service imports core.runner/core.results).
        from repro.service import CampaignScheduler, ShardedCampaign

        platforms = [platform for platform, _ in plan]
        configurations = {platform.name: configs
                          for platform, configs in plan}
        if self.processes > 1:
            engine = ShardedCampaign(processes=self.processes)
            store = engine.run(
                self.runner, platforms, self.corpus, configurations,
                resume_from=resume_from,
                checkpoint_path=checkpoint_path,
            )
            self.telemetry = engine.telemetry
            return store
        scheduler = CampaignScheduler(
            workers=self.workers, clock=self.clock, seed=self.random_state,
        )
        store = scheduler.run(
            self.runner, platforms, self.corpus, configurations,
            resume_from=resume_from,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        self.telemetry = scheduler.telemetry
        return store

    def run_campaign(
        self,
        protocol: str = "baseline",
        platforms: list[str] | None = None,
        resume_from: ResultStore | None = None,
        checkpoint_path=None,
        checkpoint_every: int = 200,
    ) -> ResultStore:
        """Run a named protocol as a checkpointable concurrent campaign."""
        return self.run_campaign_plan(
            self.protocol_plan(protocol, platforms=platforms),
            resume_from=resume_from,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )

    def run_baseline(self) -> ResultStore:
        """Zero-control measurement of every platform on every dataset."""
        return self._run_plan(self.protocol_plan("baseline"))

    def run_optimized(self, platforms: list[str] | None = None) -> ResultStore:
        """Full configuration sweep (the 'optimized' protocol, §4.1)."""
        return self._run_plan(self.protocol_plan("optimized", platforms=platforms))

    def run_per_control(self, dimension: str) -> ResultStore:
        """Tune one control dimension, others at baseline (Figs 5, 7)."""
        return self._run_plan(self.protocol_plan(dimension))

    def run_all_controls(self) -> dict[str, ResultStore]:
        """Per-control sweeps for all three dimensions."""
        return {
            dimension: self.run_per_control(dimension)
            for dimension in CONTROL_DIMENSIONS
        }

    def run_blackbox_audit(
        self,
        max_configs_per_classifier: int = 3,
        qualification_threshold: float = 0.95,
    ) -> dict:
        """The §6 pipeline end to end against this study's black boxes.

        1. Collect family-labelled observations from every platform that
           exposes classifier choice.
        2. Train per-dataset family predictors; keep the qualified ones.
        3. Infer each black-box platform's per-dataset family choice.
        4. Compare each black box against the naive LR-vs-DT strategy.

        Returns a dict with ``predictors``, ``reports`` (per black box)
        and ``comparisons`` (per black box).
        """
        # Imported here to keep repro.core free of an analysis dependency
        # at import time (analysis imports core).
        from repro.analysis.family import (
            collect_family_observations,
            infer_blackbox_families,
            train_family_predictors,
        )
        from repro.analysis.naive import compare_with_blackbox

        ground_truth_platforms = [
            platform for platform in self.platforms
            if platform.controls.classifiers
        ]
        blackboxes = [
            platform for platform in self.platforms
            if not platform.controls.classifiers
        ]
        observations = collect_family_observations(
            self.runner, ground_truth_platforms, self.corpus,
            max_configs_per_classifier=max_configs_per_classifier,
        )
        predictors = train_family_predictors(
            observations, random_state=self.random_state,
            qualification_threshold=qualification_threshold,
        )
        reports = {}
        comparisons = {}
        for blackbox in blackboxes:
            report = infer_blackbox_families(
                self.runner, blackbox, self.corpus, predictors
            )
            reports[blackbox.name] = report
            comparisons[blackbox.name] = compare_with_blackbox(
                self.runner, blackbox, self.corpus,
                blackbox_families=report.choices,
                random_state=self.random_state,
            )
        return {
            "predictors": predictors,
            "reports": reports,
            "comparisons": comparisons,
        }
