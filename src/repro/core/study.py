"""Study orchestration: the paper's three measurement protocols.

:class:`MLaaSStudy` drives all seven platforms over a dataset corpus and
produces the result stores consumed by :mod:`repro.analysis`:

* ``run_baseline()`` — one zero-control measurement per (platform,
  dataset), reproducing the "baseline" bars of Fig 4 and Table 3a.
* ``run_optimized()`` — the full configuration sweep per platform; the
  per-dataset best reproduces the "optimized" bars of Fig 4, Table 3b,
  and the sweep itself feeds Figs 5–8 and Table 4.
* ``run_per_control(dimension)`` — tune one control, others at baseline
  (Figs 5 and 7).

A :class:`StudyScale` preset bounds corpus size and grid resolution so
the same code runs as a quick test, a laptop bench, or a paper-scale
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config_space import (
    baseline_configuration,
    enumerate_configurations,
    per_control_configurations,
)
from repro.core.controls import CONTROL_DIMENSIONS
from repro.core.results import ResultStore
from repro.core.runner import ExperimentRunner
from repro.datasets.corpus import Dataset, load_corpus
from repro.platforms import ALL_PLATFORMS
from repro.platforms.base import MLaaSPlatform

__all__ = ["StudyScale", "MLaaSStudy"]


@dataclass(frozen=True)
class StudyScale:
    """Resource preset for a study run.

    Attributes
    ----------
    max_datasets : int or None
        Corpus subset size (None = all 119).
    size_cap : int or None
        Per-dataset row cap.
    feature_cap : int or None
        Per-dataset column cap.
    para_grid : str
        "single_axis" (default), "full", or "default".
    """

    max_datasets: int | None = 12
    size_cap: int | None = 400
    feature_cap: int | None = 30
    para_grid: str = "single_axis"

    @staticmethod
    def tiny() -> "StudyScale":
        """A seconds-scale preset for tests."""
        return StudyScale(max_datasets=4, size_cap=150, feature_cap=8,
                          para_grid="default")

    @staticmethod
    def small() -> "StudyScale":
        """The default minutes-scale bench preset."""
        return StudyScale()

    @staticmethod
    def paper() -> "StudyScale":
        """Full corpus, full grids — the paper-scale protocol."""
        return StudyScale(max_datasets=None, size_cap=None, feature_cap=None,
                          para_grid="full")


class MLaaSStudy:
    """End-to-end measurement study over all platforms and a corpus.

    Parameters
    ----------
    scale : StudyScale
        Resource preset.
    platforms : sequence of platform classes or instances, or None
        Defaults to all seven platforms in complexity order.
    random_state : int
        Seed shared by corpus subsetting and platform internals.
    """

    def __init__(
        self,
        scale: StudyScale | None = None,
        platforms=None,
        random_state: int = 0,
    ):
        self.scale = scale or StudyScale.small()
        self.random_state = random_state
        platform_sources = platforms if platforms is not None else ALL_PLATFORMS
        self.platforms: list[MLaaSPlatform] = [
            source if isinstance(source, MLaaSPlatform)
            else source(random_state=random_state)
            for source in platform_sources
        ]
        self.runner = ExperimentRunner(split_seed=random_state + 7)
        self._corpus: list[Dataset] | None = None

    @property
    def corpus(self) -> list[Dataset]:
        """The study's dataset corpus (loaded lazily, then cached)."""
        if self._corpus is None:
            self._corpus = load_corpus(
                max_datasets=self.scale.max_datasets,
                size_cap=self.scale.size_cap,
                feature_cap=self.scale.feature_cap,
                random_state=self.random_state,
            )
        return self._corpus

    def platform(self, name: str) -> MLaaSPlatform:
        """Look up one of the study's platform instances by name."""
        for platform in self.platforms:
            if platform.name == name:
                return platform
        raise KeyError(f"study has no platform {name!r}")

    # -- protocols ---------------------------------------------------------

    def run_baseline(self) -> ResultStore:
        """Zero-control measurement of every platform on every dataset."""
        store = ResultStore()
        for platform in self.platforms:
            configuration = baseline_configuration(platform)
            store.extend(
                self.runner.sweep(platform, self.corpus, [configuration])
            )
        return store

    def run_optimized(self, platforms: list[str] | None = None) -> ResultStore:
        """Full configuration sweep (the 'optimized' protocol, §4.1)."""
        store = ResultStore()
        for platform in self.platforms:
            if platforms is not None and platform.name not in platforms:
                continue
            configurations = list(enumerate_configurations(
                platform, para_grid=self.scale.para_grid
            ))
            store.extend(
                self.runner.sweep(platform, self.corpus, configurations)
            )
        return store

    def run_per_control(self, dimension: str) -> ResultStore:
        """Tune one control dimension, others at baseline (Figs 5, 7)."""
        store = ResultStore()
        for platform in self.platforms:
            configurations = per_control_configurations(
                platform, dimension, para_grid=self.scale.para_grid
            )
            if not configurations:
                continue  # platform does not expose this control
            store.extend(
                self.runner.sweep(platform, self.corpus, configurations)
            )
        return store

    def run_all_controls(self) -> dict[str, ResultStore]:
        """Per-control sweeps for all three dimensions."""
        return {
            dimension: self.run_per_control(dimension)
            for dimension in CONTROL_DIMENSIONS
        }

    def run_blackbox_audit(
        self,
        max_configs_per_classifier: int = 3,
        qualification_threshold: float = 0.95,
    ) -> dict:
        """The §6 pipeline end to end against this study's black boxes.

        1. Collect family-labelled observations from every platform that
           exposes classifier choice.
        2. Train per-dataset family predictors; keep the qualified ones.
        3. Infer each black-box platform's per-dataset family choice.
        4. Compare each black box against the naive LR-vs-DT strategy.

        Returns a dict with ``predictors``, ``reports`` (per black box)
        and ``comparisons`` (per black box).
        """
        # Imported here to keep repro.core free of an analysis dependency
        # at import time (analysis imports core).
        from repro.analysis.family import (
            collect_family_observations,
            infer_blackbox_families,
            train_family_predictors,
        )
        from repro.analysis.naive import compare_with_blackbox

        ground_truth_platforms = [
            platform for platform in self.platforms
            if platform.controls.classifiers
        ]
        blackboxes = [
            platform for platform in self.platforms
            if not platform.controls.classifiers
        ]
        observations = collect_family_observations(
            self.runner, ground_truth_platforms, self.corpus,
            max_configs_per_classifier=max_configs_per_classifier,
        )
        predictors = train_family_predictors(
            observations, random_state=self.random_state,
            qualification_threshold=qualification_threshold,
        )
        reports = {}
        comparisons = {}
        for blackbox in blackboxes:
            report = infer_blackbox_families(
                self.runner, blackbox, self.corpus, predictors
            )
            reports[blackbox.name] = report
            comparisons[blackbox.name] = compare_with_blackbox(
                self.runner, blackbox, self.corpus,
                blackbox_families=report.choices,
                random_state=self.random_state,
            )
        return {
            "predictors": predictors,
            "reports": reports,
            "comparisons": comparisons,
        }
