"""Driver for one ``repro check`` run: all six analyzers, one parse.

``repro check`` exists so CI (and a developer's pre-push loop) pays
for the project parse and the flow index exactly once: every analyzer
goes through the memoized :mod:`repro.tools.indexing` facade, so the
lint pass below and the five cross-module runners all see the same
cached :class:`~repro.tools.indexing.IndexedProject`, and the perf,
shape and wire models are each built once on that shared entry.

A tool that crashes is isolated: its traceback is captured on the
report (and mapped to exit 3 in the merged exit code) while the other
tools still run, so one analyzer bug never hides another analyzer's
findings.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import repro.tools.lint.rules  # noqa: F401  (fills RULE_REGISTRY)
from repro.tools.exitcodes import EXIT_CRASH
from repro.tools.flow.runner import detect_context_paths, run_flow
from repro.tools.indexing import load_indexed_project
from repro.tools.lint.engine import (
    ENGINE_CODE,
    RULE_REGISTRY,
    LintResult,
    Violation,
    apply_suppressions,
    suppression_violations,
)
from repro.tools.perf.runner import run_perf
from repro.tools.race.runner import run_race
from repro.tools.shape.runner import run_shape
from repro.tools.wire.runner import run_wire

__all__ = [
    "CheckReport",
    "TOOL_NAMES",
    "run_check",
]

#: The six analyzers, in suite order (lint first: its R-codes anchor
#: the suppression vocabulary the others extend).
TOOL_NAMES = ("lint", "flow", "race", "perf", "shape", "wire")


@dataclass
class CheckReport:
    """Per-tool results of one ``repro check`` run."""

    #: tool name -> :class:`LintResult`, in :data:`TOOL_NAMES` order.
    results: dict = field(default_factory=dict)
    #: tool name -> formatted traceback for tools that crashed.
    crashes: dict = field(default_factory=dict)
    n_files: int = 0

    @property
    def exit_code(self) -> int:
        """Worst exit code across the tools (a crash dominates)."""
        code = 0
        for result in self.results.values():
            code = max(code, result.exit_code)
        if self.crashes:
            code = max(code, EXIT_CRASH)
        return code


def _run_lint_shared(loaded) -> LintResult:
    """The lint pass over the already-parsed shared project.

    Replicates :func:`repro.tools.lint.engine.run_lint` verbatim —
    same rules, same known codes, same suppression handling — but over
    the memoized :class:`IndexedProject` instead of a private parse,
    which is the whole point of ``repro check``.
    """
    rules = [cls() for _, cls in sorted(RULE_REGISTRY.items())]
    known_codes = {rule.code for rule in rules} | {ENGINE_CODE}
    project = loaded.project
    violations: list[Violation] = list(loaded.parse_violations)
    for module in project.modules:
        violations.extend(suppression_violations(module, known_codes))
        for rule in rules:
            violations.extend(rule.check_module(module, project))
    for rule in rules:
        violations.extend(rule.check_project(project))
    modules_by_path = {m.relpath: m for m in project.modules}
    violations = apply_suppressions(violations, modules_by_path)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintResult(violations=violations, n_files=loaded.n_files)


def run_check(
    paths: Sequence,
    root: Path | None = None,
    context_paths: Sequence | None = None,
    tools: Sequence | None = None,
) -> CheckReport:
    """Run every analyzer over ``paths`` sharing one parsed index.

    ``tools`` restricts the run to a subset of :data:`TOOL_NAMES`
    (order is normalized to suite order).  The shared index is loaded
    first, so even the first tool's run is a cache hit.
    """
    if context_paths is None:
        context_paths = detect_context_paths(paths)
    selected = TOOL_NAMES if tools is None else tuple(
        name for name in TOOL_NAMES if name in set(tools)
    )
    loaded = load_indexed_project(paths, root=root,
                                  context_paths=context_paths)

    runners = {
        "lint": lambda: _run_lint_shared(loaded),
        "flow": lambda: run_flow(paths, root=root,
                                 context_paths=context_paths),
        "race": lambda: run_race(paths, root=root,
                                 context_paths=context_paths),
        "perf": lambda: run_perf(paths, root=root,
                                 context_paths=context_paths),
        "shape": lambda: run_shape(paths, root=root,
                                   context_paths=context_paths),
        "wire": lambda: run_wire(paths, root=root,
                                 context_paths=context_paths),
    }
    report = CheckReport(n_files=loaded.n_files)
    for name in selected:
        try:
            report.results[name] = runners[name]()
        except Exception:
            report.crashes[name] = traceback.format_exc()
    return report
