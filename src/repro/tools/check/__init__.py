"""``repro check`` — the whole static-analysis suite in one process.

CI used to drive the six analyzers (lint, flow, race, perf, shape,
wire) as six processes, which meant six parses of the same tree.  The
:mod:`repro.tools.indexing` facade already memoizes the parse and the
flow index per process; this package is the front end that cashes that
in: one ``repro check`` run loads the shared index once, runs every
analyzer over it (the lint pass included — it replays the engine's
per-module loop over the shared project), merges the reports, and
exits with the worst code across the suite on the shared 0/1/2/3
taxonomy.  A crashing analyzer is captured on the report as exit 3
without silencing the findings of the others.

Importable API::

    from repro.tools.check import run_check
    report = run_check(["src/repro"])
    assert report.exit_code == 0, report.results

Command line::

    repro check [PATHS...] [--format text|json] [--tools lint,wire]
    repro check --format json --artifacts-dir reports src/repro
    python -m repro.tools.check
"""

from __future__ import annotations

from repro.tools.check.runner import CheckReport, TOOL_NAMES, run_check

__all__ = [
    "CheckReport",
    "TOOL_NAMES",
    "run_check",
]
