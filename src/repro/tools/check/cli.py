"""Command-line front end: ``repro check`` / ``python -m repro.tools.check``.

One invocation, six analyzers, one parse.  The merged report nests
each tool's familiar payload under its name, and the exit code is the
worst across the suite on the shared 0/1/2/3 taxonomy (a crashed tool
contributes 3 without silencing the others).  ``--artifacts-dir``
additionally writes the per-tool JSON reports CI used to produce with
six separate steps.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.tools.exitcodes import EXIT_CRASH, EXIT_USAGE, run_guarded
from repro.tools.lint.reporters import REPORTERS, render_json, render_text

__all__ = [
    "DEFAULT_TARGET",
    "build_parser",
    "configure_parser",
    "main",
    "run_check_command",
]

#: Default analysis target: the package's own source tree.
DEFAULT_TARGET = Path(__file__).resolve().parents[2]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the check arguments to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include justified suppressions in the report",
    )
    parser.add_argument(
        "--tools", metavar="NAMES",
        help="comma-separated subset of analyzers to run "
             "(default: lint,flow,race,perf,shape,wire)",
    )
    parser.add_argument(
        "--artifacts-dir", type=Path, metavar="DIR",
        help="also write per-tool JSON reports (<tool>-report.json) "
             "into DIR",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """Build the standalone parser for ``python -m repro.tools.check``."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="run all six static analyzers over one shared "
                    "parse with a merged report and worst-exit-code "
                    "semantics",
    )
    return configure_parser(parser)


def _tool_payload(report, name, show_suppressed: bool) -> dict:
    if name in report.crashes:
        return {
            "error": report.crashes[name],
            "summary": {"exit_code": EXIT_CRASH},
        }
    return json.loads(render_json(report.results[name],
                                  show_suppressed=show_suppressed))


def _merged_json(report, show_suppressed: bool) -> str:
    tools = {
        name: _tool_payload(report, name, show_suppressed)
        for name in (*report.results, *report.crashes)
    }
    payload = {
        "tools": tools,
        "summary": {
            "files": report.n_files,
            "violations": sum(len(r.unsuppressed)
                              for r in report.results.values()),
            "suppressed": sum(len(r.suppressed)
                              for r in report.results.values()),
            "crashed": sorted(report.crashes),
            "exit_code": report.exit_code,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _merged_text(report, show_suppressed: bool) -> str:
    sections = []
    for name, result in report.results.items():
        sections.append(f"== repro {name} ==")
        sections.append(render_text(result,
                                    show_suppressed=show_suppressed))
    for name in report.crashes:
        sections.append(f"== repro {name} ==")
        sections.append(f"CRASHED:\n{report.crashes[name]}")
    total = sum(len(r.unsuppressed) for r in report.results.values())
    suppressed = sum(len(r.suppressed) for r in report.results.values())
    crashed = f", {len(report.crashes)} tool(s) crashed" \
        if report.crashes else ""
    sections.append(
        f"check: {total} violation{'s' if total != 1 else ''} "
        f"({suppressed} suppressed) in {report.n_files} "
        f"file{'s' if report.n_files != 1 else ''} across "
        f"{len(report.results)} analyzer(s){crashed}"
    )
    return "\n".join(sections)


def _write_artifacts(report, directory: Path, show_suppressed: bool,
                     out) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    for name in (*report.results, *report.crashes):
        path = directory / f"{name}-report.json"
        payload = _tool_payload(report, name, show_suppressed)
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}", file=out)


def run_check_command(args: argparse.Namespace, out=None) -> int:
    """Execute a parsed check invocation; returns the exit code."""
    out = out or sys.stdout
    paths = args.paths or [DEFAULT_TARGET]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}",
                  file=sys.stderr)
            return EXIT_USAGE
    from repro.tools.check.runner import TOOL_NAMES, run_check

    tools = None
    if args.tools:
        tools = [name.strip() for name in args.tools.split(",")
                 if name.strip()]
        unknown = sorted(set(tools) - set(TOOL_NAMES))
        if unknown:
            print(f"error: unknown analyzer(s): {', '.join(unknown)} "
                  f"(choose from {', '.join(TOOL_NAMES)})",
                  file=sys.stderr)
            return EXIT_USAGE

    report = run_check(paths, root=Path.cwd(), tools=tools)
    if report.n_files == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return EXIT_USAGE
    if args.artifacts_dir is not None:
        _write_artifacts(report, args.artifacts_dir,
                         args.show_suppressed, out)
    renderer = _merged_json if args.format == "json" else _merged_text
    print(renderer(report, args.show_suppressed), file=out)
    return report.exit_code


def main(argv=None, out=None) -> int:
    """Entry point for ``python -m repro.tools.check``."""
    args = build_parser().parse_args(argv)
    return run_guarded(run_check_command, args, out=out)
