"""``python -m repro.tools.check`` — run the whole analyzer suite."""

from repro.tools.check.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
