"""Shared, cached project loading for the static-analysis tools.

``repro lint``, ``repro flow``, ``repro race``, ``repro perf``,
``repro shape``, and ``repro wire`` all
start the same way: discover the Python files, parse each one exactly
once, and (for the cross-module analyzers) build the shared
:class:`~repro.tools.flow.graph.FlowIndex` of symbols, imports, and
calls.  When the analyzers run from one process — the combined CI job,
the dogfood test gates, or a ``repro flow && repro race`` script driving
them through the Python API — rebuilding those indexes per tool doubles
or triples the dominant cost of a run.

This module is the memoizing facade in front of that work: an
:class:`IndexedProject` bundles the parsed project, its parse-failure
violations, and the flow index, keyed by a *content fingerprint* of the
analyzed files (resolved path, mtime, size).  Editing any analyzed file
invalidates the entry, so a long-lived test session never sees a stale
index, while back-to-back flow and race runs over the same tree share
one parse and one index build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.tools.flow.graph import FlowIndex, build_index
from repro.tools.lint.engine import (
    Project,
    iter_python_files,
    load_module,
)

__all__ = [
    "IndexedProject",
    "clear_index_cache",
    "index_cache_info",
    "load_indexed_project",
]

#: Upper bound on memoized projects; the cache resets past this to keep
#: long pytest sessions (many fixture mini-trees) from accumulating ASTs.
_CACHE_LIMIT = 8

_CACHE: dict = {}
_STATS = {"hits": 0, "misses": 0}


@dataclass
class IndexedProject:
    """One parsed project plus the indexes every analyzer shares."""

    project: Project
    index: FlowIndex
    parse_violations: list = field(default_factory=list)
    n_files: int = 0
    _loop_model: object = None
    _shape_model: object = None
    _wire_model: object = None

    @property
    def context_modules(self) -> list:
        """Benchmark/example/test modules parsed alongside the project."""
        return self.index.context_modules

    def loop_model(self):
        """The perf analyzer's loop-nest model, built lazily and memoized.

        Lives on the cached entry so repeated ``repro perf`` runs over an
        unchanged tree share the model the way all tools share the parse.
        The import is deferred: only perf runs pay for it, and the perf
        package can import this facade without a cycle.
        """
        if self._loop_model is None:
            from repro.tools.perf.loops import build_loop_model

            self._loop_model = build_loop_model(self.index)
        return self._loop_model

    def shape_model(self):
        """The shape analyzer's array-fact model, built lazily and memoized.

        Lives on the cached entry so repeated ``repro shape`` runs over
        an unchanged tree share the model the way all tools share the
        parse.  The import is deferred: only shape runs pay for it, and
        the shape package can import this facade without a cycle.
        """
        if self._shape_model is None:
            from repro.tools.shape.arrays import build_shape_model

            self._shape_model = build_shape_model(self.index)
        return self._shape_model

    def wire_model(self):
        """The wire analyzer's contract model, built lazily and memoized.

        Lives on the cached entry so repeated ``repro wire`` runs over
        an unchanged tree share the model the way all tools share the
        parse.  The import is deferred: only wire runs pay for it, and
        the wire package can import this facade without a cycle.  The
        wire model consumes :meth:`shape_model` for W504's dtype facts,
        so one wire run warms both.
        """
        if self._wire_model is None:
            from repro.tools.wire.wiremodel import build_wire_model

            self._wire_model = build_wire_model(self.index,
                                                self.shape_model())
        return self._wire_model


def _stat_entries(paths: Sequence) -> tuple:
    entries = []
    for path in iter_python_files(paths):
        stat = path.stat()
        entries.append((str(path.resolve()), stat.st_mtime_ns, stat.st_size))
    return tuple(entries)


def _fingerprint(paths: Sequence, root: Path | None,
                 context_paths: Sequence) -> tuple:
    return (
        _stat_entries(paths),
        _stat_entries(context_paths),
        str(Path(root).resolve()) if root is not None else None,
    )


def load_indexed_project(
    paths: Sequence,
    root: Path | None = None,
    context_paths: Sequence = (),
) -> IndexedProject:
    """Parse ``paths`` (+ context) once and memoize the shared indexes.

    ``context_paths`` must already be resolved by the caller (see
    :func:`repro.tools.flow.runner.detect_context_paths`); pass ``()``
    to analyze in isolation.  Two calls with identical arguments and
    unchanged files return the *same* :class:`IndexedProject` object —
    callers must treat the project and index as read-only and copy the
    parse-violation list before appending to it.
    """
    key = _fingerprint(paths, root, context_paths)
    cached = _CACHE.get(key)
    if cached is not None:
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1

    project = Project()
    parse_violations: list = []
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        module, violations = load_module(path, root=root)
        parse_violations.extend(violations)
        if module is not None:
            project.modules.append(module)

    analyzed = {module.path.resolve() for module in project.modules}
    context_modules = []
    for path in iter_python_files(context_paths):
        if path.resolve() in analyzed:
            continue
        module, _ = load_module(path, root=root)
        if module is not None:
            context_modules.append(module)

    loaded = IndexedProject(
        project=project,
        index=build_index(project, context_modules=context_modules),
        parse_violations=parse_violations,
        n_files=n_files,
    )
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = loaded
    return loaded


def clear_index_cache() -> None:
    """Drop every memoized project (and reset the hit/miss counters)."""
    _CACHE.clear()
    _STATS["hits"] = _STATS["misses"] = 0


def index_cache_info() -> dict:
    """Cache observability: ``{"entries": ..., "hits": ..., "misses": ...}``."""
    return {"entries": len(_CACHE), **_STATS}
