"""Symbolic array-fact model for ``repro shape``.

Walks every function the shared :class:`~repro.tools.flow.graph.FlowIndex`
knows about and abstract-interprets its ndarray expressions into the
facts the S-rules query:

* a **symbolic shape** over the same dimension vocabulary the perf
  analyzer infers (``samples``/``features``/``estimators``/
  ``iterations``/``classes``), plus literal ints and ``"?"`` for
  dimensions the model cannot name — ``X`` enters a function as
  ``("samples", "features")``, ``y`` as ``("samples",)``, and shapes
  flow through slicing, transposition, reductions, stacking, and the
  linear-algebra operators;
* a **dtype lattice** position — ``bool < intp/int32 < float64 <
  object`` — propagated from allocators, ``astype``, validators, and
  arithmetic, so the rules can see a silent upcast or a
  platform-dependent width before it changes bits;
* an **ownership tag** — ``fresh`` (allocated here), ``caller``
  (a parameter: somebody else's buffer), ``view`` (basic slice /
  ``asarray`` alias of another fact), ``cache`` (handed out by a
  :class:`~repro.learn.cache.FitCache`-style memo and shared
  read-only) — which is what lets S403 prove an in-place write lands
  in somebody else's array;
* per-site **event streams** the rules consume: shape-algebra
  mismatches at ``dot``/``matmul``/``concatenate``/broadcast sites,
  builtin-dtype drift points, mutations of non-owned arrays, and
  fancy/strided accesses inside hot loops of ``_COMPILED_SUBSTRATE``
  modules.

The model is deliberately approximate in the same direction as the
flow, race, and perf models: facts are only derived from simple
assignments and well-known numpy constructors, an unrecognized
expression yields *no* fact rather than a guess, and every rule
requires positively known facts on both sides before it fires — so the
suite errs toward silence, not false alarms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from repro.tools.flow.graph import FlowIndex, FunctionInfo

__all__ = [
    "DIM_TOKENS",
    "DTYPE_RANK",
    "ArrayFact",
    "FunctionArrays",
    "ShapeModel",
    "broadcast_conflict",
    "build_shape_model",
    "join_dtype",
]

#: Symbolic dimension tokens the model distinguishes (perf's vocabulary).
DIM_TOKENS = ("samples", "features", "estimators", "iterations", "classes")

#: The dtype lattice: ``bool < intp/int32/int64 < float64 < object``.
#: Ranks drive :func:`join_dtype`; equal-rank joins keep the wider name.
DTYPE_RANK = {
    "bool": 0,
    "int32": 1,
    "intp": 1,
    "int64": 1,
    "float64": 2,
    "object": 3,
}

#: Parameter-name prefixes seeded as arrays on function entry.
_SAMPLE_NAMES = frozenset({"n_samples", "n_rows", "n_points", "n_queries"})
_FEATURE_NAMES = frozenset({"n_features", "n_cols", "n_columns"})
_ESTIMATOR_NAMES = frozenset({"n_estimators", "n_members", "n_trees",
                              "n_models", "n_dags"})
_CLASS_NAMES = frozenset({"n_classes"})

#: ``np.<name>`` allocators whose first argument is the result shape.
_SHAPE_ALLOCATORS = frozenset({"zeros", "ones", "empty", "full"})

#: ``np.<name>(template)`` allocators copying the template's shape.
_LIKE_ALLOCATORS = frozenset({"zeros_like", "ones_like", "empty_like",
                              "full_like"})

#: ``np.<name>`` calls returning a fresh array shaped like their input.
_ELEMENTWISE = frozenset({
    "abs", "sqrt", "log", "log2", "log10", "exp", "sign", "square", "clip",
    "rint", "round", "maximum", "minimum", "where", "sort", "argsort",
    "cumsum", "diff", "isnan", "isfinite", "searchsorted", "digitize",
})

#: Axis reductions: ``np.<name>(a, axis=k)`` drops dimension ``k``.
_REDUCERS = frozenset({
    "sum", "mean", "median", "min", "max", "std", "var", "nanmedian",
    "nanmean", "argmax", "argmin", "prod", "all", "any",
})

#: Reducers whose result dtype is float64 regardless of input.
_FLOAT_REDUCERS = frozenset({"mean", "median", "std", "var", "nanmedian",
                             "nanmean"})

#: Validators from :mod:`repro.learn.validation` and what they return.
_VALIDATORS = {
    "check_array": (("samples", "features"), "float64"),
    "check_X_y": (None, None),  # tuple; handled at the unpack site
    "column_or_1d": (("samples",), None),
}

#: Receiver names marking a call result as cache-stored shared state.
_CACHE_NAMES = frozenset({"cache", "memory", "fit_cache", "_fit_cache",
                          "_cache"})

#: Reductions where a 32-bit integer input can silently overflow.
_OVERFLOW_REDUCERS = frozenset({"cumsum", "sum", "prod", "bincount"})

#: In-place ndarray methods (mutate the receiver, return None/self).
_INPLACE_METHODS = frozenset({"fill", "sort", "partition", "put", "setfield"})


def join_dtype(a: str | None, b: str | None) -> str | None:
    """Least upper bound of two lattice positions (``None`` = unknown)."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    ra, rb = DTYPE_RANK.get(a), DTYPE_RANK.get(b)
    if ra is None or rb is None:
        return None
    return a if ra >= rb else b


@dataclass(frozen=True)
class ArrayFact:
    """What the model knows about one array-valued name.

    ``shape`` is a tuple over :data:`DIM_TOKENS` ∪ ints ∪ ``"?"``, or
    ``None`` when even the rank is unknown.  ``owner`` is one of
    ``fresh``/``caller``/``view``/``cache``; ``base`` names the aliased
    array for views.  ``contiguous`` is ``False`` only when the model
    positively derived a strided layout (transpose, column slice).
    """

    shape: tuple | None = None
    dtype: str | None = None
    owner: str = "fresh"
    base: str | None = None
    contiguous: bool | None = None

    def is_array(self) -> bool:
        """True when the model knows anything array-like about the value."""
        return self.shape is not None or self.dtype is not None


@dataclass
class FunctionArrays:
    """Array facts and rule events extracted from one function."""

    key: tuple                     # FunctionInfo.key: (module, qualname)
    relpath: str
    facts: dict = field(default_factory=dict)   # name -> ArrayFact
    #: array-seeded parameters as declared (name -> shape), frozen at
    #: function entry so rebinding ``X = check_array(X)`` keeps the
    #: caller-facing contract visible.
    param_arrays: dict = field(default_factory=dict)
    #: (line, col, text) shape-algebra mismatches (S401).
    mismatch_sites: list = field(default_factory=list)
    #: (line, col, kind, text) builtin/narrow dtype events (S402).
    dtype_sites: list = field(default_factory=list)
    #: (line, col, name, owner, base, text) non-owned mutations (S403).
    mutation_sites: list = field(default_factory=list)
    #: (line, col, kind, text) hot-loop access events (S404).
    access_sites: list = field(default_factory=list)
    #: names of parameters this function routes through a validator,
    #: directly or through a resolved in-project call (S406 fixpoint).
    validated_params: set = field(default_factory=set)
    #: (ast.Call node, [(param_name, arg_position_or_kw)]) for resolved
    #: in-project calls forwarding array parameters (S406 fixpoint).
    forwarded_params: list = field(default_factory=list)
    #: facts of every ``return`` expression, source order (contracts).
    returns: list = field(default_factory=list)
    #: True when some return statement is literally ``return self``.
    returns_self: bool = False


@dataclass
class ShapeModel:
    """Every function's array facts plus the interprocedural summaries."""

    index: FlowIndex
    functions: dict = field(default_factory=dict)   # key -> FunctionArrays
    _validated: dict | None = None

    def validated_params(self) -> dict:
        """``function key -> set of param names reaching a validator``.

        A parameter counts as validated when its function calls
        ``check_array``/``check_X_y``/``column_or_1d``/``np.asarray`` on
        it, or forwards it (positionally or by keyword) to a resolved
        in-project function that validates the receiving parameter.
        Computed as a small monotone fixpoint over the call graph, so a
        platform ``predict`` delegating to a helper that validates
        still counts.
        """
        if self._validated is not None:
            return self._validated
        targets = {}
        for caller, sites in self.index.calls.items():
            for site in sites:
                if site.target is not None:
                    targets[(caller, id(site.node))] = site.target
        validated = {key: set(fn.validated_params)
                     for key, fn in self.functions.items()}
        for _ in range(8):
            changed = False
            for key, fn in self.functions.items():
                for call_node, param_args in fn.forwarded_params:
                    target = targets.get((key, id(call_node)))
                    if target is None or target not in self.functions:
                        continue
                    info = self.index.functions.get(target)
                    if info is None:
                        continue
                    callee_params = info.all_param_names()
                    for param, slot in param_args:
                        if param in validated[key]:
                            continue
                        if isinstance(slot, int):
                            name = callee_params[slot] \
                                if slot < len(callee_params) else None
                        else:
                            name = slot
                        if name is not None and name in validated[target]:
                            validated[key].add(param)
                            changed = True
            if not changed:
                break
        self._validated = validated
        return validated


def _numpy_aliases(index: FlowIndex, module_name: str) -> set:
    aliases = {"np", "numpy"}
    for local, binding in index.bindings.get(module_name, {}).items():
        if binding.symbol is None and (
                binding.module == "numpy"
                or binding.module.startswith("numpy.")):
            aliases.add(local)
    return aliases


def _safe_unparse(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse never fails on ast.parse output
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _dedupe(items: list) -> list:
    seen = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def _names_in(node: ast.AST) -> set:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _store_names(node: ast.AST) -> set:
    return {
        n.id for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
    }


def _dim_of_name(name: str) -> str | None:
    if name in _SAMPLE_NAMES:
        return "samples"
    if name in _FEATURE_NAMES:
        return "features"
    if name in _ESTIMATOR_NAMES:
        return "estimators"
    if name in _CLASS_NAMES:
        return "classes"
    return None


def broadcast_conflict(a: tuple, b: tuple) -> tuple | None:
    """``(dim_a, dim_b)`` when trailing-aligned dims cannot broadcast.

    Two dimensions conflict only when both are positively known (a
    symbolic token or a literal int), differ, and neither is the
    broadcast-legal literal ``1``; ``"?"`` matches anything.
    """
    for dim_a, dim_b in zip(reversed(a), reversed(b)):
        if dim_a == "?" or dim_b == "?":
            continue
        if dim_a == 1 or dim_b == 1:
            continue
        if dim_a != dim_b:
            return (dim_a, dim_b)
    return None


class _FunctionInterpreter:
    """Builds one :class:`FunctionArrays` from a function's AST."""

    def __init__(self, info: FunctionInfo, relpath: str, np_aliases: set):
        self.info = info
        self.np = np_aliases
        self.out = FunctionArrays(key=info.key, relpath=relpath)
        self.params = set(info.all_param_names(skip_self=False))
        self._loop_stack: list[tuple] = []  # (dim|None, kind, stored names)
        self._seed_params()

    # -- seeding --------------------------------------------------------

    def _seed_params(self) -> None:
        for name in self.params:
            if name == "X" or name.startswith("X_"):
                self.out.facts[name] = ArrayFact(
                    shape=("samples", "features"), owner="caller")
                self.out.param_arrays[name] = ("samples", "features")
            elif name == "y" or name.startswith("y_"):
                self.out.facts[name] = ArrayFact(
                    shape=("samples",), owner="caller")
                self.out.param_arrays[name] = ("samples",)
        # Learned estimator state the whole substrate shares: classes_
        # holds the sorted label values, one per class.
        self.out.facts["self.classes_"] = ArrayFact(
            shape=("classes",), owner="cache")

    # -- expression evaluation -----------------------------------------

    def _np_name(self, func: ast.expr) -> str | None:
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.np):
            return func.attr
        return None

    def _lookup(self, node: ast.expr) -> ArrayFact | None:
        if isinstance(node, ast.Name):
            return self.out.facts.get(node.id)
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and node.value.id == "self":
            return self.out.facts.get(f"self.{node.attr}")
        return None

    def _classify_size(self, node: ast.expr):
        """One shape entry for a size expression (token, int, or ``"?"``)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name):
            return _dim_of_name(node.id) or "?"
        if isinstance(node, ast.Attribute):
            return _dim_of_name(node.attr) or "?"
        if isinstance(node, ast.Subscript) and \
                isinstance(node.value, ast.Attribute) and \
                node.value.attr == "shape":
            base = self._lookup(node.value.value)
            axis = node.slice
            if base is not None and base.shape is not None and \
                    isinstance(axis, ast.Constant) and \
                    isinstance(axis.value, int) and \
                    axis.value < len(base.shape):
                return base.shape[axis.value]
            if isinstance(axis, ast.Constant) and axis.value == 0:
                return "samples"
            if isinstance(axis, ast.Constant) and axis.value == 1:
                return "features"
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and node.func.id == "len" \
                and node.args:
            fact = self._lookup(node.args[0])
            if fact is not None and fact.shape:
                return fact.shape[0]
        return "?"

    def _shape_from_arg(self, node: ast.expr) -> tuple | None:
        """Result shape of an allocator's shape argument."""
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._classify_size(e) for e in node.elts)
        if isinstance(node, ast.Attribute) and node.attr == "shape":
            base = self._lookup(node.value)
            if base is not None:
                return base.shape
            return None
        entry = self._classify_size(node)
        return (entry,)

    def _dtype_of_expr(self, node: ast.expr | None) -> str | None:
        """Lattice position named by a dtype argument expression."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return {"float": "float64", "int": "intp",
                    "bool": "bool"}.get(node.id)
        if isinstance(node, ast.Attribute):
            return {
                "float64": "float64", "float_": "float64",
                "double": "float64", "int32": "int32", "int64": "int64",
                "intp": "intp", "bool_": "bool", "object_": "object",
            }.get(node.attr)
        return None

    def _builtin_dtype_kind(self, node: ast.expr | None) -> str | None:
        """``"float"``/``"int"`` when the dtype expr is the builtin name."""
        if isinstance(node, ast.Name) and node.id in ("float", "int"):
            return node.id
        return None

    def _eval(self, node: ast.expr) -> ArrayFact | None:
        """Array fact of an expression, or ``None`` when unknown."""
        direct = self._lookup(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Attribute):
            if node.attr == "T":
                base = self._eval(node.value)
                if base is not None and base.shape is not None:
                    return ArrayFact(
                        shape=tuple(reversed(base.shape)), dtype=base.dtype,
                        owner="view",
                        base=node.value.id
                        if isinstance(node.value, ast.Name) else None,
                        contiguous=False if len(base.shape) > 1 else None,
                    )
            return None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.MatMult):
                return self._eval_matmul(node, node.left, node.right)
            return self._eval_binop(node)
        if isinstance(node, ast.Compare) and len(node.comparators) == 1:
            left = self._eval(node.left)
            right = self._eval(node.comparators[0])
            fact = self._broadcast(node, left, right)
            if fact is not None:
                return replace(fact, dtype="bool")
            return None
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            return self._eval(node.body) or self._eval(node.orelse)
        return None

    def _broadcast(self, node: ast.expr, left: ArrayFact | None,
                   right: ArrayFact | None) -> ArrayFact | None:
        """Join two operand facts, recording S401 broadcast conflicts."""
        if left is None or not left.is_array():
            if right is None:
                return None
            return ArrayFact(shape=right.shape, dtype=right.dtype)
        if right is None or not right.is_array():
            return ArrayFact(shape=left.shape, dtype=left.dtype)
        if left.shape is not None and right.shape is not None:
            conflict = broadcast_conflict(left.shape, right.shape)
            if conflict is not None:
                self.out.mismatch_sites.append((
                    node.lineno, node.col_offset,
                    f"operands broadcast {conflict[0]!r} against "
                    f"{conflict[1]!r} in {_safe_unparse(node)}",
                ))
            shape = left.shape if len(left.shape) >= len(right.shape) \
                else right.shape
        else:
            shape = left.shape or right.shape
        return ArrayFact(shape=shape, dtype=join_dtype(left.dtype,
                                                       right.dtype))

    def _eval_binop(self, node: ast.BinOp) -> ArrayFact | None:
        left = self._eval(node.left)
        right = self._eval(node.right)
        # True division always lands in float64 regardless of operands.
        fact = self._broadcast(node, left, right)
        if fact is not None and isinstance(node.op, ast.Div):
            return replace(fact, dtype="float64")
        return fact

    def _eval_matmul(self, node: ast.expr, left_node: ast.expr,
                     right_node: ast.expr) -> ArrayFact | None:
        left = self._eval(left_node)
        right = self._eval(right_node)
        if left is None or right is None or \
                left.shape is None or right.shape is None:
            return None
        inner_left = left.shape[-1]
        inner_right = right.shape[0] if len(right.shape) == 1 \
            else right.shape[-2]
        if inner_left != inner_right and "?" not in (inner_left, inner_right) \
                and 1 not in (inner_left, inner_right):
            self.out.mismatch_sites.append((
                node.lineno, node.col_offset,
                f"inner dimensions {inner_left!r} x {inner_right!r} do not "
                f"contract in {_safe_unparse(node)}",
            ))
        out_shape: tuple = ()
        if len(left.shape) > 1:
            out_shape += (left.shape[0],)
        if len(right.shape) > 1:
            out_shape += (right.shape[-1],)
        if not out_shape:
            return ArrayFact(shape=None,
                             dtype=join_dtype(left.dtype, right.dtype))
        return ArrayFact(shape=out_shape,
                         dtype=join_dtype(left.dtype, right.dtype))

    def _eval_subscript(self, node: ast.Subscript) -> ArrayFact | None:
        base = self._eval(node.value)
        if base is None or base.shape is None:
            return None
        base_name = node.value.id if isinstance(node.value, ast.Name) \
            else None
        entries = node.slice.elts if isinstance(node.slice, ast.Tuple) \
            else [node.slice]
        shape: list = []
        fancy = False
        strided = False
        base_pos = 0
        for entry in entries:
            if self._is_newaxis(entry):
                shape.append(1)  # inserts a dim, consumes none
                continue
            dim = base.shape[base_pos] if base_pos < len(base.shape) \
                else "?"
            if isinstance(entry, ast.Slice):
                if entry.lower is None and entry.upper is None and \
                        entry.step is None:
                    shape.append(dim)
                else:
                    shape.append("?")
                    if entry.step is not None:
                        strided = True
                if base_pos > 0:
                    strided = True
            elif isinstance(entry, ast.Constant) and \
                    isinstance(entry.value, int):
                pass  # integer index drops the dimension
            else:
                index_fact = self._eval(entry)
                if index_fact is not None and index_fact.is_array():
                    fancy = True
                    shape.append(index_fact.shape[0]
                                 if index_fact.shape else "?")
                else:
                    pass  # scalar-valued expression drops the dimension
            base_pos += 1
        shape.extend(base.shape[base_pos:])
        if fancy:
            # Fancy indexing copies: the result is a fresh buffer.
            return ArrayFact(shape=tuple(shape), dtype=base.dtype,
                             owner="fresh")
        return ArrayFact(
            shape=tuple(shape), dtype=base.dtype, owner="view",
            base=base_name if base.owner != "fresh" or base_name is None
            else base_name,
            contiguous=False if strided else None,
        )

    def _eval_call(self, node: ast.Call) -> ArrayFact | None:
        np_name = self._np_name(node.func)
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        dtype_expr = kwargs.get("dtype")
        if np_name is not None:
            return self._eval_np_call(node, np_name, dtype_expr)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _VALIDATORS and func.id != "check_X_y":
                shape, dtype = _VALIDATORS[func.id]
                base = node.args[0].id if node.args and \
                    isinstance(node.args[0], ast.Name) else None
                # asarray may return the caller's buffer unchanged, so
                # a validated array still aliases its input.
                return ArrayFact(shape=shape, dtype=dtype, owner="view",
                                 base=base)
            return None
        if isinstance(func, ast.Attribute):
            recv_fact = self._eval(func.value)
            if func.attr == "astype":
                target = node.args[0] if node.args else dtype_expr
                if recv_fact is not None:
                    return ArrayFact(shape=recv_fact.shape,
                                     dtype=self._dtype_of_expr(target),
                                     owner="fresh")
                return ArrayFact(dtype=self._dtype_of_expr(target),
                                 owner="fresh")
            if func.attr == "copy" and recv_fact is not None:
                return replace(recv_fact, owner="fresh", base=None,
                               contiguous=None)
            if func.attr in ("ravel", "flatten") and recv_fact is not None \
                    and recv_fact.shape is not None:
                total = recv_fact.shape[0] if len(recv_fact.shape) == 1 \
                    else "?"
                owner = "view" if func.attr == "ravel" else "fresh"
                return ArrayFact(shape=(total,), dtype=recv_fact.dtype,
                                 owner=owner, base=recv_fact.base)
            if func.attr == "reshape" and recv_fact is not None:
                return ArrayFact(shape=None, dtype=recv_fact.dtype,
                                 owner="view", base=recv_fact.base)
            if func.attr in ("sum", "mean", "max", "min", "std", "var") \
                    and recv_fact is not None:
                return self._reduce(recv_fact, kwargs.get("axis"),
                                    float_result=func.attr
                                    in ("mean", "std", "var"))
            if func.attr == "fit_transform" and \
                    self._is_cache_receiver(func.value):
                return ArrayFact(shape=("samples", "?"), owner="cache")
        return None

    def _eval_np_call(self, node: ast.Call, np_name: str,
                      dtype_expr: ast.expr | None) -> ArrayFact | None:
        args = node.args
        dtype = self._dtype_of_expr(dtype_expr)
        if np_name in _SHAPE_ALLOCATORS and args:
            shape = self._shape_from_arg(args[0])
            if np_name == "full" and dtype is None:
                dtype = None  # value-derived; unknown
            elif dtype is None and np_name != "full":
                dtype = "float64"
            return ArrayFact(shape=shape, dtype=dtype, owner="fresh",
                             contiguous=True)
        if np_name in _LIKE_ALLOCATORS and args:
            template = self._eval(args[0])
            if template is not None:
                return ArrayFact(shape=template.shape,
                                 dtype=dtype or template.dtype,
                                 owner="fresh", contiguous=True)
            return ArrayFact(dtype=dtype, owner="fresh")
        if np_name == "arange":
            size = self._classify_size(args[-1]) if args else "?"
            return ArrayFact(shape=(size,), dtype=dtype or "intp",
                             owner="fresh", contiguous=True)
        if np_name in ("asarray", "ascontiguousarray", "asfortranarray"):
            source = self._eval(args[0]) if args else None
            base = args[0].id if args and isinstance(args[0], ast.Name) \
                else None
            return ArrayFact(
                shape=source.shape if source else None,
                dtype=dtype or (source.dtype if source else None),
                owner="view", base=base,
                contiguous=True if np_name != "asarray" else None,
            )
        if np_name == "array":
            source = self._eval(args[0]) if args else None
            return ArrayFact(
                shape=source.shape if source else None,
                dtype=dtype or (source.dtype if source else None),
                owner="fresh", contiguous=True,
            )
        if np_name in ("dot", "matmul") and len(args) >= 2:
            return self._eval_matmul(node, args[0], args[1])
        if np_name in ("concatenate", "stack", "vstack", "hstack",
                       "column_stack"):
            return self._eval_stack(node, np_name, args)
        if np_name == "unique":
            return ArrayFact(shape=("classes",), owner="fresh")
        if np_name in ("flatnonzero", "nonzero"):
            return ArrayFact(shape=("?",), dtype="intp", owner="fresh")
        if np_name == "bincount":
            return ArrayFact(shape=("?",), dtype="intp", owner="fresh")
        if np_name in _REDUCERS and args:
            source = self._eval(args[0])
            if source is not None:
                kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
                return self._reduce(source, kwargs.get("axis"),
                                    float_result=np_name in _FLOAT_REDUCERS)
            return None
        if np_name in _ELEMENTWISE and args:
            source = self._eval(args[0])
            if source is not None:
                dtype_out = source.dtype
                if np_name in ("argsort", "searchsorted", "digitize"):
                    dtype_out = "intp"
                elif np_name in ("isnan", "isfinite"):
                    dtype_out = "bool"
                elif np_name in ("sqrt", "log", "log2", "log10", "exp"):
                    dtype_out = "float64"
                if np_name in ("maximum", "minimum", "where") and \
                        len(args) > 1:
                    extra = [self._eval(a) for a in args[1:]]
                    for other in extra:
                        if other is not None:
                            dtype_out = join_dtype(dtype_out, other.dtype)
                return ArrayFact(shape=source.shape, dtype=dtype_out,
                                 owner="fresh")
        if np_name == "transpose" and args:
            source = self._eval(args[0])
            if source is not None and source.shape is not None:
                return ArrayFact(shape=tuple(reversed(source.shape)),
                                 dtype=source.dtype, owner="view",
                                 base=args[0].id
                                 if isinstance(args[0], ast.Name) else None,
                                 contiguous=False)
        return None

    def _eval_stack(self, node: ast.Call, np_name: str,
                    args: list) -> ArrayFact | None:
        if not args:
            return None
        parts_node = args[0]
        parts = parts_node.elts \
            if isinstance(parts_node, (ast.Tuple, ast.List)) else []
        facts = [self._eval(part) for part in parts]
        known = [f for f in facts if f is not None and f.shape is not None]
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        axis_node = kwargs.get("axis") or (args[1] if len(args) > 1 else None)
        axis = axis_node.value if isinstance(axis_node, ast.Constant) and \
            isinstance(axis_node.value, int) else 0
        dtype = None
        for fact in known:
            dtype = fact.dtype if dtype is None \
                else join_dtype(dtype, fact.dtype)
        if len(known) >= 2 and np_name in ("concatenate", "vstack",
                                           "hstack", "stack"):
            head = known[0].shape
            for other in known[1:]:
                conflict = self._stack_conflict(np_name, axis, head,
                                                other.shape)
                if conflict is not None:
                    self.out.mismatch_sites.append((
                        node.lineno, node.col_offset,
                        f"{np_name} joins incompatible dimensions "
                        f"{conflict[0]!r} and {conflict[1]!r} in "
                        f"{_safe_unparse(node)}",
                    ))
                    break
        if np_name == "column_stack" and known:
            width = len(parts) if parts and len(known) == len(parts) else "?"
            return ArrayFact(shape=(known[0].shape[0], width), dtype=dtype,
                             owner="fresh")
        if known:
            head = known[0].shape
            if np_name == "stack":
                return ArrayFact(shape=("?",) + head, dtype=dtype,
                                 owner="fresh")
            out = list(head)
            join_axis = 0 if np_name in ("concatenate", "vstack") and axis == 0 \
                else (len(out) - 1 if out else 0)
            if np_name == "concatenate":
                join_axis = axis if axis < len(out) else 0
            if out:
                out[join_axis] = "?"
            return ArrayFact(shape=tuple(out), dtype=dtype, owner="fresh")
        return ArrayFact(dtype=dtype, owner="fresh")

    @staticmethod
    def _stack_conflict(np_name: str, axis: int, a: tuple, b: tuple):
        """Conflicting non-join dims of two stacked shapes, if provable."""
        if np_name == "stack":
            pairs = zip(a, b)
        elif len(a) != len(b):
            return None
        elif np_name == "vstack":
            pairs = [(a[i], b[i]) for i in range(1, len(a))]
        elif np_name == "hstack":
            pairs = [(a[i], b[i]) for i in range(len(a) - 1)] \
                if len(a) > 1 else []
        else:
            pairs = [(a[i], b[i]) for i in range(len(a)) if i != axis]
        for dim_a, dim_b in pairs:
            if dim_a == "?" or dim_b == "?":
                continue
            if dim_a != dim_b:
                return (dim_a, dim_b)
        return None

    def _reduce(self, source: ArrayFact, axis_node,
                float_result: bool) -> ArrayFact:
        dtype = "float64" if float_result else source.dtype
        if source.shape is None:
            return ArrayFact(dtype=dtype, owner="fresh")
        axis = axis_node.value if isinstance(axis_node, ast.Constant) and \
            isinstance(axis_node.value, int) else None
        if axis is None:
            return ArrayFact(shape=None, dtype=dtype, owner="fresh")
        shape = tuple(dim for position, dim in enumerate(source.shape)
                      if position != axis)
        return ArrayFact(shape=shape, dtype=dtype, owner="fresh")

    @staticmethod
    def _is_newaxis(node: ast.expr) -> bool:
        """``None``/``np.newaxis`` inside a subscript inserts a dim."""
        if isinstance(node, ast.Constant) and node.value is None:
            return True
        return isinstance(node, ast.Attribute) and node.attr == "newaxis"

    def _is_cache_receiver(self, node: ast.expr) -> bool:
        names = {n.lower() for n in _names_in(node)}
        attrs = {n.attr.lower() for n in ast.walk(node)
                 if isinstance(n, ast.Attribute)}
        return bool((names | attrs) & _CACHE_NAMES)

    # -- walking --------------------------------------------------------

    def run(self) -> FunctionArrays:
        self._visit_block(self.info.node.body)
        # Expression walking and binding evaluation can visit one site
        # twice (e.g. a BinOp nested in an assignment value); events are
        # per-site facts, so collapse duplicates preserving order.
        for attr in ("mismatch_sites", "dtype_sites", "mutation_sites",
                     "access_sites"):
            setattr(self.out, attr, _dedupe(getattr(self.out, attr)))
        return self.out

    def _visit_block(self, stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._enter_loop(stmt, kind="for")
            elif isinstance(stmt, ast.While):
                self._enter_loop(stmt, kind="while")
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested scopes are separate (unmodelled)
            elif isinstance(stmt, ast.If):
                self._scan_expr(stmt.test)
                self._visit_block(stmt.body)
                self._visit_block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr)
                self._visit_block(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._visit_block(stmt.body)
                for handler in stmt.handlers:
                    self._visit_block(handler.body)
                self._visit_block(stmt.orelse)
                self._visit_block(stmt.finalbody)
            elif isinstance(stmt, ast.Return):
                self._scan_expr(stmt.value)
                if stmt.value is not None:
                    if isinstance(stmt.value, ast.Name) and \
                            stmt.value.id == "self":
                        self.out.returns_self = True
                    else:
                        self.out.returns.append(self._eval(stmt.value))
            else:
                self._scan_statement(stmt)

    def _enter_loop(self, stmt, kind: str) -> None:
        if kind == "for":
            self._scan_expr(stmt.iter)
            dim = self._loop_dim(stmt.iter)
        else:
            self._scan_expr(stmt.test)
            dim = None
        self._loop_stack.append((dim, kind, _store_names(stmt)))
        self._visit_block(stmt.body)
        self._visit_block(stmt.orelse)
        self._loop_stack.pop()

    def _loop_dim(self, iter_node: ast.expr) -> str | None:
        """Dimension a for-loop walks (subset of perf's classifier)."""
        if isinstance(iter_node, ast.Call) and \
                isinstance(iter_node.func, ast.Name):
            if iter_node.func.id == "range" and iter_node.args:
                bound = iter_node.args[1] if len(iter_node.args) >= 2 \
                    else iter_node.args[0]
                entry = self._classify_size(bound)
                return entry if entry in DIM_TOKENS else None
            if iter_node.func.id == "enumerate" and iter_node.args:
                return self._loop_dim(iter_node.args[0])
        fact = self._eval(iter_node)
        if fact is not None and fact.shape:
            head = fact.shape[0]
            return head if head in DIM_TOKENS else None
        return None

    def _scan_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            value_fact = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, stmt.value, value_fact)
                self._record_store_mutation(target, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._scan_expr(stmt.value)
            if stmt.value is not None:
                self._bind_target(stmt.target, stmt.value,
                                  self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value)
            self._record_store_mutation(stmt.target, stmt, augmented=True)
        else:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._scan_call(node)

    def _bind_target(self, target: ast.expr, value: ast.expr,
                     fact: ArrayFact | None) -> None:
        if isinstance(target, ast.Name):
            if fact is not None:
                self.out.facts[target.id] = fact
            elif target.id in self.out.facts and \
                    not isinstance(value, ast.Name):
                # Rebinding a tracked name to an unknown value forgets it.
                del self.out.facts[target.id]
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self" and fact is not None:
            self.out.facts[f"self.{target.attr}"] = fact
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Call) \
                and isinstance(value.func, ast.Name) and \
                value.func.id == "check_X_y" and len(target.elts) == 2:
            names = [e.id for e in target.elts if isinstance(e, ast.Name)]
            if len(names) == 2:
                bases = [a.id if isinstance(a, ast.Name) else None
                         for a in value.args[:2]]
                bases += [None, None]
                self.out.facts[names[0]] = ArrayFact(
                    shape=("samples", "features"), dtype="float64",
                    owner="view", base=bases[0])
                self.out.facts[names[1]] = ArrayFact(
                    shape=("samples",), owner="view", base=bases[1])

    # -- mutation & event recording ------------------------------------

    def _mutation_owner(self, fact: ArrayFact | None) -> tuple | None:
        """``(owner, root)`` when mutating this fact hits non-owned data."""
        if fact is None:
            return None
        if fact.owner in ("caller", "cache"):
            return (fact.owner, fact.base)
        if fact.owner == "view" and fact.base is not None:
            root = self.out.facts.get(fact.base)
            seen = {fact.base}
            while root is not None and root.owner == "view" and \
                    root.base is not None and root.base not in seen:
                seen.add(root.base)
                root = self.out.facts.get(root.base)
            if root is not None and root.owner in ("caller", "cache"):
                return (root.owner, fact.base)
        return None

    def _record_store_mutation(self, target: ast.expr, stmt,
                               augmented: bool = False) -> None:
        if isinstance(target, ast.Subscript):
            fact = self._eval(target.value)
            hit = self._mutation_owner(fact)
            if hit is not None:
                name = _safe_unparse(target.value, limit=30)
                self.out.mutation_sites.append((
                    stmt.lineno, stmt.col_offset, name, hit[0], hit[1],
                    _safe_unparse(stmt),
                ))
        elif augmented and isinstance(target, ast.Name):
            fact = self.out.facts.get(target.id)
            if fact is not None and fact.is_array():
                hit = self._mutation_owner(fact)
                if hit is not None:
                    self.out.mutation_sites.append((
                        stmt.lineno, stmt.col_offset, target.id, hit[0],
                        hit[1], _safe_unparse(stmt),
                    ))

    def _scan_expr(self, node: ast.expr | None) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._scan_call(sub)
            elif isinstance(sub, ast.BinOp) or \
                    (isinstance(sub, ast.Compare)
                     and len(sub.comparators) == 1):
                self._eval(sub)  # records broadcast conflicts as a side effect
            elif isinstance(sub, ast.Subscript) and \
                    isinstance(sub.ctx, ast.Load):
                self._scan_access(sub)

    def _scan_call(self, node: ast.Call) -> None:
        np_name = self._np_name(node.func)
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        self._eval(node)  # record shape events for dot/concatenate/...

        # S402: builtin dtype names (float is implicit, int is
        # platform-width) at astype/constructor sites.
        dtype_expr = kwargs.get("dtype")
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "astype" and node.args:
            dtype_expr = node.args[0]
        kind = self._builtin_dtype_kind(dtype_expr)
        if kind is not None:
            self.out.dtype_sites.append((
                node.lineno, node.col_offset, f"builtin-{kind}",
                _safe_unparse(node),
            ))
        # S402: a 32-bit integer array feeding an overflow-prone reduction.
        if np_name in _OVERFLOW_REDUCERS and node.args:
            arg_fact = self._eval(node.args[0])
            if arg_fact is not None and arg_fact.dtype == "int32":
                self.out.dtype_sites.append((
                    node.lineno, node.col_offset, "int32-reduce",
                    _safe_unparse(node),
                ))

        # S403: in-place mutation through out= or an in-place method.
        out_expr = kwargs.get("out")
        if out_expr is not None:
            hit = self._mutation_owner(self._eval(out_expr))
            if hit is not None:
                self.out.mutation_sites.append((
                    node.lineno, node.col_offset,
                    _safe_unparse(out_expr, limit=30), hit[0], hit[1],
                    _safe_unparse(node),
                ))
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _INPLACE_METHODS:
            hit = self._mutation_owner(self._eval(node.func.value))
            if hit is not None:
                self.out.mutation_sites.append((
                    node.lineno, node.col_offset,
                    _safe_unparse(node.func.value, limit=30), hit[0],
                    hit[1], _safe_unparse(node),
                ))

        # S406 inputs: validator calls and forwarded array parameters.
        callee = node.func.id if isinstance(node.func, ast.Name) else None
        if callee in _VALIDATORS or np_name in ("asarray",
                                                "ascontiguousarray"):
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in self.params:
                    self.out.validated_params.add(arg.id)
        forwarded = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Name) and arg.id in self.params and \
                    self.out.facts.get(arg.id, ArrayFact(None)).is_array():
                forwarded.append((arg.id, position))
        for kw in node.keywords:
            if kw.arg and isinstance(kw.value, ast.Name) and \
                    kw.value.id in self.params:
                forwarded.append((kw.value.id, kw.arg))
        if forwarded:
            self.out.forwarded_params.append((node, forwarded))

    def _scan_access(self, node: ast.Subscript) -> None:
        """S404 events: hot-loop gathers and strided reads."""
        if not self._loop_stack:
            return
        base = self._eval(node.value)
        if base is None or not base.is_array():
            return
        loop_dim, loop_kind, stored = self._loop_stack[-1]
        all_stored = set().union(*(s for _, _, s in self._loop_stack))
        entries = node.slice.elts if isinstance(node.slice, ast.Tuple) \
            else [node.slice]
        index_names = set()
        fancy = False
        column_slice = False
        for position, entry in enumerate(entries):
            if self._is_newaxis(entry):
                continue
            if isinstance(entry, ast.Slice):
                if position > 0 and entry.lower is None and \
                        entry.upper is None:
                    # arr[..., :] keeps trailing dims; arr[:, j] below.
                    continue
                continue
            index_fact = self._eval(entry)
            if index_fact is not None and index_fact.is_array():
                fancy = True
            index_names |= _names_in(entry)
            if position > 0 and not isinstance(entry, ast.Slice) and \
                    len(entries) > 1 and \
                    isinstance(entries[0], ast.Slice):
                column_slice = True
        if fancy and not (index_names & all_stored):
            self.out.access_sites.append((
                node.lineno, node.col_offset, "invariant-gather",
                _safe_unparse(node),
            ))
        elif column_slice and (loop_dim == "samples" or
                               loop_kind == "while"):
            self.out.access_sites.append((
                node.lineno, node.col_offset, "strided-column",
                _safe_unparse(node),
            ))
        elif base.contiguous is False and \
                (loop_dim == "samples" or loop_kind == "while"):
            self.out.access_sites.append((
                node.lineno, node.col_offset, "non-contiguous",
                _safe_unparse(node),
            ))


def build_shape_model(index: FlowIndex) -> ShapeModel:
    """Extract array facts for every function in the shared flow index."""
    model = ShapeModel(index=index)
    alias_cache: dict = {}
    for key, info in index.functions.items():
        module = index.modules.get(info.module_name)
        if module is None:
            continue
        if info.module_name not in alias_cache:
            alias_cache[info.module_name] = _numpy_aliases(
                index, info.module_name)
        interpreter = _FunctionInterpreter(
            info, module.relpath, alias_cache[info.module_name])
        model.functions[key] = interpreter.run()
    return model
