"""``python -m repro.tools.shape`` — run the shape analyzer."""

from repro.tools.shape.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
