"""Derived per-estimator array contracts for ``repro shape`` (S405).

The paper's Table 1 fixes *what* each model family computes; this module
derives the array-level analogue of *how* it is exchanged: for every
``BaseEstimator`` subclass in the analyzed tree, the symbolic input
shapes its ``fit``/``predict``/``predict_proba``/``transform`` methods
expect, which array parameters they route through a validator
(``check_X_y``/``check_array``/``asarray``, directly or via a resolved
in-project call), and the symbolic shape/dtype of what they return.

The derived table is checked in as ``array_contracts_spec.py`` next to
this module — a plain-literal Python file so it diffs readably and loads
via ``ast.literal_eval`` (no import, which lets ``--update-spec``
rewrite and re-check it within one process).  S405 compares fresh
derivation against the checked-in spec; an intentional change to an
estimator's array contract is recorded by re-running ``repro shape
--update-spec``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.tools.shape.arrays import ShapeModel

__all__ = [
    "DEFAULT_SPEC_PATH",
    "SPEC_METHODS",
    "derive_contracts",
    "load_spec",
    "render_spec",
    "write_spec",
]

#: Methods whose array contract the spec records, in render order.
SPEC_METHODS = ("fit", "predict", "predict_proba", "transform")

#: Where the checked-in spec lives.
DEFAULT_SPEC_PATH = Path(__file__).resolve().parent / \
    "array_contracts_spec.py"

#: Per-method entry keys, in render order.
_ENTRY_KEYS = ("in", "validates", "out", "out_dtype")

_HEADER = '''\
"""Checked-in estimator array contracts (regenerate: ``repro shape --update-spec``).

The array-level analogue of the paper's Table 1: for every estimator in
the analyzed tree, the symbolic input shapes of its
``fit``/``predict``/``predict_proba``/``transform`` methods over the
(samples, features, estimators, iterations, classes) dimension
vocabulary, which array parameters each method routes through a
validator (``in`` lists the array parameters, ``validates`` the subset
reaching ``check_X_y``/``check_array``/``asarray`` directly or through a
resolved in-project call), and the derived symbolic shape/dtype of the
return value (``'self'`` for fluent ``fit``, ``None`` when the
interpreter cannot name it).  S405 fails when a fresh derivation
disagrees with this file, so intentional contract changes are
re-recorded here and show up in review as a spec diff.

This file is data, not code: edit it only via ``--update-spec``.
"""

__all__ = ["ARRAY_CONTRACTS"]

'''


def _return_summary(fn) -> tuple:
    """``(out, out_dtype)`` for one function's recorded return facts."""
    if fn.returns_self:
        return ("self", None)
    shapes = {f.shape for f in fn.returns
              if f is not None and f.shape is not None}
    dtypes = {f.dtype for f in fn.returns
              if f is not None and f.dtype is not None}
    out = shapes.pop() if len(shapes) == 1 else None
    out_dtype = dtypes.pop() if len(dtypes) == 1 else None
    return (out, out_dtype)


def derive_contracts(model: ShapeModel) -> dict:
    """Map ``module.Class`` -> ``{method: contract}`` for estimators.

    Covers public ``BaseEstimator`` subclasses defined in the analyzed
    modules (context modules are excluded) that implement ``fit``; each
    method entry records the seeded array parameters (``in``), the
    validated subset (``validates``, sorted tuple), and the return
    summary (``out``/``out_dtype``).
    """
    index = model.index
    estimator_names = index.project.subclasses_of(["BaseEstimator"])
    analyzed = {m.dotted_name for m in index.project.modules}
    validated = model.validated_params()
    spec: dict = {}
    for (module_name, class_name) in sorted(index.classes):
        if class_name not in estimator_names or class_name.startswith("_"):
            continue
        if module_name not in analyzed:
            continue
        if (module_name, f"{class_name}.fit") not in index.functions:
            continue
        methods: dict = {}
        for method in SPEC_METHODS:
            key = (module_name, f"{class_name}.{method}")
            if key not in index.functions or key not in model.functions:
                continue
            fn = model.functions[key]
            arrays = dict(sorted(fn.param_arrays.items()))
            out, out_dtype = _return_summary(fn)
            methods[method] = {
                "in": arrays,
                "validates": tuple(sorted(
                    set(arrays) & validated.get(key, set()))),
                "out": out,
                "out_dtype": out_dtype,
            }
        spec[f"{module_name}.{class_name}"] = methods
    return spec


def render_spec(spec: dict) -> str:
    """The checked-in file's full text for ``spec`` (stable ordering)."""
    lines = [_HEADER, "ARRAY_CONTRACTS = {"]
    for class_path in sorted(spec):
        lines.append(f"    {class_path!r}: {{")
        for method in SPEC_METHODS:
            if method not in spec[class_path]:
                continue
            entry = spec[class_path][method]
            lines.append(f"        {method!r}: {{")
            for key in _ENTRY_KEYS:
                lines.append(f"            {key!r}: {entry[key]!r},")
            lines.append("        },")
        lines.append("    },")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_spec(spec: dict, path: Path = DEFAULT_SPEC_PATH) -> None:
    """Rewrite the checked-in spec file with ``spec``."""
    path.write_text(render_spec(spec), encoding="utf-8")


def load_spec(path: Path = DEFAULT_SPEC_PATH) -> dict | None:
    """The ``ARRAY_CONTRACTS`` literal from ``path``, or ``None``.

    Reads the file as an AST literal rather than importing it, so a
    just-rewritten spec is visible immediately and a broken spec cannot
    crash the analyzer (S405 reports it instead).
    """
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "ARRAY_CONTRACTS":
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        return None
                    return value if isinstance(value, dict) else None
    return None
