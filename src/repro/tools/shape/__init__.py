"""``repro shape`` — static array shape, dtype & aliasing analyzer.

The paper's complexity-vs-performance comparison is only as good as the
numerical fidelity of each pipeline; this package is the fifth
static-analysis pass ("S-rules") that enforces the array-level side of
that contract.  It extends the shared flow index with a per-function
**symbolic array model** (:mod:`repro.tools.shape.arrays`) — shape
tuples over the dimension vocabulary the perf analyzer already infers
(samples, features, estimators, iterations, classes), a dtype lattice
(``bool < intp/int32 < float64 < object``), contiguity, and an
ownership tag (fresh, view-of, caller-owned, cache-stored) propagated
through assignments, numpy calls, and function summaries — and runs six
rules over it:

* **S401 shape-mismatch** — symbolically provable dimension conflicts
  at ``dot``/``matmul``/``concatenate``/``stack``/broadcast sites;
* **S402 dtype-instability** — builtin ``float``/``int`` dtype names
  (implicit platform width) in the learn substrate, and ``int32``
  arrays feeding overflow-prone ``cumsum``/``bincount`` reductions;
* **S403 alias-mutation** — in-place writes into caller-owned
  parameters, views of them, or arrays handed out by the
  :class:`~repro.learn.cache.FitCache` (shared read-only across fits
  and across the C204 process boundary);
* **S404 substrate-access** — loop-invariant fancy gathers and strided
  column reads inside per-row hot loops of modules tagged
  ``_COMPILED_SUBSTRATE`` (the memory-layout complement of P306);
* **S405 array-contract-spec** — each estimator's derived
  ``fit``/``predict``/``predict_proba``/``transform`` array contract
  (input shapes, validated parameters, return shape/dtype) must match
  the checked-in Table-1-style ``array_contracts_spec.py``
  (refresh with ``--update-spec``);
* **S406 boundary-validation** — array parameters crossing the public
  platform API boundary without ``asarray``/``check_array``
  normalization, tracked through resolved in-project calls.

Importable API::

    from repro.tools.shape import shape_paths
    result = shape_paths(["src/repro"])
    assert result.exit_code == 0, result.violations

Command line::

    repro shape [PATHS...] [--format text|json]
    repro shape --update-spec
    python -m repro.tools.shape

Suppressions share the lint engine's comment syntax — a justified
suppression states the aliasing or numeric argument the analyzer
cannot see::

    counts[y] += 1  # repro: disable=S403 -- y validated fresh two lines up

The analysis reuses the lint engine (files parsed once, same reporters
and exit codes) and the flow package's shared indexes through the
memoized :mod:`repro.tools.indexing` facade, so lint, flow, race, perf,
and shape in one process parse the project once; the shape model itself
is memoized on the shared index entry.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.tools.lint.engine import LintResult
from repro.tools.shape.arrays import ShapeModel, build_shape_model
from repro.tools.shape.rules import default_shape_rules
from repro.tools.shape.runner import run_shape

__all__ = [
    "LintResult",
    "ShapeModel",
    "build_shape_model",
    "default_shape_rules",
    "run_shape",
    "shape_paths",
]


def shape_paths(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
    context_paths: Sequence | None = None,
    spec_path: Path | None = None,
) -> LintResult:
    """Analyze files/directories; see :func:`repro.tools.shape.runner.run_shape`."""
    return run_shape(paths, rules=rules, root=root,
                     context_paths=context_paths, spec_path=spec_path)
