"""Command-line front end: ``repro shape`` / ``python -m repro.tools.shape``.

Exit codes follow the shared taxonomy of :mod:`repro.tools.exitcodes`:

* ``0`` — clean (suppressed findings allowed, or ``--update-spec`` ran);
* ``1`` — at least one unsuppressed violation;
* ``2`` — usage error (nonexistent path, no files found);
* ``3`` — the analyzer itself crashed (traceback on stderr).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.tools.exitcodes import EXIT_USAGE, run_guarded
from repro.tools.lint.reporters import REPORTERS
from repro.tools.shape.contracts import DEFAULT_SPEC_PATH
from repro.tools.shape.rules import default_shape_rules

__all__ = [
    "DEFAULT_TARGET",
    "build_parser",
    "configure_parser",
    "main",
    "run_shape_command",
]

#: Default analysis target: the package's own source tree.
DEFAULT_TARGET = Path(__file__).resolve().parents[2]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the shape arguments to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include justified suppressions in the report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the shape rule codes and exit",
    )
    parser.add_argument(
        "--spec", type=Path, metavar="PATH", default=DEFAULT_SPEC_PATH,
        help="array-contract spec to check against (default: the "
             "checked-in array_contracts_spec.py)",
    )
    parser.add_argument(
        "--update-spec", action="store_true",
        help="rewrite the array-contract spec from the analyzed tree "
             "instead of checking against it",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """Build the standalone parser for ``python -m repro.tools.shape``."""
    parser = argparse.ArgumentParser(
        prog="repro shape",
        description="static array shape, dtype & aliasing analyzer "
                    "for the MLaaS reproduction",
    )
    return configure_parser(parser)


def _print_rules(out) -> int:
    for rule in default_shape_rules():
        print(f"{rule.code}  {rule.name:<22} {rule.description}", file=out)
    return 0


def run_shape_command(args: argparse.Namespace, out=None) -> int:
    """Execute a parsed shape invocation; returns the exit code."""
    out = out or sys.stdout
    if args.list_rules:
        return _print_rules(out)
    paths = args.paths or [DEFAULT_TARGET]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}",
                  file=sys.stderr)
            return EXIT_USAGE
    from repro.tools.shape.runner import run_shape

    if args.update_spec:
        from repro.tools.indexing import load_indexed_project
        from repro.tools.shape.contracts import derive_contracts, write_spec

        loaded = load_indexed_project(paths, root=Path.cwd())
        if loaded.n_files == 0:
            print("error: no python files found under the given paths",
                  file=sys.stderr)
            return EXIT_USAGE
        spec = derive_contracts(loaded.shape_model())
        write_spec(spec, args.spec)
        print(f"wrote derived array contracts of {len(spec)} estimator(s) "
              f"to {args.spec}", file=out)
        return 0

    result = run_shape(paths, root=Path.cwd(), spec_path=args.spec)
    if result.n_files == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return EXIT_USAGE
    reporter = REPORTERS[args.format]
    print(reporter(result, show_suppressed=args.show_suppressed), file=out)
    return result.exit_code


def main(argv=None, out=None) -> int:
    """Entry point for ``python -m repro.tools.shape``."""
    args = build_parser().parse_args(argv)
    return run_guarded(run_shape_command, args, out=out)
