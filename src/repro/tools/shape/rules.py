"""The S-rules: static array-contract findings over the shared shape model.

Each rule queries the :class:`~repro.tools.shape.arrays.ShapeModel`
built once per run and injected by the runner (mirroring how the
P-rules receive the loop model).  All six are project rules, but every
violation is anchored to the file and line of the offending expression,
so the shared suppression machinery applies unchanged.

The catalogue, in severity order of a typical finding:

* **S401** — shape-algebra mismatch: symbolically provable dimension
  conflicts at ``dot``/``matmul``/``concatenate``/``stack``/broadcast
  sites.
* **S403** — in-place mutation of an array the function does not own:
  a caller's buffer, a view of one, or a cache-stored array shared
  read-only across fits.
* **S402** — dtype instability on hot paths: builtin ``float``/``int``
  dtype names (implicit width) in the learn substrate, or an ``int32``
  array feeding an overflow-prone reduction.
* **S406** — an array parameter crossing the platform API boundary
  without ``asarray``/``check_array`` normalization, directly or
  through a resolved in-project callee.
* **S404** — fancy-indexed or strided access inside hot loops of a
  ``_COMPILED_SUBSTRATE`` module (the memory-layout complement of
  P306's allocation ban).
* **S405** — array-contract conformance: derived estimator
  ``fit``/``predict`` array contracts must match the checked-in
  ``array_contracts_spec.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.tools.lint.engine import Project, Rule, Violation
from repro.tools.shape.arrays import FunctionArrays, ShapeModel
from repro.tools.shape.contracts import (
    DEFAULT_SPEC_PATH,
    derive_contracts,
    load_spec,
)

__all__ = [
    "AliasMutationRule",
    "BoundaryValidationRule",
    "ContractSpecRule",
    "DtypeStabilityRule",
    "ShapeMismatchRule",
    "ShapeRule",
    "SubstrateAccessRule",
    "default_shape_rules",
]

#: Module prefix where the float64 determinism contract makes builtin
#: dtype names a finding: the numeric substrate itself.
_HOT_DTYPE_SCOPE = "repro.learn"

#: Module prefix whose public entry points are the platform API
#: boundary (S406): arrays arriving here come from user code.
_BOUNDARY_SCOPE = "repro.platforms"


class ShapeRule(Rule):
    """Base class for S-rules; the runner injects the shape model."""

    def __init__(self, model: ShapeModel | None = None):
        self.model = model

    def _violation(self, fn: FunctionArrays, line: int, col: int,
                   message: str) -> Violation:
        qualname = fn.key[1] or "<module>"
        return Violation(
            code=self.code,
            message=f"{message} [{qualname}]",
            path=fn.relpath,
            line=line,
            col=col,
        )

    def _functions(self) -> Iterable[FunctionArrays]:
        analyzed = {
            m.dotted_name for m in self.model.index.project.modules
        }
        for key in sorted(self.model.functions):
            if key[0] in analyzed:
                yield self.model.functions[key]


class ShapeMismatchRule(ShapeRule):
    """S401: provable dimension conflict at a shape-algebra site."""

    code = "S401"
    name = "shape-mismatch"
    description = (
        "At dot/matmul/concatenate/stack/broadcast sites where both "
        "operand shapes are symbolically known over the "
        "samples/features/estimators/iterations/classes vocabulary, "
        "the joined dimensions must agree (literal 1 broadcasts, "
        "unknown dims match anything)."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag symbolically provable shape conflicts."""
        for fn in self._functions():
            for line, col, text in fn.mismatch_sites:
                yield self._violation(fn, line, col, text)


class DtypeStabilityRule(ShapeRule):
    """S402: dtype instability on the numeric substrate's hot paths."""

    code = "S402"
    name = "dtype-instability"
    description = (
        "The substrate's bit-identical contract pins arrays to "
        "np.float64/np.intp; a builtin float/int dtype name in "
        "repro.learn leaves the width to the platform, and an int32 "
        "array feeding cumsum/bincount/sum can silently overflow."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag builtin dtype names and overflow-prone int32 reductions."""
        for fn in self._functions():
            in_scope = fn.key[0].startswith(_HOT_DTYPE_SCOPE)
            for line, col, kind, text in fn.dtype_sites:
                if kind == "builtin-float":
                    if in_scope:
                        yield self._violation(
                            fn, line, col,
                            f"builtin dtype `float` in {text}; spell it "
                            "np.float64 to pin the determinism contract's "
                            "width",
                        )
                elif kind == "builtin-int":
                    if in_scope:
                        yield self._violation(
                            fn, line, col,
                            f"builtin dtype `int` in {text} is "
                            "platform-width; spell it np.intp (indices) "
                            "or np.int64 (counts)",
                        )
                elif kind == "int32-reduce":
                    yield self._violation(
                        fn, line, col,
                        f"int32 array feeds {text}; the running total "
                        "can overflow 32 bits — widen to np.intp before "
                        "reducing",
                    )


class AliasMutationRule(ShapeRule):
    """S403: in-place mutation of an aliased or cache-stored array."""

    code = "S403"
    name = "alias-mutation"
    description = (
        "Writing in place into a caller-owned parameter, a view of "
        "one, or an array handed out by a FitCache mutates data some "
        "other owner still reads; copy first (FitCache results are "
        "shared read-only across fits and across the C204 process "
        "boundary)."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag in-place writes landing in arrays the function doesn't own."""
        for fn in self._functions():
            for line, col, name, owner, base, text in fn.mutation_sites:
                if owner == "cache":
                    detail = (
                        f"{text} mutates cache-stored array {name} in "
                        "place; FitCache results are shared read-only — "
                        "copy before writing"
                    )
                else:
                    via = f" (a view of {base})" if base and base != name \
                        else ""
                    detail = (
                        f"{text} mutates caller-owned array {name}"
                        f"{via} in place; copy before writing or "
                        "document the out-parameter contract"
                    )
                yield self._violation(fn, line, col, detail)


class SubstrateAccessRule(ShapeRule):
    """S404: cache-hostile access inside compiled-substrate hot loops."""

    code = "S404"
    name = "substrate-access"
    description = (
        "Modules tagged `_COMPILED_SUBSTRATE = True` promise "
        "contiguous streaming inner loops; a loop-invariant fancy "
        "gather (hoistable copy per iteration) or a strided "
        "column/transposed read inside a per-row loop there defeats "
        "the compiled layout (complements P306's allocation ban)."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag fancy/strided hot-loop reads in tagged modules."""
        tagged = set()
        for module in project.modules:
            if module.top_level_assign("_COMPILED_SUBSTRATE") is not None:
                tagged.add(module.dotted_name)
        if not tagged:
            return
        for fn in self._functions():
            if fn.key[0] not in tagged:
                continue
            for line, col, kind, text in fn.access_sites:
                if kind == "invariant-gather":
                    message = (
                        f"loop-invariant fancy gather {text} copies the "
                        "same selection every iteration; hoist it above "
                        "the loop"
                    )
                elif kind == "strided-column":
                    message = (
                        f"strided column read {text} inside a per-row "
                        "hot loop; transpose or copy the column to a "
                        "contiguous buffer outside the loop"
                    )
                else:
                    message = (
                        f"non-contiguous array read {text} inside a "
                        "per-row hot loop; materialize a contiguous "
                        "buffer outside the loop"
                    )
                yield self._violation(fn, line, col, message)


class ContractSpecRule(ShapeRule):
    """S405: derived array contracts must match the checked-in spec."""

    code = "S405"
    name = "array-contract-spec"
    description = (
        "Each estimator's fit/predict/predict_proba/transform array "
        "contract (input shapes, validated parameters, return "
        "shape/dtype) is derived from the shape model and compared "
        "against array_contracts_spec.py; run `repro shape "
        "--update-spec` to record an intentional change."
    )

    def __init__(self, model: ShapeModel | None = None,
                 spec_path: Path = DEFAULT_SPEC_PATH):
        super().__init__(model)
        self.spec_path = spec_path

    def _spec_relpath(self) -> str:
        for module in self.model.index.modules.values():
            try:
                if module.path.resolve() == self.spec_path.resolve():
                    return module.relpath
            except OSError:  # pragma: no cover - resolve on a dead path
                continue
        return str(self.spec_path)

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Compare a fresh derivation against the checked-in spec."""
        derived = derive_contracts(self.model)
        spec = load_spec(self.spec_path)
        spec_relpath = self._spec_relpath()
        if spec is None:
            yield Violation(
                code=self.code,
                message=(
                    "array-contract spec is missing or unreadable at "
                    f"{self.spec_path}; run `repro shape --update-spec`"
                ),
                path=spec_relpath,
                line=1,
            )
            return
        index = self.model.index
        # literal_eval round-trips tuples exactly, so derived entries
        # compare structurally against the checked-in literals.
        for class_path in sorted(derived):
            module_name, _, class_name = class_path.rpartition(".")
            node = index.classes.get((module_name, class_name))
            line = node.lineno if node is not None else 1
            relpath = index.modules[module_name].relpath \
                if module_name in index.modules else spec_relpath
            if class_path not in spec:
                yield Violation(
                    code=self.code,
                    message=(
                        f"estimator {class_path} is not in the "
                        "array-contract spec; run `repro shape "
                        "--update-spec` to record its derived contract"
                    ),
                    path=relpath, line=line,
                )
            elif spec[class_path] != derived[class_path]:
                changed = sorted(
                    method for method in
                    set(spec[class_path]) | set(derived[class_path])
                    if spec[class_path].get(method)
                    != derived[class_path].get(method)
                )
                yield Violation(
                    code=self.code,
                    message=(
                        f"derived array contract of {class_path} "
                        f"disagrees with the spec on {', '.join(changed)}; "
                        "restore the recorded contract or run `repro "
                        "shape --update-spec` to accept the change"
                    ),
                    path=relpath, line=line,
                )
        analyzed = {m.dotted_name for m in index.project.modules}
        for class_path in sorted(set(spec) - set(derived)):
            module_name = class_path.rpartition(".")[0]
            if module_name in analyzed:
                yield Violation(
                    code=self.code,
                    message=(
                        f"spec entry {class_path} matches no analyzed "
                        "estimator (renamed or removed); run `repro "
                        "shape --update-spec` to drop it"
                    ),
                    path=spec_relpath, line=1,
                )


class BoundaryValidationRule(ShapeRule):
    """S406: unvalidated arrays crossing the platform API boundary."""

    code = "S406"
    name = "boundary-validation"
    description = (
        "Public entry points of repro.platforms receive arrays from "
        "user code; every X/y parameter must pass through "
        "check_array/check_X_y/asarray (directly or via a resolved "
        "in-project callee) before the substrate consumes it, so "
        "dtype and shape are normalized at the boundary."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag public boundary entry points with unvalidated array params."""
        validated = self.model.validated_params()
        for fn in self._functions():
            if not fn.key[0].startswith(_BOUNDARY_SCOPE):
                continue
            qualname = fn.key[1]
            parts = qualname.split(".")
            if any(part.startswith("_") for part in parts):
                continue
            info = self.model.index.functions.get(fn.key)
            if info is None:
                continue
            array_params = sorted(
                name for name, fact in fn.facts.items()
                if not name.startswith("self.") and fact.owner == "caller"
            )
            missing = [name for name in array_params
                       if name not in validated.get(fn.key, set())]
            if not missing:
                continue
            yield self._violation(
                fn, info.node.lineno, info.node.col_offset,
                f"array parameter(s) {', '.join(missing)} cross the "
                "platform API boundary without asarray/check_array "
                "normalization; validate at the entry point",
            )


def default_shape_rules(model: ShapeModel | None = None,
                        spec_path: Path | None = None) -> list:
    """The six S-rules, in code order, sharing one shape model."""
    return [
        ShapeMismatchRule(model),
        DtypeStabilityRule(model),
        AliasMutationRule(model),
        SubstrateAccessRule(model),
        ContractSpecRule(model, spec_path or DEFAULT_SPEC_PATH),
        BoundaryValidationRule(model),
    ]
