"""Checked-in estimator array contracts (regenerate: ``repro shape --update-spec``).

The array-level analogue of the paper's Table 1: for every estimator in
the analyzed tree, the symbolic input shapes of its
``fit``/``predict``/``predict_proba``/``transform`` methods over the
(samples, features, estimators, iterations, classes) dimension
vocabulary, which array parameters each method routes through a
validator (``in`` lists the array parameters, ``validates`` the subset
reaching ``check_X_y``/``check_array``/``asarray`` directly or through a
resolved in-project call), and the derived symbolic shape/dtype of the
return value (``'self'`` for fluent ``fit``, ``None`` when the
interpreter cannot name it).  S405 fails when a fresh derivation
disagrees with this file, so intentional contract changes are
re-recorded here and show up in review as a spec diff.

This file is data, not code: edit it only via ``--update-spec``.
"""

__all__ = ["ARRAY_CONTRACTS"]


ARRAY_CONTRACTS = {
    'repro.learn.bayes.BernoulliNB': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples',),
            'out_dtype': None,
        },
    },
    'repro.learn.bayes.GaussianNB': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': (),
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.ensemble.bagging.BaggingClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples', 2),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.ensemble.boosting.AdaBoostClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.ensemble.boosting.GradientBoostingClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.ensemble.forest.RandomForestClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.feature_selection.fisher_lda.FisherLDATransform': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('?',),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.feature_selection.selector.SelectKBest': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples',),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.linear.base.LinearBinaryClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.model_selection.GridSearchCV': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': (),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.multiclass.OneVsRestClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': (),
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.neighbors.KNeighborsClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples', 2),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.neural.MLPClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.pipeline.Pipeline': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': (),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': (),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': (),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.preprocessing.binning.QuantileBinningTransform': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X',),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.preprocessing.encoding.OrdinalEncoder': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X',),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': 'float64',
        },
    },
    'repro.learn.preprocessing.imputation.MedianImputer': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X',),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples', 'features'),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.preprocessing.scalers.IdentityTransform': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X',),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples', 'features'),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.preprocessing.scalers.MaxAbsScaler': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X',),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples', 'features'),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.preprocessing.scalers.MinMaxScaler': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X',),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples', 'features'),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.preprocessing.scalers.StandardScaler': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X',),
            'out': 'self',
            'out_dtype': None,
        },
        'transform': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples', 'features'),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.regression.DecisionTreeRegressor': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples',),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.regression.KNeighborsRegressor': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples',),
            'out_dtype': 'float64',
        },
    },
    'repro.learn.regression.LinearRegression': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.tree.cart.DecisionTreeClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
    'repro.learn.tree.jungle.DecisionJungleClassifier': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': ('X', 'y'),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
        'predict_proba': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': None,
            'out_dtype': None,
        },
    },
}
