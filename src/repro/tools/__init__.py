"""Developer tooling for the reproduction.

``repro.tools.lint``
    AST-based invariant checker (``repro lint``) enforcing the
    reproduction's contracts: determinism, the estimator protocol,
    Table 1 conformance, exception hygiene and export sync.

``repro.tools.flow``
    Project-wide data-flow & architecture analyzer (``repro flow``):
    layering DAG, leakage taint, seed flow, dead code, API drift.

``repro.tools.race``
    Static concurrency & shared-state analyzer (``repro race``): lock
    ordering, unguarded shared writes, check-then-act races,
    process-boundary captures, blocking under locks, shared RNGs.

``repro.tools.perf``
    Static complexity & hot-path analyzer (``repro perf``): axis loops,
    quadratic growth, invariant calls, uncached refits, complexity-spec
    conformance, hot-loop allocations.

``repro.tools.indexing``
    Memoized project loading shared by the analyzers, so one process
    running several tools parses and indexes the tree exactly once.

``repro.tools.exitcodes``
    The exit-code taxonomy (clean / findings / usage / crash) every
    analyzer CLI reports through.
"""

from repro.tools.exitcodes import run_guarded
from repro.tools.lint import (
    LintResult,
    Violation,
    lint_paths,
    lint_source,
)
from repro.tools.perf import perf_paths
from repro.tools.race import race_paths

__all__ = [
    "LintResult",
    "Violation",
    "lint_paths",
    "lint_source",
    "perf_paths",
    "race_paths",
    "run_guarded",
]
