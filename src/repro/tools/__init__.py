"""Developer tooling for the reproduction.

``repro.tools.lint``
    AST-based invariant checker (``repro lint``) enforcing the
    reproduction's contracts: determinism, the estimator protocol,
    Table 1 conformance, exception hygiene and export sync.
"""

from repro.tools.lint import (
    LintResult,
    Violation,
    lint_paths,
    lint_source,
)

__all__ = ["LintResult", "Violation", "lint_paths", "lint_source"]
