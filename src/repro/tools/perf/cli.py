"""Command-line front end: ``repro perf`` / ``python -m repro.tools.perf``.

Exit codes follow the shared taxonomy of :mod:`repro.tools.exitcodes`:

* ``0`` — clean (suppressed findings allowed, or ``--update-spec`` ran);
* ``1`` — at least one unsuppressed violation;
* ``2`` — usage error (nonexistent path, no files found, bad profile);
* ``3`` — the analyzer itself crashed (traceback on stderr).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.tools.exitcodes import EXIT_USAGE, run_guarded
from repro.tools.lint.reporters import REPORTERS
from repro.tools.perf.complexity import DEFAULT_SPEC_PATH
from repro.tools.perf.rules import default_perf_rules

__all__ = [
    "DEFAULT_TARGET",
    "build_parser",
    "configure_parser",
    "main",
    "run_perf_command",
]

#: Default analysis target: the package's own source tree.
DEFAULT_TARGET = Path(__file__).resolve().parents[2]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the perf arguments to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include justified suppressions in the report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the perf rule codes and exit",
    )
    parser.add_argument(
        "--top", type=int, metavar="N", default=0,
        help="append a ranked top-N hotspot section to the text report",
    )
    parser.add_argument(
        "--profile", type=Path, metavar="JSON",
        help="cProfile-derived JSON (see repro.tools.perf.report) used "
             "to re-rank the hotspot section by observed time",
    )
    parser.add_argument(
        "--spec", type=Path, metavar="PATH", default=DEFAULT_SPEC_PATH,
        help="complexity spec to check against (default: the checked-in "
             "complexity_spec.py)",
    )
    parser.add_argument(
        "--update-spec", action="store_true",
        help="rewrite the complexity spec from the analyzed tree "
             "instead of checking against it",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """Build the standalone parser for ``python -m repro.tools.perf``."""
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="static complexity and hot-path analyzer "
                    "for the MLaaS reproduction",
    )
    return configure_parser(parser)


def _print_rules(out) -> int:
    for rule in default_perf_rules():
        print(f"{rule.code}  {rule.name:<22} {rule.description}", file=out)
    return 0


def run_perf_command(args: argparse.Namespace, out=None) -> int:
    """Execute a parsed perf invocation; returns the exit code."""
    out = out or sys.stdout
    if args.list_rules:
        return _print_rules(out)
    paths = args.paths or [DEFAULT_TARGET]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}",
                  file=sys.stderr)
            return EXIT_USAGE
    profile = None
    if args.profile is not None:
        from repro.tools.perf.report import load_profile

        try:
            profile = load_profile(args.profile)
        except (OSError, ValueError) as exc:
            print(f"error: could not read profile {args.profile}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
    from repro.tools.perf.runner import run_perf

    if args.update_spec:
        from repro.tools.indexing import load_indexed_project
        from repro.tools.perf.complexity import derive_complexity, write_spec

        loaded = load_indexed_project(paths, root=Path.cwd())
        if loaded.n_files == 0:
            print("error: no python files found under the given paths",
                  file=sys.stderr)
            return EXIT_USAGE
        spec = derive_complexity(loaded.loop_model())
        write_spec(spec, args.spec)
        print(f"wrote derived complexity of {len(spec)} estimator(s) "
              f"to {args.spec}", file=out)
        return 0

    result = run_perf(paths, root=Path.cwd(), spec_path=args.spec)
    if result.n_files == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return EXIT_USAGE
    reporter = REPORTERS[args.format]
    print(reporter(result, show_suppressed=args.show_suppressed), file=out)
    if args.top > 0 and args.format == "text":
        from repro.tools.perf.report import rank_hotspots, render_hotspots

        ranked = rank_hotspots(result.violations, profile=profile)
        render_hotspots(ranked, args.top, out)
    return result.exit_code


def main(argv=None, out=None) -> int:
    """Entry point for ``python -m repro.tools.perf``."""
    args = build_parser().parse_args(argv)
    return run_guarded(run_perf_command, args, out=out)
