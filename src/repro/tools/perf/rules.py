"""The P-rules: static performance findings over the shared loop model.

Each rule queries the :class:`~repro.tools.perf.loops.LoopModel` built
once per run and injected by the runner (mirroring how the C-rules
receive the concurrency index).  All six are project rules, but every
violation is anchored to the file and line of the offending loop or
call, so the shared suppression machinery applies unchanged.

The catalogue, in severity order of a typical finding:

* **P302** — quadratic growth: an array/list rebound through
  ``np.append``/``np.concatenate``/self-concatenation inside a loop.
* **P304** — repeated pure fits on a search path not routed through the
  :class:`~repro.learn.cache.FitCache`.
* **P301** — a Python-level loop over an ndarray axis doing per-element
  work (vectorization candidate; severity scales with nest depth).
* **P306** — fresh-buffer allocation inside a per-row hot loop of a
  compiled-substrate module (one tagged ``_COMPILED_SUBSTRATE``).
* **P303** — a loop-invariant pure numpy call that should be hoisted.
* **P305** — complexity-spec conformance: derived ``fit``/``predict``
  loop-nest depths must match the checked-in ``complexity_spec.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.tools.lint.engine import Project, Rule, Violation
from repro.tools.perf.complexity import (
    DEFAULT_SPEC_PATH,
    SPEC_DIMS,
    derive_complexity,
    load_spec,
)
from repro.tools.perf.loops import FunctionLoops, LoopModel

__all__ = [
    "AxisLoopRule",
    "ComplexitySpecRule",
    "HotLoopAllocRule",
    "InvariantCallRule",
    "PerfRule",
    "QuadraticGrowthRule",
    "UncachedRefitRule",
    "default_perf_rules",
]

#: Module prefixes where repeated pure fits matter (search/orchestration
#: paths): the substrate's own internal fits are its business.
_REFIT_SCOPES = (
    "repro.learn.model_selection",
    "repro.learn.pipeline",
    "repro.platforms",
    "repro.core",
    "repro.analysis",
    "repro.service",
)


class PerfRule(Rule):
    """Base class for P-rules; the runner injects the loop model."""

    def __init__(self, model: LoopModel | None = None):
        self.model = model

    def _violation(self, fn: FunctionLoops, line: int, col: int,
                   message: str) -> Violation:
        qualname = fn.key[1] or "<module>"
        return Violation(
            code=self.code,
            message=f"{message} [{qualname}]",
            path=fn.relpath,
            line=line,
            col=col,
        )

    def _functions(self) -> Iterable[FunctionLoops]:
        analyzed = {
            m.dotted_name for m in self.model.index.project.modules
        }
        for key in sorted(self.model.functions):
            if key[0] in analyzed:
                yield self.model.functions[key]


class AxisLoopRule(PerfRule):
    """P301: Python-level loop over an ndarray axis doing per-element work."""

    code = "P301"
    name = "axis-loop"
    description = (
        "A for-loop iterating a samples/features axis with per-element "
        "array reads/writes is a vectorization candidate; severity "
        "scales with the statically inferred loop-nest depth."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag unchunked axis loops whose bodies do per-element work."""
        for fn in self._functions():
            for loop in fn.loops:
                if loop.chunked or loop.dim not in ("samples", "features"):
                    continue
                per_element = loop.elem_writes > 0 and loop.array_ops > 0
                accumulating = (loop.dim == "samples" and loop.direct
                                and loop.appends > 0)
                if not (per_element or accumulating):
                    continue
                work = (
                    f"{loop.elem_writes} per-element array write(s)"
                    if per_element else
                    f"{loop.appends} per-sample append(s)"
                )
                yield self._violation(
                    fn, loop.lineno, loop.col,
                    f"depth-{loop.nest_depth} Python loop over the "
                    f"{loop.dim} axis ({loop.iter_source}) does {work}; "
                    "vectorize with whole-array numpy operations",
                )


class QuadraticGrowthRule(PerfRule):
    """P302: growing an array/list by re-concatenation inside a loop."""

    code = "P302"
    name = "quadratic-growth"
    description = (
        "Rebinding a name through np.append/np.concatenate/np.vstack "
        "(or list self-concatenation) inside a loop copies the "
        "accumulated prefix every iteration: quadratic total work.  "
        "Collect into a list and concatenate once, or preallocate."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag self-referential copy-producing rebinds inside loops."""
        for fn in self._functions():
            for loop in fn.loops:
                for line, col, text in loop.growth_sites:
                    yield self._violation(
                        fn, line, col,
                        f"depth-{loop.nest_depth} loop grows an array by "
                        f"copying it each iteration ({text}); collect "
                        "parts and concatenate once after the loop",
                    )


class InvariantCallRule(PerfRule):
    """P303: a loop-invariant pure numpy call recomputed every iteration."""

    code = "P303"
    name = "invariant-call"
    description = (
        "A pure numpy call whose arguments are untouched by the "
        "enclosing loop recomputes the same value every iteration; "
        "hoist it above the loop.  Allocators are exempt (hoisting "
        "them would share one buffer across iterations)."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag hoistable pure calls with loop-invariant arguments."""
        for fn in self._functions():
            for loop in fn.loops:
                for line, col, text in loop.invariant_calls:
                    yield self._violation(
                        fn, line, col,
                        f"loop-invariant pure call {text} is recomputed "
                        "every iteration; hoist it above the "
                        f"{loop.kind}-loop at line {loop.lineno}",
                    )


class UncachedRefitRule(PerfRule):
    """P304: repeated pure fits on a search path bypassing the FitCache."""

    code = "P304"
    name = "uncached-refit"
    description = (
        "A loop on a grid-search/orchestration path that constructs an "
        "estimator (clone or constructor) and fits it each iteration, "
        "in a function that never touches a FitCache/memory handle, "
        "repeats pure work the content-keyed cache exists to absorb."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag per-iteration clone+fit in cache-less search functions."""
        estimators = self.model.index.project.subclasses_of(
            ["BaseEstimator"])
        makers = estimators | {"clone"}
        for fn in self._functions():
            if fn.touches_cache or not fn.key[0].startswith(_REFIT_SCOPES):
                continue
            for loop in fn.loops:
                fitted = {recv for _, _, recv in loop.fit_calls}
                for name, ctor in sorted(loop.made_estimators.items()):
                    if ctor in makers and name in fitted:
                        yield self._violation(
                            fn, loop.lineno, loop.col,
                            f"loop builds {name} = {ctor}(...) and fits "
                            "it every iteration without a FitCache; "
                            "route the fit through the cache or document "
                            "why its inputs never repeat",
                        )


class ComplexitySpecRule(PerfRule):
    """P305: derived estimator complexity must match the checked-in spec."""

    code = "P305"
    name = "complexity-spec"
    description = (
        "Each estimator's fit/predict loop-nest depth over "
        f"{SPEC_DIMS} is derived from the loop model and compared "
        "against complexity_spec.py; run `repro perf --update-spec` "
        "to record an intentional change."
    )

    def __init__(self, model: LoopModel | None = None,
                 spec_path: Path = DEFAULT_SPEC_PATH):
        super().__init__(model)
        self.spec_path = spec_path

    def _spec_relpath(self) -> str:
        for module in self.model.index.modules.values():
            try:
                if module.path.resolve() == self.spec_path.resolve():
                    return module.relpath
            except OSError:  # pragma: no cover - resolve on a dead path
                continue
        return str(self.spec_path)

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Compare a fresh derivation against the checked-in spec."""
        derived = derive_complexity(self.model)
        spec = load_spec(self.spec_path)
        spec_relpath = self._spec_relpath()
        if spec is None:
            yield Violation(
                code=self.code,
                message=(
                    "complexity spec is missing or unreadable at "
                    f"{self.spec_path}; run `repro perf --update-spec`"
                ),
                path=spec_relpath,
                line=1,
            )
            return
        index = self.model.index
        for class_path in sorted(derived):
            module_name, _, class_name = class_path.rpartition(".")
            node = index.classes.get((module_name, class_name))
            line = node.lineno if node is not None else 1
            relpath = index.modules[module_name].relpath \
                if module_name in index.modules else spec_relpath
            if class_path not in spec:
                yield Violation(
                    code=self.code,
                    message=(
                        f"estimator {class_path} is not in the complexity "
                        "spec; run `repro perf --update-spec` to record "
                        f"its derived cost {derived[class_path]!r}"
                    ),
                    path=relpath, line=line,
                )
            elif spec[class_path] != derived[class_path]:
                yield Violation(
                    code=self.code,
                    message=(
                        f"derived complexity of {class_path} "
                        f"({derived[class_path]!r}) disagrees with the "
                        f"spec ({spec[class_path]!r}); vectorize back to "
                        "the recorded depth or run `repro perf "
                        "--update-spec` to accept the change"
                    ),
                    path=relpath, line=line,
                )
        analyzed = {m.dotted_name for m in index.project.modules}
        for class_path in sorted(set(spec) - set(derived)):
            module_name = class_path.rpartition(".")[0]
            if module_name in analyzed:
                yield Violation(
                    code=self.code,
                    message=(
                        f"spec entry {class_path} matches no analyzed "
                        "estimator (renamed or removed); run `repro perf "
                        "--update-spec` to drop it"
                    ),
                    path=spec_relpath, line=1,
                )


class HotLoopAllocRule(PerfRule):
    """P306: allocation inside per-row hot loops of compiled substrate."""

    code = "P306"
    name = "hot-loop-alloc"
    description = (
        "Modules tagged `_COMPILED_SUBSTRATE = True` promise "
        "allocation-free per-row inner loops; a numpy allocator inside "
        "a samples-dim or while loop there defeats the compiled "
        "layout's point."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Flag allocator calls in hot loops of tagged modules."""
        tagged = set()
        for module in project.modules:
            if module.top_level_assign("_COMPILED_SUBSTRATE") is not None:
                tagged.add(module.dotted_name)
        if not tagged:
            return
        for fn in self._functions():
            if fn.key[0] not in tagged:
                continue
            for loop in fn.loops:
                hot = loop.dim == "samples" or loop.kind == "while" or \
                    "samples" in loop.enclosing_dims
                if not hot:
                    continue
                for line, col, text in loop.alloc_sites:
                    yield self._violation(
                        fn, line, col,
                        f"allocation {text} inside a per-row hot loop of "
                        "a compiled-substrate module; preallocate "
                        "outside the loop and reuse the buffer",
                    )


def default_perf_rules(model: LoopModel | None = None,
                       spec_path: Path | None = None) -> list:
    """The six P-rules, in code order, sharing one loop model."""
    return [
        AxisLoopRule(model),
        QuadraticGrowthRule(model),
        InvariantCallRule(model),
        UncachedRefitRule(model),
        ComplexitySpecRule(model, spec_path or DEFAULT_SPEC_PATH),
        HotLoopAllocRule(model),
    ]
