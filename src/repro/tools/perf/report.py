"""Ranked hotspot report for ``repro perf`` (``--top`` / ``--profile``).

Static findings are not all equally urgent: a quadratic-growth site
beats an unhoisted ``np.log``, and a depth-3 nest beats a depth-1 pass.
:func:`rank_hotspots` orders the run's violations by a base severity per
rule code scaled by the loop-nest depth the rule encoded in its message
(the ``depth-N`` token), and — when the user supplies ``--profile`` — by
observed time: a cProfile-derived JSON re-weights every finding by the
cumulative seconds of the function it lands in, so the report's head is
"statically suspicious *and* actually hot".

The profile format is deliberately tiny — a JSON array of
``{"file": ..., "line": ..., "cumtime": ...}`` function records —
produced from any cProfile dump with :func:`convert_pstats`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = [
    "convert_pstats",
    "load_profile",
    "rank_hotspots",
    "render_hotspots",
]

#: Base severity per rule code (see the catalogue in ``rules.py``).
_BASE_WEIGHT = {
    "P302": 5.0,
    "P304": 4.0,
    "P301": 3.0,
    "P306": 3.0,
    "P303": 2.0,
    "P305": 1.0,
}

_DEPTH = re.compile(r"depth-(\d+)")


def load_profile(path: Path) -> list:
    """Function-time records from a ``--profile`` JSON file.

    Accepts either a bare array or ``{"entries": [...]}``; each record
    needs ``file`` (path, matched by suffix), ``line`` (the function's
    def line) and ``cumtime`` (cumulative seconds).  Malformed records
    are dropped rather than fatal — a partial profile still ranks.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, dict):
        payload = payload.get("entries", [])
    records = []
    for entry in payload if isinstance(payload, list) else []:
        try:
            records.append({
                "file": str(entry["file"]),
                "line": int(entry["line"]),
                "cumtime": float(entry["cumtime"]),
            })
        except (KeyError, TypeError, ValueError):
            continue
    return records


def convert_pstats(dump_path: Path) -> list:
    """Profile records (see :func:`load_profile`) from a cProfile dump."""
    import pstats

    stats = pstats.Stats(str(dump_path))
    records = []
    for (filename, lineno, _name), row in stats.stats.items():
        cumtime = row[3]
        if filename.startswith("<") or cumtime <= 0:
            continue
        records.append(
            {"file": filename, "line": lineno, "cumtime": cumtime}
        )
    return records


def _observed_time(violation, profile: list) -> float:
    """Cumtime of the profiled function enclosing ``violation``, if any.

    A record matches when its file path ends with the violation's path
    (or vice versa — profiles carry absolute paths, findings repo-
    relative ones) and its def line is the greatest one at or above the
    finding's line.
    """
    best_line, best_time = -1, 0.0
    for record in profile:
        if not (record["file"].endswith(violation.path)
                or violation.path.endswith(record["file"])):
            continue
        if record["line"] <= violation.line and record["line"] > best_line:
            best_line, best_time = record["line"], record["cumtime"]
    return best_time


def rank_hotspots(violations: list, profile: list | None = None) -> list:
    """``(score, violation)`` pairs, highest score first.

    Score = base weight of the rule code × the nest depth its message
    reports (``depth-N``, default 1) × ``(1 + cumtime)`` when a profile
    record covers the finding.  Suppressed findings are excluded — a
    documented suppression is a closed case, not a hotspot.
    """
    ranked = []
    for violation in violations:
        if violation.suppressed:
            continue
        score = _BASE_WEIGHT.get(violation.code, 1.0)
        match = _DEPTH.search(violation.message)
        if match:
            score *= max(1, int(match.group(1)))
        if profile:
            score *= 1.0 + _observed_time(violation, profile)
        ranked.append((score, violation))
    ranked.sort(key=lambda pair: (-pair[0], pair[1].path, pair[1].line,
                                  pair[1].code))
    return ranked


def render_hotspots(ranked: list, top: int, out) -> None:
    """Print the ``--top N`` hotspot section of the report."""
    shown = ranked[:top]
    print(file=out)
    print(f"top {len(shown)} hotspot(s) of {len(ranked)} finding(s):",
          file=out)
    for position, (score, violation) in enumerate(shown, start=1):
        print(f"{position:3d}. [{score:8.2f}] {violation.code} "
              f"{violation.location}  {violation.message}", file=out)
