"""Checked-in loop-nest complexity spec (regenerate: ``repro perf --update-spec``).

Static analogue of the paper's Table 1: for every estimator in the
analyzed tree, the derived maximum loop-nest depth of ``fit`` and
``predict`` along the (samples, features, estimators, iterations) axes,
folded over the in-project call graph by
:mod:`repro.tools.perf.complexity`.  A depth of 1 along ``samples``
reads as "one Python-level pass over the rows"; vectorized numpy work
does not count.  P305 fails when a fresh derivation disagrees with this
file, so intentional complexity changes are re-recorded here and show up
in review as a spec diff.

This file is data, not code: edit it only via ``--update-spec``.
"""

__all__ = ["COMPLEXITY"]


COMPLEXITY = {
    'repro.learn.bayes.BernoulliNB': {
        'fit': {},
        'predict': {},
    },
    'repro.learn.bayes.GaussianNB': {
        'fit': {},
        'predict': {},
    },
    'repro.learn.ensemble.bagging.BaggingClassifier': {
        'fit': {'estimators': 1},
        'predict': {},
    },
    'repro.learn.ensemble.boosting.AdaBoostClassifier': {
        'fit': {'estimators': 1},
        'predict': {},
    },
    'repro.learn.ensemble.boosting.GradientBoostingClassifier': {
        'fit': {'estimators': 1},
        'predict': {},
    },
    'repro.learn.ensemble.forest.RandomForestClassifier': {
        'fit': {'estimators': 1},
        'predict': {},
    },
    'repro.learn.feature_selection.fisher_lda.FisherLDATransform': {
        'fit': {},
    },
    'repro.learn.feature_selection.selector.SelectKBest': {
        'fit': {},
    },
    'repro.learn.linear.base.LinearBinaryClassifier': {
        'fit': {},
        'predict': {},
    },
    'repro.learn.model_selection.GridSearchCV': {
        'fit': {},
        'predict': {},
    },
    'repro.learn.multiclass.OneVsRestClassifier': {
        'fit': {},
        'predict': {},
    },
    'repro.learn.neighbors.KNeighborsClassifier': {
        'fit': {},
        'predict': {'samples': 1},
    },
    'repro.learn.neural.MLPClassifier': {
        'fit': {'samples': 1, 'iterations': 1},
        'predict': {},
    },
    'repro.learn.pipeline.Pipeline': {
        'fit': {},
        'predict': {},
    },
    'repro.learn.preprocessing.binning.QuantileBinningTransform': {
        'fit': {},
    },
    'repro.learn.preprocessing.encoding.OrdinalEncoder': {
        'fit': {'features': 2},
    },
    'repro.learn.preprocessing.imputation.MedianImputer': {
        'fit': {},
    },
    'repro.learn.preprocessing.scalers.IdentityTransform': {
        'fit': {},
    },
    'repro.learn.preprocessing.scalers.MaxAbsScaler': {
        'fit': {},
    },
    'repro.learn.preprocessing.scalers.MinMaxScaler': {
        'fit': {},
    },
    'repro.learn.preprocessing.scalers.StandardScaler': {
        'fit': {},
    },
    'repro.learn.regression.DecisionTreeRegressor': {
        'fit': {},
        'predict': {},
    },
    'repro.learn.regression.KNeighborsRegressor': {
        'fit': {},
        'predict': {'samples': 1},
    },
    'repro.learn.regression.LinearRegression': {
        'fit': {},
        'predict': {},
    },
    'repro.learn.tree.cart.DecisionTreeClassifier': {
        'fit': {'features': 1},
        'predict': {},
    },
    'repro.learn.tree.jungle.DecisionJungleClassifier': {
        'fit': {'estimators': 1},
        'predict': {},
    },
}
