"""Per-function loop-nest model for ``repro perf``.

Walks every function the shared :class:`~repro.tools.flow.graph.FlowIndex`
knows about and extracts the structure the P-rules query:

* the tree of ``for``/``while`` loops with each loop's **iteration
  dimension** — which axis of the problem it walks (``samples``,
  ``features``, ``estimators``, ``iterations``, ``classes``) — inferred
  from the iterable (``range(X.shape[0])``, ``rng.permutation(n)``,
  direct iteration over a known ndarray, ``self.n_estimators`` …);
* per-loop body facts: element-wise ndarray writes, array-traversing
  operations, per-element list appends, quadratic growth sites
  (``x = np.append(x, …)``), numpy allocations, and loop-invariant pure
  numpy calls that could be hoisted;
* per-call-site enclosing-dimension chains, which
  :mod:`repro.tools.perf.complexity` folds over the call graph into
  per-estimator loop-nest depths.

The model is deliberately approximate in the same direction as the flow
and race models: ndarray-ness is propagated from ``X``/``y`` parameters,
``check_array``/``check_X_y`` results and ``np.*`` constructors through
simple assignments only, comprehensions are treated as opaque
expressions, and nested ``def``s are separate (unmodelled) scopes — so
the rules built on top err toward silence, not false alarms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.tools.flow.graph import FlowIndex, FunctionInfo

__all__ = [
    "DEPTH_CAP",
    "DIMS",
    "FunctionLoops",
    "LoopInfo",
    "LoopModel",
    "build_loop_model",
]

#: Iteration dimensions the model distinguishes, in display order.
DIMS = ("samples", "features", "estimators", "iterations", "classes")

#: Ceiling for derived loop-nest depths: keeps the interprocedural
#: fixpoint finite on recursive call chains (tree growth) and the spec
#: stable.
DEPTH_CAP = 6

_SAMPLE_NAMES = frozenset({"n_samples", "n_rows", "n_points", "n_queries"})
_FEATURE_NAMES = frozenset({"n_features", "n_cols", "n_columns"})
_ESTIMATOR_NAMES = frozenset({
    "n_estimators", "n_members", "n_dags", "n_trees", "n_models",
})
_ITERATION_NAMES = frozenset({
    "max_iter", "n_iter", "n_epochs", "epochs", "n_restarts", "n_attempts",
    "optimization_steps", "n_splits", "n_folds", "max_depth", "max_width",
    "n_bins", "max_bins", "resolution",
})

#: ``np.<name>(...)`` calls whose result is an ndarray (used to propagate
#: array-ness through assignments).
_ARRAY_MAKERS = frozenset({
    "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
    "full", "zeros_like", "ones_like", "empty_like", "full_like", "arange",
    "linspace", "sort", "argsort", "unique", "concatenate", "vstack",
    "hstack", "stack", "column_stack", "where", "flatnonzero", "nonzero",
    "cumsum", "diff", "clip", "digitize", "searchsorted", "bincount",
    "quantile", "percentile", "abs", "sqrt", "log", "exp", "sign", "square",
    "array_split", "split", "maximum", "minimum", "rint", "round",
})

#: Validators whose results are (X, y)-style ndarrays.
_VALIDATORS = frozenset({"check_array", "check_X_y"})

#: Pure, allocation-free-to-hoist ``np.*`` calls: recomputing one of
#: these with loop-invariant arguments on every iteration is waste, and
#: hoisting it cannot change results (no fresh mutable buffer semantics,
#: unlike ``np.zeros``-style allocators).
_HOISTABLE = frozenset({
    "unique", "sort", "argsort", "linspace", "log", "log2", "log10", "exp",
    "sqrt", "quantile", "percentile", "median", "bincount", "cumsum",
    "diff", "flatnonzero", "nonzero", "searchsorted",
})

#: Copy-producing growth constructs: rebinding a name through one of
#: these with itself as an argument copies the accumulated prefix every
#: iteration (quadratic total work).
_GROWTH_CALLS = frozenset({"append", "concatenate", "vstack", "hstack"})

#: Fresh-buffer allocators (P306: allocation inside per-row hot loops).
_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full", "array", "arange",
    "zeros_like", "empty_like", "ones_like", "full_like",
})

#: Names whose presence in a function marks it as already routed through
#: the fit cache (P304 exemption).
_CACHE_MARKERS = frozenset({"FitCache", "memory", "cache", "_fit_cache",
                            "fit_cache"})


@dataclass
class LoopInfo:
    """One ``for``/``while`` loop and the body facts the P-rules need."""

    lineno: int
    col: int
    kind: str                      # "for" | "while"
    dim: str | None                # iteration dimension, if classified
    chunked: bool                  # stepped range(...) — sanctioned chunking
    direct: bool                   # for-in directly over an ndarray
    iter_source: str               # unparsed iterable (display only)
    target_names: tuple            # loop variable names
    enclosing_dims: tuple          # dims of enclosing loops, outermost first
    qualname: str = ""
    elem_writes: int = 0           # arr[<loop var>] = ... stores in own body
    array_ops: int = 0             # array-traversing calls in own body
    appends: int = 0               # per-element list appends in own body
    growth_sites: list = field(default_factory=list)     # (line, col, text)
    alloc_sites: list = field(default_factory=list)      # (line, col, text)
    invariant_calls: list = field(default_factory=list)  # (line, col, text)
    fit_calls: list = field(default_factory=list)        # (line, col, recv)
    made_estimators: dict = field(default_factory=dict)  # name -> ctor text

    @property
    def nest_depth(self) -> int:
        """1-based depth counting only dimension-classified enclosures."""
        return 1 + sum(1 for dim in self.enclosing_dims if dim is not None)


@dataclass
class FunctionLoops:
    """Loop facts of one function plus its call-site dimension chains."""

    key: tuple                     # FunctionInfo.key: (module, qualname)
    relpath: str
    loops: list = field(default_factory=list)        # flat, source order
    own_dims: dict = field(default_factory=dict)     # dim -> max nest depth
    call_records: list = field(default_factory=list)  # (ast.Call, dim chain)
    touches_cache: bool = False


@dataclass
class LoopModel:
    """Every function's loop facts plus the interprocedural depth map."""

    index: FlowIndex
    functions: dict = field(default_factory=dict)    # key -> FunctionLoops
    _depths: dict | None = None

    def depth_summary(self) -> dict:
        """``(module, qualname) -> {dim: loop-nest depth}`` over the call graph.

        A function's depth along a dimension is the deepest chain of
        that dimension's loops reachable from it: its own nests, plus —
        for every resolved in-project call — the enclosing loops at the
        call site stacked on the callee's depth.  Computed as a monotone
        fixpoint capped at :data:`DEPTH_CAP`, so recursion (tree growth)
        terminates deterministically.
        """
        if self._depths is not None:
            return self._depths
        targets = _call_targets(self.index)
        depths: dict = {key: dict(fn.own_dims)
                        for key, fn in self.functions.items()}
        for _ in range(4 * DEPTH_CAP):
            changed = False
            for key, fn in self.functions.items():
                current = dict(depths[key])
                for call_node, chain in fn.call_records:
                    target = targets.get((key, id(call_node)))
                    if target is None or target not in depths:
                        continue
                    counts: dict = {}
                    for dim in chain:
                        if dim is not None:
                            counts[dim] = counts.get(dim, 0) + 1
                    for dim in set(counts) | set(depths[target]):
                        value = min(
                            DEPTH_CAP,
                            counts.get(dim, 0) + depths[target].get(dim, 0),
                        )
                        if value > current.get(dim, 0):
                            current[dim] = value
                if current != depths[key]:
                    depths[key] = current
                    changed = True
            if not changed:
                break
        self._depths = depths
        return depths


def _call_targets(index: FlowIndex) -> dict:
    """``(caller key, id(call node)) -> callee key`` for resolved calls."""
    targets: dict = {}
    for caller, sites in index.calls.items():
        for site in sites:
            if site.target is not None:
                targets[(caller, id(site.node))] = site.target
    return targets


def _numpy_aliases(index: FlowIndex, module_name: str) -> set:
    """Local names bound to the numpy module in ``module_name``."""
    aliases = {"np", "numpy"}
    for local, binding in index.bindings.get(module_name, {}).items():
        if binding.symbol is None and (
                binding.module == "numpy"
                or binding.module.startswith("numpy.")):
            aliases.add(local)
    return aliases


def _safe_unparse(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse never fails on ast.parse output
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _names_in(node: ast.AST) -> set:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _store_names(node: ast.AST) -> set:
    """Every plain name stored anywhere under ``node`` (incl. loop targets)."""
    return {
        n.id for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
    }


def _stored_attrs(node: ast.AST) -> set:
    """Attribute names written anywhere under ``node`` (``self.x = ...``)."""
    return {
        n.attr for n in ast.walk(node)
        if isinstance(n, ast.Attribute) and isinstance(n.ctx, ast.Store)
    }


def _attr_names(node: ast.AST) -> set:
    """Every attribute name referenced anywhere under ``node``."""
    return {n.attr for n in ast.walk(node) if isinstance(n, ast.Attribute)}


def _annotation_is_array(node: ast.expr) -> bool:
    """True for annotations naming an ndarray itself (not a container of).

    ``np.ndarray`` and ``np.ndarray | None`` qualify;
    ``Sequence[tuple[np.ndarray, ...]]`` does not — iterating such a
    parameter walks its container, not an array axis.
    """
    if isinstance(node, ast.Name):
        return node.id == "ndarray"
    if isinstance(node, ast.Attribute):
        return node.attr == "ndarray"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_is_array(node.left) \
            or _annotation_is_array(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in ("ndarray", "np.ndarray", "numpy.ndarray")
    return False


class _FunctionWalker:
    """Builds one :class:`FunctionLoops` from a function's AST."""

    def __init__(self, info: FunctionInfo, relpath: str, np_aliases: set):
        self.info = info
        self.np = np_aliases
        self.out = FunctionLoops(key=info.key, relpath=relpath)
        self.arrays = self._seed_arrays()
        self._loop_stack: list[LoopInfo] = []
        self._tainted_stack: list[tuple] = []  # (store names, stored attrs)

    # -- array-ness -----------------------------------------------------

    def _seed_arrays(self) -> set:
        arrays = set()
        args = self.info.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in ("X", "y") or arg.arg.startswith(("X_", "y_")):
                arrays.add(arg.arg)
            elif arg.annotation is not None and \
                    _annotation_is_array(arg.annotation):
                arrays.add(arg.arg)
        return arrays

    def _is_numpy_func(self, func: ast.expr) -> str | None:
        """``np.foo`` -> ``"foo"`` when the root name aliases numpy."""
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.np):
            return func.attr
        return None

    def _is_arrayish(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.arrays
        if isinstance(node, ast.Subscript):
            return self._is_arrayish(node.value)
        if isinstance(node, ast.BinOp):
            return self._is_arrayish(node.left) or self._is_arrayish(node.right)
        if isinstance(node, ast.Compare):
            return self._is_arrayish(node.left) or any(
                self._is_arrayish(c) for c in node.comparators)
        if isinstance(node, ast.UnaryOp):
            return self._is_arrayish(node.operand)
        if isinstance(node, ast.Call):
            name = self._is_numpy_func(node.func)
            if name in _ARRAY_MAKERS:
                return True
            if isinstance(node.func, ast.Attribute):
                if node.func.attr == "permutation":
                    return True  # rng.permutation(...) is an index array
                return self._is_arrayish(node.func.value)
            if isinstance(node.func, ast.Name) and \
                    node.func.id in _VALIDATORS:
                return True
        return False

    def _propagate_arrays(self) -> None:
        """Two sweeps over simple assignments to grow the arrayish set."""
        assigns = [
            node for node in ast.walk(self.info.node)
            if isinstance(node, ast.Assign)
        ]
        for _ in range(2):
            before = len(self.arrays)
            for node in assigns:
                value_is_array = self._is_arrayish(node.value)
                validated = (
                    isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in _VALIDATORS
                )
                shape_unpack = (
                    isinstance(node.value, ast.Attribute)
                    and node.value.attr == "shape"
                )
                for target in node.targets:
                    if isinstance(target, ast.Name) and value_is_array:
                        self.arrays.add(target.id)
                    elif isinstance(target, ast.Tuple) and \
                            (validated or value_is_array) and not shape_unpack:
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                self.arrays.add(element.id)
            if len(self.arrays) == before:
                break

    # -- dimension classification --------------------------------------

    def _classify_size(self, node: ast.expr) -> str | None:
        """Dimension named by a loop-bound expression (``X.shape[0]`` …)."""
        if isinstance(node, ast.Name):
            return self._dim_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._dim_of_name(node.attr)
        if isinstance(node, ast.Subscript) and \
                isinstance(node.value, ast.Attribute) and \
                node.value.attr == "shape":
            axis = node.slice
            if isinstance(axis, ast.Constant) and isinstance(axis.value, int):
                if axis.value == 0:
                    return "samples"
                if axis.value == 1:
                    return "features"
            return None
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "len" \
                    and node.args and self._is_arrayish(node.args[0]):
                return "samples"
            return None
        if isinstance(node, ast.BinOp):
            return self._classify_size(node.left) \
                or self._classify_size(node.right)
        return None

    @staticmethod
    def _dim_of_name(name: str) -> str | None:
        if name in _SAMPLE_NAMES:
            return "samples"
        if name in _FEATURE_NAMES:
            return "features"
        if name in _ESTIMATOR_NAMES:
            return "estimators"
        if name in _ITERATION_NAMES:
            return "iterations"
        return None

    def _classify_iter(self, node: ast.expr) -> tuple:
        """``(dim, chunked, direct)`` for a loop's iterable expression."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "range" and node.args:
                chunked = len(node.args) == 3
                bound = node.args[1] if len(node.args) >= 2 else node.args[0]
                return self._classify_size(bound), chunked, False
            if isinstance(func, ast.Name) and func.id == "enumerate" \
                    and node.args:
                dim, chunked, _ = self._classify_iter(node.args[0])
                return dim, chunked, self._is_arrayish(node.args[0])
            name = self._is_numpy_func(func)
            if name == "unique":
                return "classes", False, False
            if isinstance(func, ast.Attribute) and \
                    func.attr == "permutation" and node.args:
                return (self._classify_size(node.args[0]) or "samples",
                        False, True)
            if name in _ARRAY_MAKERS:
                return None, False, True
            return None, False, False
        if self._is_arrayish(node):
            hint = _safe_unparse(node, limit=200)
            dim = "features" if ("feature" in hint or "column" in hint) \
                else "samples"
            return dim, False, True
        return None, False, False

    # -- walking --------------------------------------------------------

    def run(self) -> FunctionLoops:
        self._propagate_arrays()
        source = _names_in(self.info.node) | _attr_names(self.info.node)
        all_params = set(self.info.all_param_names(skip_self=False))
        self.out.touches_cache = bool(
            (_CACHE_MARKERS & source) or (_CACHE_MARKERS & all_params)
        )
        self._visit_block(self.info.node.body)
        for loop in self.out.loops:
            chain = (*loop.enclosing_dims, loop.dim)
            counts: dict = {}
            for dim in chain:
                if dim is not None and dim != "classes":
                    counts[dim] = counts.get(dim, 0) + 1
            for dim, count in counts.items():
                value = min(DEPTH_CAP, count)
                if value > self.out.own_dims.get(dim, 0):
                    self.out.own_dims[dim] = value
        return self.out

    def _visit_block(self, stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._enter_loop(stmt, kind="for")
            elif isinstance(stmt, ast.While):
                self._enter_loop(stmt, kind="while")
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested scopes are modelled separately (or not)
            elif isinstance(stmt, ast.If):
                self._scan_expr(stmt.test)
                self._visit_block(stmt.body)
                self._visit_block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr)
                self._visit_block(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._visit_block(stmt.body)
                for handler in stmt.handlers:
                    self._visit_block(handler.body)
                self._visit_block(stmt.orelse)
                self._visit_block(stmt.finalbody)
            else:
                self._scan_statement(stmt)

    def _enter_loop(self, stmt, kind: str) -> None:
        if kind == "for":
            dim, chunked, direct = self._classify_iter(stmt.iter)
            targets = tuple(sorted(_store_names(stmt.target)))
            iter_source = _safe_unparse(stmt.iter)
            self._scan_expr(stmt.iter)  # header evaluated in the outer scope
        else:
            dim, chunked, direct = None, False, False
            targets = ()
            iter_source = _safe_unparse(stmt.test)
        loop = LoopInfo(
            lineno=stmt.lineno, col=stmt.col_offset, kind=kind, dim=dim,
            chunked=chunked, direct=direct, iter_source=iter_source,
            target_names=targets,
            enclosing_dims=tuple(l.dim for l in self._loop_stack),
            qualname=self.info.qualname,
        )
        self.out.loops.append(loop)
        self._loop_stack.append(loop)
        self._tainted_stack.append(
            (_store_names(stmt) | set(targets), _stored_attrs(stmt))
        )
        if kind == "while":
            self._scan_expr(stmt.test)  # re-evaluated every iteration
        self._visit_block(stmt.body)
        self._visit_block(stmt.orelse)
        self._loop_stack.pop()
        self._tainted_stack.pop()

    def _scan_expr(self, node: ast.expr | None) -> None:
        if node is None:
            return
        loop = self._loop_stack[-1] if self._loop_stack else None
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._scan_call(sub, loop)

    def _scan_statement(self, stmt: ast.stmt) -> None:
        loop = self._loop_stack[-1] if self._loop_stack else None
        if loop is not None:
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._scan_assignment(stmt, loop)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._scan_call(node, loop)

    def _scan_assignment(self, stmt, loop: LoopInfo) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        loop_vars = set().union(
            *(l.target_names for l in self._loop_stack)) if self._loop_stack \
            else set()
        for target in targets:
            if isinstance(target, ast.Subscript) \
                    and self._is_arrayish(target.value) \
                    and (_names_in(target.slice) & loop_vars):
                loop.elem_writes += 1
        value = stmt.value
        if value is None:
            return
        # Quadratic growth: a name rebound through a copy-producing
        # construct that takes the name itself as input.
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            grows = False
            if isinstance(value, ast.Call):
                name = self._is_numpy_func(value.func)
                if name in _GROWTH_CALLS and target.id in _names_in(value):
                    grows = True
            elif isinstance(value, ast.BinOp) \
                    and isinstance(value.op, ast.Add) \
                    and not isinstance(stmt, ast.AugAssign) \
                    and target.id in _names_in(value) \
                    and (self._is_arrayish(value)
                         or isinstance(value.left, (ast.List, ast.ListComp))
                         or isinstance(value.right, (ast.List, ast.ListComp))):
                grows = True
            if grows:
                loop.growth_sites.append(
                    (stmt.lineno, stmt.col_offset, _safe_unparse(stmt))
                )
        # Estimator construction for P304 (``model = clone(est)`` /
        # ``model = SomeClass(...)``).
        if isinstance(value, ast.Call) and len(targets) == 1 \
                and isinstance(targets[0], ast.Name) \
                and isinstance(value.func, ast.Name):
            loop.made_estimators[targets[0].id] = value.func.id

    def _scan_call(self, node: ast.Call, loop: LoopInfo | None) -> None:
        self.out.call_records.append(
            (node, tuple(l.dim for l in self._loop_stack))
        )
        if loop is None:
            return
        np_name = self._is_numpy_func(node.func)
        is_array_op = bool(
            (np_name is not None and node.args)
            or (isinstance(node.func, ast.Attribute)
                and self._is_arrayish(node.func.value))
            or any(self._is_arrayish(arg) for arg in node.args)
        )
        if is_array_op:
            loop.array_ops += 1
        if np_name in _ALLOCATORS:
            loop.alloc_sites.append(
                (node.lineno, node.col_offset, _safe_unparse(node))
            )
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "append" and \
                    not self._is_arrayish(node.func.value):
                receiver_names = _names_in(node.func.value)
                tainted = self._tainted_stack[-1][0] if self._tainted_stack \
                    else set()
                if not (receiver_names & tainted) or \
                        isinstance(node.func.value, ast.Subscript):
                    loop.appends += 1
            if node.func.attr == "fit" and \
                    isinstance(node.func.value, ast.Name):
                loop.fit_calls.append(
                    (node.lineno, node.col_offset, node.func.value.id)
                )
        if np_name in _HOISTABLE and self._tainted_stack:
            tainted_names, tainted_attrs = self._tainted_stack[-1]
            arg_nodes = list(node.args) + [kw.value for kw in node.keywords]
            names = set().union(*map(_names_in, arg_nodes)) if arg_nodes \
                else set()
            attrs = set().union(*map(_attr_names, arg_nodes)) if arg_nodes \
                else set()
            has_nested_call = any(
                isinstance(n, ast.Call)
                for arg in arg_nodes for n in ast.walk(arg)
            )  # a nested call (an RNG draw, say) may change every iteration
            if not has_nested_call and not (names & tainted_names) \
                    and not (attrs & tainted_attrs):
                loop.invariant_calls.append(
                    (node.lineno, node.col_offset, _safe_unparse(node))
                )


def build_loop_model(index: FlowIndex) -> LoopModel:
    """Extract loop facts for every function in the shared flow index."""
    model = LoopModel(index=index)
    alias_cache: dict = {}
    for key, info in index.functions.items():
        module = index.modules.get(info.module_name)
        if module is None:
            continue
        if info.module_name not in alias_cache:
            alias_cache[info.module_name] = _numpy_aliases(
                index, info.module_name)
        walker = _FunctionWalker(
            info, module.relpath, alias_cache[info.module_name])
        model.functions[key] = walker.run()
    return model
