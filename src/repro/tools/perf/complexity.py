"""Derived per-estimator complexity spec for ``repro perf`` (P305).

The paper's Table 1 catalogues each model family's training/prediction
cost along the axes the service user controls (samples, features,
ensemble size, iterations).  This module derives the static analogue
from the loop model: for every ``BaseEstimator`` subclass in the
analyzed tree, the maximum loop-nest depth of its ``fit`` and
``predict`` paths along those axes, folded over the in-project call
graph.

The derived table is checked in as ``complexity_spec.py`` next to this
module — a plain-literal Python file so it diffs readably and loads via
``ast.literal_eval`` (no import, which lets ``--update-spec`` rewrite
and re-check it within one process).  P305 compares fresh derivation
against the checked-in spec; an intentional change to an estimator's
loop structure is recorded by re-running ``repro perf --update-spec``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.tools.perf.loops import LoopModel

__all__ = [
    "DEFAULT_SPEC_PATH",
    "SPEC_DIMS",
    "derive_complexity",
    "load_spec",
    "render_spec",
    "write_spec",
]

#: Axes recorded in the spec, mirroring the paper's Table 1 columns.
SPEC_DIMS = ("samples", "features", "estimators", "iterations")

#: Where the checked-in spec lives.
DEFAULT_SPEC_PATH = Path(__file__).resolve().parent / "complexity_spec.py"

#: Methods whose loop-nest depth the spec records.
_SPEC_METHODS = ("fit", "predict")

_HEADER = '''\
"""Checked-in loop-nest complexity spec (regenerate: ``repro perf --update-spec``).

Static analogue of the paper's Table 1: for every estimator in the
analyzed tree, the derived maximum loop-nest depth of ``fit`` and
``predict`` along the (samples, features, estimators, iterations) axes,
folded over the in-project call graph by
:mod:`repro.tools.perf.complexity`.  A depth of 1 along ``samples``
reads as "one Python-level pass over the rows"; vectorized numpy work
does not count.  P305 fails when a fresh derivation disagrees with this
file, so intentional complexity changes are re-recorded here and show up
in review as a spec diff.

This file is data, not code: edit it only via ``--update-spec``.
"""

__all__ = ["COMPLEXITY"]

'''


def derive_complexity(model: LoopModel) -> dict:
    """Map ``module.Class`` -> ``{method: {dim: depth}}`` for estimators.

    Covers public ``BaseEstimator`` subclasses defined in the analyzed
    modules (context modules are excluded) that implement ``fit``; the
    recorded dims are restricted to :data:`SPEC_DIMS` with zero depths
    omitted, so a fully vectorized method appears as ``{}``.
    """
    index = model.index
    estimator_names = index.project.subclasses_of(["BaseEstimator"])
    analyzed = {m.dotted_name for m in index.project.modules}
    depths = model.depth_summary()
    spec: dict = {}
    for (module_name, class_name) in sorted(index.classes):
        if class_name not in estimator_names or class_name.startswith("_"):
            continue
        if module_name not in analyzed:
            continue
        if (module_name, f"{class_name}.fit") not in index.functions:
            continue
        methods: dict = {}
        for method in _SPEC_METHODS:
            key = (module_name, f"{class_name}.{method}")
            if key not in index.functions:
                continue
            summary = depths.get(key, {})
            methods[method] = {
                dim: summary[dim] for dim in SPEC_DIMS
                if summary.get(dim, 0) > 0
            }
        spec[f"{module_name}.{class_name}"] = methods
    return spec


def render_spec(spec: dict) -> str:
    """The checked-in file's full text for ``spec`` (stable ordering)."""
    lines = [_HEADER, "COMPLEXITY = {"]
    for class_path in sorted(spec):
        lines.append(f"    {class_path!r}: {{")
        for method in _SPEC_METHODS:
            if method not in spec[class_path]:
                continue
            dims = spec[class_path][method]
            inner = ", ".join(
                f"{dim!r}: {dims[dim]}" for dim in SPEC_DIMS if dim in dims
            )
            lines.append(f"        {method!r}: {{{inner}}},")
        lines.append("    },")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_spec(spec: dict, path: Path = DEFAULT_SPEC_PATH) -> None:
    """Rewrite the checked-in spec file with ``spec``."""
    path.write_text(render_spec(spec), encoding="utf-8")


def load_spec(path: Path = DEFAULT_SPEC_PATH) -> dict | None:
    """The ``COMPLEXITY`` literal from ``path``, or ``None`` if unusable.

    Reads the file as an AST literal rather than importing it, so a
    just-rewritten spec is visible immediately and a broken spec cannot
    crash the analyzer (P305 reports it instead).
    """
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "COMPLEXITY":
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        return None
                    return value if isinstance(value, dict) else None
    return None
