"""``repro perf`` — static complexity & hot-path analyzer.

The paper's axis is *complexity vs. performance*; this package is the
fourth static-analysis pass ("P-rules") that enforces that axis on the
reproduction itself.  It extends the shared flow index with a
per-function **loop-nest model** (:mod:`repro.tools.perf.loops`) —
which axis each Python loop walks (samples, features, estimators,
iterations), what its body does to ndarrays, and how loop depths
compose over the in-project call graph — and runs six rules over it:

* **P301 axis-loop** — a Python-level loop over a samples/features axis
  doing per-element array work (vectorization candidate; severity
  scales with the statically inferred nest depth);
* **P302 quadratic-growth** — ``x = np.append(x, ...)`` and friends
  inside a loop (copies the accumulated prefix every iteration);
* **P303 invariant-call** — a pure numpy call with loop-invariant
  arguments recomputed every iteration (hoist it);
* **P304 uncached-refit** — per-iteration clone+fit on a grid-search or
  orchestration path that bypasses the content-keyed
  :class:`~repro.learn.cache.FitCache`;
* **P305 complexity-spec** — each estimator's derived ``fit``/``predict``
  loop-nest depth over (samples, features, estimators, iterations) must
  match the checked-in Table-1-style ``complexity_spec.py``
  (refresh with ``--update-spec``);
* **P306 hot-loop-alloc** — numpy allocation inside per-row hot loops
  of modules tagged ``_COMPILED_SUBSTRATE`` (the compiled tree
  substrate promises allocation-free inner loops).

Importable API::

    from repro.tools.perf import perf_paths
    result = perf_paths(["src/repro"])
    assert result.exit_code == 0, result.violations

Command line::

    repro perf [PATHS...] [--format text|json] [--top N] [--profile F]
    repro perf --update-spec
    python -m repro.tools.perf

``--top N`` appends a ranked hotspot section (severity × nest depth,
optionally re-weighted by a cProfile-derived ``--profile`` JSON); its
head doubles as the work-list for compiling the next substrate family.

Suppressions share the lint engine's comment syntax — a justified
suppression states the performance argument the analyzer cannot see::

    for j in range(X.shape[1]):  # repro: disable=P301 -- tau-b has no vectorized form

The analysis reuses the lint engine (files parsed once, same reporters
and exit codes) and the flow package's shared indexes through the
memoized :mod:`repro.tools.indexing` facade, so flow, race, and perf in
one process parse the project once; the loop model itself is memoized
on the shared index entry.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.tools.lint.engine import LintResult
from repro.tools.perf.loops import LoopModel, build_loop_model
from repro.tools.perf.rules import default_perf_rules
from repro.tools.perf.runner import run_perf

__all__ = [
    "LintResult",
    "LoopModel",
    "build_loop_model",
    "default_perf_rules",
    "perf_paths",
    "run_perf",
]


def perf_paths(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
    context_paths: Sequence | None = None,
    spec_path: Path | None = None,
) -> LintResult:
    """Analyze files/directories; see :func:`repro.tools.perf.runner.run_perf`."""
    return run_perf(paths, rules=rules, root=root,
                    context_paths=context_paths, spec_path=spec_path)
