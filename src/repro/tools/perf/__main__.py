"""``python -m repro.tools.perf`` — run the performance analyzer."""

from repro.tools.perf.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
