"""``python -m repro.tools.lint`` — run the invariant checker."""

from repro.tools.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
