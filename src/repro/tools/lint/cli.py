"""Command-line front end: ``repro lint`` / ``python -m repro.tools.lint``.

Exit codes follow the shared taxonomy of :mod:`repro.tools.exitcodes`,
which the test gate and CI rely on:

* ``0`` — every checked file is clean (suppressed findings allowed);
* ``1`` — at least one unsuppressed violation;
* ``2`` — usage error (unknown flag, nonexistent path, no files found);
* ``3`` — the analyzer itself crashed (traceback on stderr).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.tools.lint.engine import RULE_REGISTRY
from repro.tools.lint.reporters import REPORTERS

__all__ = [
    "DEFAULT_TARGET",
    "build_parser",
    "configure_parser",
    "main",
    "run_lint_command",
]

#: Default lint target: the package's own source tree, resolved relative
#: to this file so the command works from any working directory.
DEFAULT_TARGET = Path(__file__).resolve().parents[2]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the lint arguments to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include justified suppressions in the report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule codes and exit",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """Build the standalone argument parser for ``python -m repro.tools.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker for the MLaaS reproduction",
    )
    return configure_parser(parser)


def _print_rules(out) -> int:
    for code, cls in sorted(RULE_REGISTRY.items()):
        print(f"{code}  {cls.name:<20} {cls.description}", file=out)
    return 0


def run_lint_command(args: argparse.Namespace, out=None) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    out = out or sys.stdout
    if args.list_rules:
        return _print_rules(out)
    paths = args.paths or [DEFAULT_TARGET]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}", file=sys.stderr)
            return 2
    from repro.tools.lint.engine import run_lint

    result = run_lint(paths, root=Path.cwd())
    if result.n_files == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return 2
    reporter = REPORTERS[args.format]
    print(reporter(result, show_suppressed=args.show_suppressed), file=out)
    return result.exit_code


def main(argv=None, out=None) -> int:
    """Entry point for ``python -m repro.tools.lint``."""
    from repro.tools.exitcodes import run_guarded

    args = build_parser().parse_args(argv)
    return run_guarded(run_lint_command, args, out=out)
