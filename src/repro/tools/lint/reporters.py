"""Output formats for ``repro lint`` results."""

from __future__ import annotations

import json
from typing import Callable

from repro.tools.lint.engine import LintResult, Violation

__all__ = ["REPORTERS", "render_json", "render_text"]


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """GCC-style one-line-per-violation report plus a summary line."""
    lines = []
    for violation in result.violations:
        if violation.suppressed and not show_suppressed:
            continue
        marker = " (suppressed: %s)" % violation.reason if violation.suppressed else ""
        lines.append(
            f"{violation.location}: {violation.code} "
            f"{violation.message}{marker}"
        )
    n_bad = len(result.unsuppressed)
    n_hidden = len(result.suppressed)
    lines.append(
        f"{n_bad} violation{'s' if n_bad != 1 else ''} "
        f"({n_hidden} suppressed) in {result.n_files} "
        f"file{'s' if result.n_files != 1 else ''}"
    )
    return "\n".join(lines)


def _violation_record(violation: Violation) -> dict:
    return {
        "code": violation.code,
        "message": violation.message,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "suppressed": violation.suppressed,
        "reason": violation.reason,
    }


def render_json(result: LintResult, show_suppressed: bool = False) -> str:
    """Machine-readable report (stable key order) for CI consumption."""
    violations = [
        _violation_record(v) for v in result.violations
        if show_suppressed or not v.suppressed
    ]
    payload = {
        "violations": violations,
        "summary": {
            "files": result.n_files,
            "violations": len(result.unsuppressed),
            "suppressed": len(result.suppressed),
            "exit_code": result.exit_code,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


#: Reporter name -> renderer, as selected by ``repro lint --format``.
REPORTERS: dict[str, Callable] = {
    "text": render_text,
    "json": render_json,
}
