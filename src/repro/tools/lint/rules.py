"""The repo-specific rule families of ``repro lint``.

=====  ====================  ==================================================
Code   Name                  Invariant protected (paper section)
=====  ====================  ==================================================
R001   determinism           §3.2 seed chain: no unseeded ``np.random`` /
                             stdlib ``random`` use; RNGs must be threaded
                             through ``random_state`` / ``check_random_state``.
R002   estimator-contract    The fit/predict protocol every sweep relies on:
                             ``__init__`` assigns params verbatim, ``fit``
                             validates input and returns ``self``, fitted
                             attributes end in ``_``.
R003   table1-conformance    Table 1: each vendor module's declared
                             ``ControlSurface`` must match the ground truth in
                             ``repro.platforms.table1_spec``.
R004   exception-hygiene     No bare ``except``; raised errors derive from
                             ``ReproError`` or the stdlib; broad handlers that
                             swallow must justify themselves.
R005   export-sync           Every public module declares ``__all__`` and it
                             agrees with the module's top-level definitions.
=====  ====================  ==================================================
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable, Iterator

from repro.exceptions import ReproError
from repro.tools.lint.engine import (
    ModuleInfo,
    Project,
    Rule,
    Violation,
    register_rule,
)

__all__ = [
    "DeterminismRule",
    "EstimatorContractRule",
    "Table1ConformanceRule",
    "ExceptionHygieneRule",
    "ExportSyncRule",
    "default_rules",
]


def _dotted_path(node: ast.expr) -> tuple | None:
    """``a.b.c`` -> ("a", "b", "c"); None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _import_bindings(tree: ast.Module) -> dict:
    """Map local name -> dotted origin for every import in the module."""
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                bindings[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = f"{node.module}.{alias.name}"
    return bindings


# ---------------------------------------------------------------------------
# R001 — determinism
# ---------------------------------------------------------------------------

#: Legacy/global numpy RNG entry points whose output no seed chain controls.
_LEGACY_NP_RANDOM = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "gumbel", "laplace",
    "lognormal", "multinomial", "multivariate_normal", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_integers", "random_sample", "ranf", "sample", "seed",
    "set_state", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "uniform",
    "RandomState",
})


@register_rule
class DeterminismRule(Rule):
    """No RNG may escape the experiment's seed chain (paper §3.2)."""

    code = "R001"
    name = "determinism"
    description = (
        "forbid unseeded np.random / stdlib random; RNGs must be threaded "
        "through random_state / check_random_state"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        """Scan one module for unseeded RNG constructions."""
        bindings = _import_bindings(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _dotted_path(node.func)
            if path is None:
                continue
            origin = bindings.get(path[0])
            if origin is not None:
                resolved = (*origin.split("."), *path[1:])
            else:
                resolved = path
            message = self._diagnose(resolved, node)
            if message is not None:
                yield Violation(
                    code=self.code, message=message,
                    path=module.relpath, line=node.lineno,
                    col=node.col_offset,
                )

    @staticmethod
    def _diagnose(resolved: tuple, call: ast.Call) -> str | None:
        if len(resolved) >= 2 and resolved[0] == "numpy":
            if resolved[1] != "random":
                return None
            attr = resolved[2] if len(resolved) > 2 else None
            if attr in _LEGACY_NP_RANDOM:
                return (
                    f"legacy global RNG 'np.random.{attr}' escapes the seed "
                    "chain; use a Generator from check_random_state(seed)"
                )
            if attr == "default_rng" and not call.args and not call.keywords:
                return (
                    "np.random.default_rng() without a seed is "
                    "irreproducible; pass an explicit seed or thread the "
                    "caller's random_state"
                )
            return None
        if resolved[0] == "random" and len(resolved) >= 2:
            return (
                f"stdlib 'random.{resolved[1]}' is unseeded global state; "
                "use numpy Generators threaded via random_state"
            )
        return None


# ---------------------------------------------------------------------------
# R002 — estimator contract
# ---------------------------------------------------------------------------

#: Input-validation helpers whose presence satisfies the fit() check.
_VALIDATION_HELPERS = frozenset({
    "check_X_y", "check_array", "column_or_1d", "check_binary_labels",
})


@register_rule
class EstimatorContractRule(Rule):
    """Every BaseEstimator subclass must honor the shared fit protocol."""

    code = "R002"
    name = "estimator-contract"
    description = (
        "BaseEstimator subclasses: __init__ assigns params verbatim, fit "
        "validates input and returns self, fitted attributes end in '_'"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        """Check every BaseEstimator subclass against the sklearn contract."""
        estimator_names = project.subclasses_of({"BaseEstimator"})
        index = project.class_defs()
        for name in sorted(estimator_names):
            for module, node, _ in index[name]:
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> Iterator[Violation]:
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name == "__init__":
                yield from self._check_init(module, cls, item)
            elif item.name == "fit":
                yield from self._check_fit(module, cls, item)
            if item.name not in ("__init__", "set_params"):
                yield from self._check_fitted_attributes(module, cls, item)

    def _check_init(
        self, module: ModuleInfo, cls: ast.ClassDef, init: ast.FunctionDef
    ) -> Iterator[Violation]:
        args = init.args
        if args.vararg is not None or args.kwarg is not None:
            yield self._violation(
                module, init,
                f"{cls.name}.__init__ must declare every parameter "
                "explicitly (no *args/**kwargs) so get_params/clone work",
            )
        params = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if a.arg != "self"
        ]
        assigned: set[str] = set()
        body = init.body
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ):
            body = body[1:]  # docstring
        for stmt in body:
            target_name = self._verbatim_assignment(stmt)
            if target_name is None or target_name not in params:
                yield self._violation(
                    module, stmt,
                    f"{cls.name}.__init__ may only assign constructor "
                    "parameters verbatim (self.x = x); move logic to fit()",
                )
            else:
                assigned.add(target_name)
        for param in params:
            if param not in assigned:
                yield self._violation(
                    module, init,
                    f"{cls.name}.__init__ never stores parameter "
                    f"{param!r}; get_params() would raise AttributeError",
                )

    @staticmethod
    def _verbatim_assignment(stmt: ast.stmt) -> str | None:
        if isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        else:
            return None
        if len(targets) != 1 or value is None:
            return None
        target = targets[0]
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return None
        if not (isinstance(value, ast.Name) and value.id == target.attr):
            return None
        return target.attr

    def _check_fit(
        self, module: ModuleInfo, cls: ast.ClassDef, fit: ast.FunctionDef
    ) -> Iterator[Violation]:
        returns = [
            node for node in ast.walk(fit) if isinstance(node, ast.Return)
        ]
        if not returns:
            yield self._violation(
                module, fit, f"{cls.name}.fit must end with 'return self'",
            )
        for ret in returns:
            if not (isinstance(ret.value, ast.Name) and ret.value.id == "self"):
                yield self._violation(
                    module, ret,
                    f"every return in {cls.name}.fit must be 'return self' "
                    "so calls chain (est.fit(X, y).predict(X))",
                )
        if not self._fit_validates(fit):
            yield self._violation(
                module, fit,
                f"{cls.name}.fit must validate its input through "
                "check_X_y/check_array (or delegate to a sub-estimator's "
                "fit)",
            )

    @staticmethod
    def _fit_validates(fit: ast.FunctionDef) -> bool:
        for node in ast.walk(fit):
            if not isinstance(node, ast.Call):
                continue
            path = _dotted_path(node.func)
            if path is None:
                continue
            if path[-1] in _VALIDATION_HELPERS:
                return True
            # Delegation: calling any .fit()/.fit_transform() hands the
            # data to a sub-estimator that performs its own validation.
            if len(path) >= 2 and path[-1] in ("fit", "fit_transform"):
                return True
        return False

    def _check_fitted_attributes(
        self, module: ModuleInfo, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Violation]:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                for attr in self._self_attributes(target):
                    if attr.startswith("_") or attr.endswith("_"):
                        continue
                    yield self._violation(
                        module, node,
                        f"{cls.name}.{method.name} sets 'self.{attr}': "
                        "state learned outside __init__ must be a fitted "
                        "attribute ending in '_' (constructor parameters "
                        "are read-only after __init__)",
                    )

    @staticmethod
    def _self_attributes(target: ast.expr) -> Iterator[str]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from EstimatorContractRule._self_attributes(element)
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            yield target.attr

    def _violation(self, module: ModuleInfo, node: ast.AST, message: str) -> Violation:
        return Violation(
            code=self.code, message=message, path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


# ---------------------------------------------------------------------------
# R003 — Table 1 conformance
# ---------------------------------------------------------------------------


class _ExtractionError(ReproError):
    """A vendor control surface could not be statically resolved."""

    def __init__(self, message: str, node: ast.AST | None = None):
        super().__init__(message)
        self.node = node


@register_rule
class Table1ConformanceRule(Rule):
    """Vendor ``ControlSurface`` declarations must match ``table1_spec``."""

    code = "R003"
    name = "table1-conformance"
    description = (
        "statically extract each MLaaSPlatform subclass's ControlSurface "
        "and diff it against repro.platforms.table1_spec"
    )

    def __init__(self, spec: dict | None = None):
        self._spec = spec

    def _load_spec(self) -> dict:
        if self._spec is None:
            from repro.platforms.table1_spec import TABLE1_SPEC
            self._spec = TABLE1_SPEC
        return self._spec

    def check_project(self, project: Project) -> Iterator[Violation]:
        """Diff each vendor module's declared surface against Table 1."""
        extracted: dict[str, tuple] = {}
        spec_module = None
        any_platform = False
        for module in project.modules:
            if module.relpath.endswith("table1_spec.py"):
                spec_module = module
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = {b.attr if isinstance(b, ast.Attribute) else
                         getattr(b, "id", None) for b in node.bases}
                if "MLaaSPlatform" not in bases:
                    continue
                any_platform = True
                try:
                    surface = _extract_surface(module, node, project)
                except _ExtractionError as exc:
                    anchor = exc.node if exc.node is not None else node
                    yield Violation(
                        code=self.code,
                        message=f"cannot statically resolve {node.name}'s "
                                f"control surface: {exc}",
                        path=module.relpath, line=anchor.lineno,
                        col=anchor.col_offset,
                    )
                    continue
                extracted[surface["name"]] = (module, node, surface)
        if not any_platform:
            return
        spec = self._load_spec()
        for name, (module, node, surface) in sorted(extracted.items()):
            entry = spec.get(name)
            if entry is None:
                yield Violation(
                    code=self.code,
                    message=f"platform {name!r} has no entry in "
                            "table1_spec.TABLE1_SPEC",
                    path=module.relpath, line=node.lineno,
                )
                continue
            yield from self._diff(module, node, surface, entry)
        if spec_module is not None:
            for name in sorted(set(spec) - set(extracted)):
                yield Violation(
                    code=self.code,
                    message=f"table1_spec declares platform {name!r} but no "
                            "vendor module defines it",
                    path=spec_module.relpath, line=1,
                )

    def _diff(self, module, cls, surface, entry) -> Iterator[Violation]:
        def emit(message, node=None):
            anchor = node if node is not None else cls
            return Violation(
                code=self.code, message=message, path=module.relpath,
                line=getattr(anchor, "lineno", cls.lineno),
                col=getattr(anchor, "col_offset", 0),
            )

        name = surface["name"]
        if surface["complexity"] != entry.complexity:
            yield emit(
                f"{name}: complexity {surface['complexity']} != Table 1 "
                f"value {entry.complexity}", surface["complexity_node"],
            )
        if tuple(surface["feature_selectors"]) != tuple(entry.feature_selectors):
            yield emit(
                f"{name}: feature selectors {list(surface['feature_selectors'])} "
                f"!= Table 1 list {list(entry.feature_selectors)}",
                surface["controls_node"],
            )
        if surface["supports_parameter_tuning"] != ("PARA" in entry.dimensions):
            yield emit(
                f"{name}: supports_parameter_tuning="
                f"{surface['supports_parameter_tuning']} contradicts Table 1 "
                f"dimensions {sorted(entry.dimensions)}",
                surface["controls_node"],
            )
        spec_clfs = {c.abbr: c for c in entry.classifiers}
        got_abbrs = [c["abbr"] for c in surface["classifiers"]]
        want_abbrs = [c.abbr for c in entry.classifiers]
        if got_abbrs != want_abbrs:
            yield emit(
                f"{name}: classifiers {got_abbrs} != Table 1 list "
                f"{want_abbrs}", surface["controls_node"],
            )
        for clf in surface["classifiers"]:
            spec_clf = spec_clfs.get(clf["abbr"])
            if spec_clf is None:
                continue  # already reported by the abbr-list diff
            if clf["label"] != spec_clf.label:
                yield emit(
                    f"{name}/{clf['abbr']}: label {clf['label']!r} != "
                    f"Table 1 label {spec_clf.label!r}", clf["node"],
                )
            spec_params = {p.name: p for p in spec_clf.parameters}
            got_names = [p["name"] for p in clf["parameters"]]
            want_names = [p.name for p in spec_clf.parameters]
            if got_names != want_names:
                unexpected = [n for n in got_names if n not in spec_params]
                anchor = clf["node"]
                for param in clf["parameters"]:
                    if param["name"] in unexpected:
                        anchor = param["node"]
                        break
                yield emit(
                    f"{name}/{clf['abbr']}: parameter names {got_names} != "
                    f"Table 1 names {want_names}", anchor,
                )
            for param in clf["parameters"]:
                spec_param = spec_params.get(param["name"])
                if spec_param is None:
                    continue
                if param["default"] != spec_param.default:
                    yield emit(
                        f"{name}/{clf['abbr']}.{param['name']}: default "
                        f"{param['default']!r} != Table 1 default "
                        f"{spec_param.default!r}", param["node"],
                    )
                if tuple(param["values"]) != tuple(spec_param.values):
                    yield emit(
                        f"{name}/{clf['abbr']}.{param['name']}: value grid "
                        f"{list(param['values'])} != Table 1 grid "
                        f"{list(spec_param.values)}", param["node"],
                    )


def _extract_surface(module: ModuleInfo, cls: ast.ClassDef, project: Project) -> dict:
    name = complexity = controls = None
    name_node = complexity_node = controls_node = None
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == "name":
            name, name_node = _resolve(stmt.value, module, project), stmt.value
        elif target.id == "complexity":
            complexity, complexity_node = (
                _resolve(stmt.value, module, project), stmt.value,
            )
        elif target.id == "controls":
            controls, controls_node = (
                _resolve(stmt.value, module, project), stmt.value,
            )
    if not isinstance(name, str):
        raise _ExtractionError("missing class attribute 'name'", cls)
    if not isinstance(complexity, int):
        raise _ExtractionError("missing class attribute 'complexity'", cls)
    if not isinstance(controls, dict) or controls.get("__kind__") != "ControlSurface":
        raise _ExtractionError(
            "class attribute 'controls' must be a ControlSurface(...) call",
            controls_node or cls,
        )
    return {
        "name": name,
        "complexity": complexity,
        "complexity_node": complexity_node,
        "controls_node": controls_node,
        "feature_selectors": controls["feature_selectors"],
        "classifiers": controls["classifiers"],
        "supports_parameter_tuning": controls["supports_parameter_tuning"],
    }


def _resolve(node: ast.expr, module: ModuleInfo, project: Project, depth: int = 0):
    """Mini constant-folder over the vendor-module declaration idioms."""
    if depth > 12:
        raise _ExtractionError("resolution too deep", node)
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_resolve(e, module, project, depth + 1) for e in node.elts)
    if isinstance(node, ast.Dict):
        return {
            _resolve(k, module, project, depth + 1): None
            for k in node.keys if k is not None
        }
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_resolve(node.operand, module, project, depth + 1)
    if isinstance(node, ast.Name):
        return _resolve_name(node, module, project, depth)
    if isinstance(node, ast.Call):
        return _resolve_call(node, module, project, depth)
    raise _ExtractionError(
        f"unsupported expression {ast.dump(node)[:60]}", node,
    )


def _resolve_name(node: ast.Name, module: ModuleInfo, project: Project, depth: int):
    value = module.top_level_assign(node.id)
    if value is not None:
        return _resolve(value, module, project, depth + 1)
    imports = _import_bindings(module.tree)
    origin = imports.get(node.id)
    if origin is not None and "." in origin:
        origin_module, _, origin_name = origin.rpartition(".")
        source = project.module_by_dotted_name(origin_module)
        if source is not None:
            value = source.top_level_assign(origin_name)
            if value is not None:
                return _resolve(value, source, project, depth + 1)
    raise _ExtractionError(f"cannot resolve name {node.id!r}", node)


def _resolve_call(node: ast.Call, module: ModuleInfo, project: Project, depth: int):
    path = _dotted_path(node.func)
    func = path[-1] if path else None

    def arg(position: int, keyword: str, default=_ExtractionError):
        for kw in node.keywords:
            if kw.arg == keyword:
                return _resolve(kw.value, module, project, depth + 1), kw.value
        if position < len(node.args):
            value = node.args[position]
            return _resolve(value, module, project, depth + 1), value
        if default is _ExtractionError:
            raise _ExtractionError(f"{func} missing argument {keyword!r}", node)
        return default, node

    if func == "ParameterSpec":
        name, _ = arg(0, "name")
        default, _ = arg(1, "default")
        values, _ = arg(2, "values")
        return {"__kind__": "ParameterSpec", "name": name, "default": default,
                "values": values, "node": node}
    if func == "ClassifierOption":
        abbr, _ = arg(0, "abbr")
        label, _ = arg(1, "label")
        parameters, _ = arg(2, "parameters", default=())
        return {"__kind__": "ClassifierOption", "abbr": abbr, "label": label,
                "parameters": parameters, "node": node}
    if func == "ControlSurface":
        feature_selectors, _ = arg(0, "feature_selectors", default=())
        classifiers, _ = arg(1, "classifiers", default=())
        tuning, _ = arg(2, "supports_parameter_tuning", default=False)
        if isinstance(feature_selectors, dict):
            feature_selectors = tuple(feature_selectors)
        return {"__kind__": "ControlSurface",
                "feature_selectors": feature_selectors,
                "classifiers": classifiers,
                "supports_parameter_tuning": tuning}
    if func == "tuple" and len(node.args) == 1:
        value = _resolve(node.args[0], module, project, depth + 1)
        return tuple(value)
    if func == "sorted" and len(node.args) == 1:
        value = _resolve(node.args[0], module, project, depth + 1)
        return tuple(sorted(value))
    if func == "frozenset" and len(node.args) <= 1:
        value = _resolve(node.args[0], module, project, depth + 1) if node.args else ()
        return frozenset(value)
    raise _ExtractionError(f"unsupported call {func!r}", node)


# ---------------------------------------------------------------------------
# R004 — exception hygiene
# ---------------------------------------------------------------------------

_BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

#: Catch-alls whose silent swallowing must be justified.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@register_rule
class ExceptionHygieneRule(Rule):
    """No bare excepts, no foreign hierarchies, no silent broad swallows."""

    code = "R004"
    name = "exception-hygiene"
    description = (
        "no bare 'except:'; raises derive from ReproError or the stdlib; "
        "'except Exception: pass/continue' requires a justified suppression"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        """Check raise/except sites across the project."""
        allowed = set(_BUILTIN_EXCEPTIONS)
        allowed |= project.subclasses_of({"ReproError"}) | {"ReproError"}
        for module in project.modules:
            imports = _import_bindings(module.tree)
            for local, origin in imports.items():
                if origin.startswith("repro.exceptions."):
                    allowed.add(local)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(module, node)
                elif isinstance(node, ast.Raise):
                    yield from self._check_raise(module, node, allowed)

    def _check_handler(self, module: ModuleInfo, handler: ast.ExceptHandler) -> Iterator[Violation]:
        if handler.type is None:
            yield Violation(
                code=self.code,
                message="bare 'except:' also swallows KeyboardInterrupt/"
                        "SystemExit; name the exceptions (ReproError for "
                        "library failures)",
                path=module.relpath, line=handler.lineno,
                col=handler.col_offset,
            )
            return
        caught = self._caught_names(handler.type)
        if not (caught & _BROAD_EXCEPTIONS):
            return
        if all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in handler.body):
            yield Violation(
                code=self.code,
                message="'except Exception' that silently drops the failure "
                        "hides broken configurations; narrow it to "
                        "ReproError, or count/log the failure, or suppress "
                        "with a reason",
                path=module.relpath, line=handler.lineno,
                col=handler.col_offset,
            )

    @staticmethod
    def _caught_names(node: ast.expr) -> set:
        names = set()
        elements = node.elts if isinstance(node, ast.Tuple) else [node]
        for element in elements:
            path = _dotted_path(element)
            if path:
                names.add(path[-1])
        return names

    def _check_raise(
        self, module: ModuleInfo, node: ast.Raise, allowed: set
    ) -> Iterator[Violation]:
        exc = node.exc
        if exc is None:
            return  # re-raise
        if isinstance(exc, ast.Call):
            target = exc.func
        else:
            target = exc
        path = _dotted_path(target)
        if path is None:
            return  # dynamic (e.g. type(exc)(...)): not statically checkable
        name = path[-1]
        if not isinstance(exc, ast.Call) and (not name[:1].isupper()):
            return  # 'raise err' — a caught exception variable
        if name not in allowed:
            yield Violation(
                code=self.code,
                message=f"raised exception {name!r} does not derive from "
                        "ReproError or a stdlib exception; extend the "
                        "hierarchy in repro.exceptions",
                path=module.relpath, line=node.lineno, col=node.col_offset,
            )


# ---------------------------------------------------------------------------
# R005 — export sync
# ---------------------------------------------------------------------------


@register_rule
class ExportSyncRule(Rule):
    """Public modules declare ``__all__`` consistent with their contents."""

    code = "R005"
    name = "export-sync"
    description = (
        "public modules declare a literal __all__; every listed name "
        "resolves, every public definition is listed, and package "
        "__init__ re-exports what it imports from the project"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        """Check one module's ``__all__`` against its top-level bindings."""
        basename = module.path.name
        if basename == "__main__.py":
            return
        if basename.startswith("_") and basename != "__init__.py":
            return
        exported, all_node = self._parse_all(module)
        if all_node is None:
            yield Violation(
                code=self.code,
                message="public module must declare __all__ (a literal "
                        "list/tuple of strings)",
                path=module.relpath, line=1,
            )
            return
        if exported is None:
            yield Violation(
                code=self.code,
                message="__all__ must be a literal list/tuple of string "
                        "constants so it is statically checkable",
                path=module.relpath, line=all_node.lineno,
                col=all_node.col_offset,
            )
            return
        seen: set[str] = set()
        for name in exported:
            if name in seen:
                yield Violation(
                    code=self.code,
                    message=f"__all__ lists {name!r} more than once",
                    path=module.relpath, line=all_node.lineno,
                )
            seen.add(name)
        bindings = self._top_level_bindings(module.tree)
        for name in exported:
            if name not in bindings:
                yield Violation(
                    code=self.code,
                    message=f"__all__ exports {name!r} but the module never "
                            "defines or imports it",
                    path=module.relpath, line=all_node.lineno,
                )
        yield from self._check_unexported(module, exported, all_node)
        if basename == "__init__.py":
            yield from self._check_reexports(module, exported)

    @staticmethod
    def _parse_all(module: ModuleInfo) -> tuple:
        for node in module.tree.body:
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "__all__"):
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in value.elts
                ):
                    return [e.value for e in value.elts], node
                return None, node
        return None, None

    @staticmethod
    def _top_level_bindings(tree: ast.Module) -> set:
        bindings: set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bindings.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        bindings.update(
                            e.id for e in target.elts if isinstance(e, ast.Name)
                        )
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    bindings.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bindings.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        bindings.add(alias.asname or alias.name)
        return bindings

    def _check_unexported(
        self, module: ModuleInfo, exported: list, all_node: ast.AST
    ) -> Iterator[Violation]:
        for node in module.tree.body:
            names: list[str] = []
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names = [node.name]
            elif isinstance(node, ast.Assign):
                names = [
                    t.id for t in node.targets
                    if isinstance(t, ast.Name) and t.id.isupper()
                ]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.target.id.isupper():
                    names = [node.target.id]
            for name in names:
                if name.startswith("_") or name in exported:
                    continue
                kind = ("constant" if name.isupper() else
                        "class" if isinstance(node, ast.ClassDef) else
                        "function")
                yield Violation(
                    code=self.code,
                    message=f"public {kind} {name!r} is missing from "
                            "__all__ (export it or prefix it with '_')",
                    path=module.relpath, line=node.lineno,
                    col=node.col_offset,
                )

    def _check_reexports(
        self, module: ModuleInfo, exported: list
    ) -> Iterator[Violation]:
        package_root = module.dotted_name.split(".")[0] if module.dotted_name else None
        for node in module.tree.body:
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            is_project = node.level > 0 or (
                package_root and node.module.split(".")[0] == package_root
            )
            if not is_project:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                if local.startswith("_") or alias.name == "*":
                    continue
                if local not in exported:
                    yield Violation(
                        code=self.code,
                        message=f"package __init__ imports {local!r} from "
                                f"{node.module} but does not re-export it in "
                                "__all__",
                        path=module.relpath, line=node.lineno,
                        col=node.col_offset,
                    )


def default_rules() -> list:
    """One instance of every registered rule, in code order."""
    from repro.tools.lint.engine import RULE_REGISTRY

    return [cls() for _, cls in sorted(RULE_REGISTRY.items())]
