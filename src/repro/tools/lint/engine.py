"""Core of the ``repro lint`` engine.

The engine is deliberately small: it walks a set of Python files, parses
each into an AST exactly once, extracts ``# repro: disable=CODE`` comments
and hands the parsed modules to a list of pluggable :class:`Rule` objects.
Rules come in two flavours:

* **module rules** inspect one file at a time (:meth:`Rule.check_module`);
* **project rules** see every file together (:meth:`Rule.check_project`),
  which is what lets R002 resolve the estimator class hierarchy across
  modules and R003 diff every vendor module against ``table1_spec``.

Suppression comments have the form::

    something_risky()  # repro: disable=R001 -- why this is safe

and may also stand alone on the line directly above the violating
statement.  A suppression without a ``-- reason`` (or naming an unknown
rule code) is itself reported as an ``R000`` violation, so every surviving
suppression in the tree carries a human-readable justification.  ``R000``
violations cannot be suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "COMPANION_CODES",
    "ENGINE_CODE",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "RULE_REGISTRY",
    "Suppression",
    "Violation",
    "apply_suppressions",
    "iter_python_files",
    "load_module",
    "parse_suppressions",
    "register_rule",
    "run_lint",
    "suppression_violations",
]

#: Code reserved for engine-level problems (parse failures, malformed or
#: unknown suppressions).  Never suppressible.
ENGINE_CODE = "R000"

#: Codes owned by companion analyzers sharing the ``# repro: disable=``
#: comment syntax in the same source tree.  ``repro lint`` must not report
#: a justified ``repro flow``, ``repro race``, ``repro perf``,
#: ``repro shape``, or ``repro wire`` suppression as an unknown code (and
#: vice versa: the flow, race, perf, shape, and wire runners include the
#: R-codes in their known sets).
COMPANION_CODES = frozenset({
    "F101", "F102", "F103", "F104", "F105",
    "C201", "C202", "C203", "C204", "C205", "C206",
    "P301", "P302", "P303", "P304", "P305", "P306",
    "S401", "S402", "S403", "S404", "S405", "S406",
    "W501", "W502", "W503", "W504", "W505", "W506",
})

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Violation:
    """One rule finding at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False
    reason: str | None = None

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: disable=...`` comment."""

    line: int
    codes: tuple
    reason: str
    standalone: bool  # the whole line is the comment

    @property
    def applies_to_line(self) -> int:
        """The source line this suppression covers."""
        return self.line + 1 if self.standalone else self.line


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: list = field(default_factory=list)

    @property
    def dotted_name(self) -> str:
        """Best-effort dotted module name derived from the path."""
        parts = list(Path(self.relpath).with_suffix("").parts)
        # Drop everything up to a src/ layout root, so absolute and
        # relative paths map to the same import path.
        if "src" in parts:
            parts = parts[parts.index("src") + 1:]
        elif "repro" in parts:
            parts = parts[parts.index("repro"):]
        while parts and parts[0] == ".":
            parts.pop(0)
        if parts and parts[-1] == "__init__":
            parts.pop()
        return ".".join(parts)

    def top_level_assign(self, name: str) -> ast.expr | None:
        """The value expression bound to ``name`` at module top level."""
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return node.value
            elif isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Name)
                        and node.target.id == name):
                    return node.value
        return None


@dataclass
class Project:
    """Every module of one lint run, plus cross-module indexes."""

    modules: list = field(default_factory=list)

    def module_by_dotted_name(self, dotted: str) -> ModuleInfo | None:
        """Look up a module by import path (``repro.learn.base``), if linted."""
        for module in self.modules:
            if module.dotted_name == dotted:
                return module
        return None

    def class_defs(self) -> dict:
        """Map class name -> list of (module, ClassDef, base-name tuple).

        Bases are reduced to the final attribute component
        (``repro.learn.base.BaseEstimator`` -> ``BaseEstimator``) so the
        hierarchy can be chased by name across modules without imports.
        """
        index: dict[str, list] = {}
        for module in self.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = tuple(
                    base_name
                    for base in node.bases
                    if (base_name := _final_name(base)) is not None
                )
                index.setdefault(node.name, []).append((module, node, bases))
        return index

    def subclasses_of(self, roots: Iterable[str]) -> set:
        """Names of classes transitively deriving from ``roots`` by name."""
        index = self.class_defs()
        known = set(roots)
        changed = True
        while changed:
            changed = False
            for name, entries in index.items():
                if name in known:
                    continue
                for _, _, bases in entries:
                    if any(base in known for base in bases):
                        known.add(name)
                        changed = True
                        break
        return known - set(roots)


def _final_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class Rule:
    """Base class for lint rules; register subclasses with ``@register_rule``."""

    code: str = ENGINE_CODE
    name: str = "abstract"
    description: str = ""

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Violation]:
        """Yield violations found in one module (override for per-file rules)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Yield violations needing a whole-project view (override if used)."""
        return ()


#: Registry of rule code -> rule class, filled by ``@register_rule``.
RULE_REGISTRY: dict[str, type] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def parse_suppressions(source: str) -> list:
    """Extract every ``# repro: disable=...`` comment from ``source``.

    Real comments are found with :mod:`tokenize` so that suppression
    syntax quoted inside string literals (docs, tests, messages) is never
    mistaken for a live suppression.
    """
    suppressions = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        lineno, col = token.start
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
            if code.strip()
        )
        suppressions.append(Suppression(
            line=lineno,
            codes=codes,
            reason=(match.group("reason") or "").strip(),
            standalone=not token.line[:col].strip(),
        ))
    return suppressions


def iter_python_files(paths: Sequence) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, sorted, without duplicates."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_module(path: Path, root: Path | None = None) -> tuple:
    """Parse one file; returns ``(ModuleInfo | None, [parse violations])``."""
    relpath = str(path)
    if root is not None:
        try:
            relpath = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            relpath = str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        violation = Violation(
            code=ENGINE_CODE,
            message=f"could not parse file: {exc.msg}",
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
        )
        return None, [violation]
    module = ModuleInfo(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    return module, []


def suppression_violations(module: ModuleInfo, known_codes: set) -> Iterator[Violation]:
    """Engine-level findings about a module's suppression comments.

    Shared by ``repro lint`` and ``repro flow``: a suppression without a
    reason, targeting :data:`ENGINE_CODE`, or naming a code that neither
    the current run nor a companion analyzer owns is itself a violation.
    """
    for suppression in module.suppressions:
        if not suppression.reason:
            yield Violation(
                code=ENGINE_CODE,
                message=(
                    "suppression comment needs a justification: "
                    "'# repro: disable=CODE -- reason'"
                ),
                path=module.relpath,
                line=suppression.line,
            )
        for code in suppression.codes:
            if code == ENGINE_CODE:
                yield Violation(
                    code=ENGINE_CODE,
                    message=f"{ENGINE_CODE} findings cannot be suppressed",
                    path=module.relpath,
                    line=suppression.line,
                )
            elif code not in known_codes and code not in COMPANION_CODES:
                yield Violation(
                    code=ENGINE_CODE,
                    message=f"suppression names unknown rule code {code!r}",
                    path=module.relpath,
                    line=suppression.line,
                )


def apply_suppressions(violations: list, modules: dict) -> list:
    """Mark violations covered by a justified suppression comment."""
    resolved = []
    for violation in violations:
        module = modules.get(violation.path)
        if module is None or violation.code == ENGINE_CODE:
            resolved.append(violation)
            continue
        covering = None
        for suppression in module.suppressions:
            if (violation.code in suppression.codes
                    and suppression.applies_to_line == violation.line
                    and suppression.reason):
                covering = suppression
                break
        if covering is None:
            resolved.append(violation)
        else:
            resolved.append(replace(
                violation, suppressed=True, reason=covering.reason,
            ))
    return resolved


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: list = field(default_factory=list)
    n_files: int = 0

    @property
    def unsuppressed(self) -> list:
        return [v for v in self.violations if not v.suppressed]

    @property
    def suppressed(self) -> list:
        return [v for v in self.violations if v.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.unsuppressed else 0


def run_lint(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
) -> LintResult:
    """Lint ``paths`` with ``rules`` (default: every registered rule)."""
    if rules is None:
        rules = [cls() for _, cls in sorted(RULE_REGISTRY.items())]
    known_codes = {rule.code for rule in rules} | {ENGINE_CODE}

    project = Project()
    violations: list[Violation] = []
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        module, parse_violations = load_module(path, root=root)
        violations.extend(parse_violations)
        if module is not None:
            project.modules.append(module)

    for module in project.modules:
        violations.extend(suppression_violations(module, known_codes))
        for rule in rules:
            violations.extend(rule.check_module(module, project))
    for rule in rules:
        violations.extend(rule.check_project(project))

    modules_by_path = {m.relpath: m for m in project.modules}
    violations = apply_suppressions(violations, modules_by_path)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintResult(violations=violations, n_files=n_files)
