"""``repro lint`` — AST-based invariant checker for the reproduction.

The paper's measurement protocol only holds if a handful of invariants
hold everywhere in the codebase: every RNG is threaded from an explicit
seed (§3.2's 1.7M-measurement protocol), every estimator honors the
shared fit/predict contract that configuration sweeps rely on blindly,
every vendor module encodes Table 1's control surface verbatim, and no
exception handler silently swallows a failed configuration.  This package
turns those prose contracts into machine-checked lint rules.

Importable API::

    from repro.tools.lint import lint_paths
    result = lint_paths(["src/repro"])
    assert result.exit_code == 0, result.violations

Command line::

    repro lint [PATHS...] [--format text|json] [--show-suppressed]
    python -m repro.tools.lint

Findings are suppressed per line with a justified comment::

    risky()  # repro: disable=R001 -- documented opt-in, see DESIGN.md
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

# Importing the rules module registers every built-in rule.
import repro.tools.lint.rules as rules  # noqa: F401  (registration side effect)
from repro.tools.lint.engine import (
    ENGINE_CODE,
    LintResult,
    ModuleInfo,
    Project,
    Rule,
    RULE_REGISTRY,
    Suppression,
    Violation,
    register_rule,
    run_lint,
)
from repro.tools.lint.reporters import REPORTERS, render_json, render_text
from repro.tools.lint.rules import default_rules

__all__ = [
    "ENGINE_CODE",
    "LintResult",
    "ModuleInfo",
    "Project",
    "REPORTERS",
    "RULE_REGISTRY",
    "Rule",
    "Suppression",
    "Violation",
    "default_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "rules",
    "run_lint",
]


def lint_paths(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
) -> LintResult:
    """Lint files/directories; see :func:`repro.tools.lint.engine.run_lint`."""
    return run_lint(paths, rules=rules, root=root)


def lint_source(
    source: str,
    filename: str = "<string>",
    rules: Sequence | None = None,
) -> LintResult:
    """Lint one in-memory source snippet (used by the rule unit tests)."""
    import ast

    from repro.tools.lint.engine import (
        apply_suppressions,
        parse_suppressions,
        suppression_violations,
    )

    if rules is None:
        rules = default_rules()
    known_codes = {rule.code for rule in rules} | {ENGINE_CODE}
    violations: list[Violation] = []
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        violations.append(Violation(
            code=ENGINE_CODE,
            message=f"could not parse file: {exc.msg}",
            path=filename, line=exc.lineno or 1,
        ))
        return LintResult(violations=violations, n_files=1)
    module = ModuleInfo(
        path=Path(filename), relpath=filename, source=source, tree=tree,
        suppressions=parse_suppressions(source),
    )
    project = Project(modules=[module])
    violations.extend(suppression_violations(module, known_codes))
    for rule in rules:
        violations.extend(rule.check_module(module, project))
        violations.extend(rule.check_project(project))
    violations = apply_suppressions(violations, {module.relpath: module})
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintResult(violations=violations, n_files=1)
