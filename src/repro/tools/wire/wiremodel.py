"""The wire model: static facts about the serving contract.

One :func:`build_wire_model` pass over the shared
:class:`~repro.tools.flow.graph.FlowIndex` (plus the shape analyzer's
dtype facts) extracts everything the W-rules judge:

* **gateways** — for every class defining a ``_route`` method, the
  derived route table: a symbolic interpreter walks the routing
  conditionals (``segments == ("health",)``, ``request.method ==
  "POST"``, ``not rest``, ``rest[1:] == ("await",)`` ...) down to each
  terminal handler and records the path template, HTTP method, handled
  operation name, request/response JSON fields, and the statuses of
  every error kind raised in the handler's resolved-call closure —
  plus the ``/metrics/summary`` surface (operation names, the latency
  sample prefix, the summary document keys).
* **clients** — for every class defining a ``_request`` method, each
  public method's wire expectation: HTTP method, path template
  (f-string holes become ``*``), payload keys sent, and response keys
  read (directly, via ``.get``, or through a resolved decoder such as
  ``handle_from_wire``).
* **taxonomies** — the ``ERROR_STATUS``/``KIND_TO_ERROR`` dict
  literals of any module defining both, plus every ``raise`` and
  construction site of a ``ReproError``-family class across the
  analyzed tree (W502's completeness and round-trip evidence).
* **resource_sites** (W503) — sockets, servers, executors, started
  threads, connections and files acquired without ``with``/``try:
  finally`` protection against exception paths, with escape analysis
  for ownership transfer (returned, yielded, or stored on an object).
* **encode_sites** (W504) — values that cannot survive ``json.dumps``
  reaching a protocol encode site in a serving module: object-dtype
  arrays (shape model's lattice), numpy scalars, sets, non-finite
  float literals.
* **blocking_sites** (W505) — indefinitely blocking calls
  (``time.sleep``, no-timeout ``.wait()``, ``subprocess``, ``input``,
  ``select.select``) reachable from a gateway's handler closure, where
  the soft-timeout middleware can only answer *after* the handler
  returns.

The model is memoized on the shared
:class:`~repro.tools.indexing.IndexedProject` cache entry, so the six
analyzers in one process share a single parse and repeated wire runs
share this extraction.  Matching is name-based (like every analyzer in
the suite): aliased imports of an error class or a re-exported
``serve_background`` are invisible, which under-reports rather than
false-positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.tools.flow.graph import FlowIndex, dotted_path

__all__ = [
    "ClientModel",
    "GatewayModel",
    "TaxonomyModel",
    "WireModel",
    "build_wire_model",
]

#: Attribute names whose call releases a tracked resource.
_RELEASE_ATTRS = frozenset({"close", "shutdown", "server_close", "join",
                            "terminate"})

#: Last path component of an acquisition constructor -> resource kind.
_ACQUIRE_NAMES = {
    "socket": "socket",
    "create_connection": "socket",
    "HTTPConnection": "connection",
    "HTTPSConnection": "connection",
    "ThreadPoolExecutor": "executor",
    "ProcessPoolExecutor": "executor",
    "HTTPServer": "server",
    "ThreadingHTTPServer": "server",
    "serve_background": "server",
}

#: ``subprocess`` entry points that block on a child process.
_SUBPROCESS_BLOCKERS = frozenset({"run", "call", "check_call",
                                  "check_output", "Popen"})

#: numpy scalar constructors whose instances ``json.dumps`` rejects.
_NP_SCALARS = frozenset({"float64", "float32", "int64", "int32", "intp",
                         "int8", "int16", "uint8", "bool_"})


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------

def _const_str(node) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _const_int(node) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def _dict_str_keys(node) -> tuple:
    """Sorted constant string keys of a dict literal (non-const ignored)."""
    if not isinstance(node, ast.Dict):
        return ()
    keys = {key.value for key in node.keys
            if key is not None and isinstance(key, ast.Constant)
            and isinstance(key.value, str)}
    return tuple(sorted(keys))


def _render_template(node) -> str | None:
    """A path template: constants verbatim, f-string holes become ``*``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _subscript_index(node):
    """The slice of a ``Subscript`` with 3.8-and-later AST compatibility."""
    inner = node.slice
    if isinstance(inner, ast.Index):  # pragma: no cover - pre-3.9 AST
        inner = inner.value
    return inner


def _read_keys(tree, names: set) -> set:
    """Constant keys read off ``names`` via subscript or ``.get``."""
    keys: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in names:
            key = _const_str(_subscript_index(node))
            if key is not None:
                keys.add(key)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in names and node.args:
            key = _const_str(node.args[0])
            if key is not None:
                keys.add(key)
    return keys


# ----------------------------------------------------------------------
# Model dataclasses
# ----------------------------------------------------------------------

@dataclass
class GatewayModel:
    """One routing class (defines ``_route``) and its derived surface."""

    module_name: str
    relpath: str
    class_name: str
    line: int
    #: ``"METHOD /path/template" -> {operation, request, response,
    #: statuses, line}`` (``line`` is stripped for the spec).
    routes: dict = field(default_factory=dict)
    #: ``{"operations": (...), "sample_prefix": str|None,
    #: "summary_keys": (...)}``
    metrics: dict = field(default_factory=dict)


@dataclass
class ClientModel:
    """One client class (defines ``_request``) and its expectations."""

    module_name: str
    relpath: str
    class_name: str
    line: int
    #: ``method name -> {method, path, payload, reads, line}``.
    entries: dict = field(default_factory=dict)


@dataclass
class TaxonomyModel:
    """``ERROR_STATUS``/``KIND_TO_ERROR`` literals of one module."""

    module_name: str
    relpath: str
    line: int
    #: ``kind -> (status, line)``
    error_status: dict = field(default_factory=dict)
    #: ``kind -> (mapped class name, line)``
    kind_to_error: dict = field(default_factory=dict)


@dataclass
class WireModel:
    """Everything the W-rules judge, extracted in one pass."""

    index: FlowIndex
    #: the shape analyzer's model, shared for W504's dtype facts.
    shape_model: object = None
    gateways: list = field(default_factory=list)
    clients: list = field(default_factory=list)
    taxonomies: list = field(default_factory=list)
    #: error class name -> sorted [(relpath, line)] of ``raise`` sites.
    raised_kinds: dict = field(default_factory=dict)
    #: error class name -> sorted [(relpath, line)] of constructions.
    constructed_kinds: dict = field(default_factory=dict)
    #: (relpath, line, col, message) per unprotected resource (W503).
    resource_sites: list = field(default_factory=list)
    #: (relpath, line, col, message) per unsafe encode value (W504).
    encode_sites: list = field(default_factory=list)
    #: (relpath, line, col, message) per blocking handler call (W505).
    blocking_sites: list = field(default_factory=list)
    #: names in the ReproError class family (roots included).
    error_names: set = field(default_factory=set)
    #: project-defined HTTP-server subclasses (W503 acquisition names).
    server_names: set = field(default_factory=set)

    def routes(self) -> dict:
        """Merged route table across every gateway."""
        merged: dict = {}
        for gateway in self.gateways:
            merged.update(gateway.routes)
        return merged

    def client_entries(self) -> dict:
        """Merged client expectations across every client class."""
        merged: dict = {}
        for client in self.clients:
            merged.update(client.entries)
        return merged

    def status_for_kind(self, kind: str) -> int:
        """HTTP status of an error kind via the taxonomy and base chain."""
        bases = _base_map(self.index)
        seen: set = set()
        while kind and kind not in seen:
            seen.add(kind)
            for taxonomy in self.taxonomies:
                if kind in taxonomy.error_status:
                    return taxonomy.error_status[kind][0]
            kind = next((base for base in bases.get(kind, ())
                         if base in self.error_names), None)
        return 500


def _base_map(index: FlowIndex) -> dict:
    """Class name -> tuple of base names, across the analyzed project."""
    bases: dict = {}
    for name, entries in index.project.class_defs().items():
        for _, _, base_names in entries:
            bases.setdefault(name, base_names)
    return bases


# ----------------------------------------------------------------------
# Route extraction: a symbolic interpreter over routing conditionals
# ----------------------------------------------------------------------

@dataclass
class _Constraints:
    """Accumulated path knowledge along one routing branch."""

    method: str | None = None
    exact_len: int | None = None
    min_len: int = 0
    literals: dict = field(default_factory=dict)

    def copy(self) -> "_Constraints":
        return _Constraints(self.method, self.exact_len, self.min_len,
                            dict(self.literals))


class _RouteExtractor:
    """Derives one gateway's route table from its ``_route`` method.

    The environment maps local names onto a tiny segment algebra —
    ``("request",)`` the request object, ``("tuple",)`` the full
    segment tuple, ``("item", i)`` one segment, ``("tail", s)`` the
    slice ``segments[s:]``, ``("def", node)`` a locally defined
    handler — and routing ``if`` tests translate into
    :class:`_Constraints` updates.  Unparseable tests are skipped
    conservatively (their bodies are walked with unchanged
    constraints), so a partially understood router still yields the
    routes it can prove.
    """

    def __init__(self, model: WireModel, index: FlowIndex,
                 module, class_name: str):
        self.model = model
        self.index = index
        self.module = module
        self.class_name = class_name
        self.routes: dict = {}
        self.operations: set = set()

    # -- environment -------------------------------------------------

    def _seg_expr(self, node, env):
        if isinstance(node, ast.Name):
            tag = env.get(node.id)
            if tag is not None and tag[0] in {"tuple", "item", "tail"}:
                return tag
            return None
        if isinstance(node, ast.Attribute) and node.attr == "segments" \
                and isinstance(node.value, ast.Name) \
                and env.get(node.value.id) == ("request",):
            return ("tuple",)
        if isinstance(node, ast.Subscript):
            base = self._seg_expr(node.value, env)
            if base is None:
                return None
            inner = _subscript_index(node)
            if isinstance(inner, ast.Slice):
                lower = _const_int(inner.lower) if inner.lower is not None \
                    else 0
                if lower is None or inner.upper is not None:
                    return None
                if base == ("tuple",):
                    return ("tail", lower)
                if base[0] == "tail":
                    return ("tail", base[1] + lower)
                return None
            offset = _const_int(inner)
            if offset is None or offset < 0:
                return None
            if base == ("tuple",):
                return ("item", offset)
            if base[0] == "tail":
                return ("item", base[1] + offset)
        return None

    def _bind(self, stmt: ast.Assign, env: dict) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            tag = self._seg_expr(stmt.value, env)
            if tag is not None:
                env[target.id] = tag
            return
        if isinstance(target, ast.Tuple) and isinstance(stmt.value, ast.Tuple) \
                and len(target.elts) == len(stmt.value.elts):
            for name_node, value in zip(target.elts, stmt.value.elts):
                if not isinstance(name_node, ast.Name):
                    continue
                tag = self._seg_expr(value, env)
                if tag is not None:
                    env[name_node.id] = tag

    # -- tests -------------------------------------------------------

    def _apply_test(self, test, env, cons: _Constraints):
        """Constraints after ``test`` holds, or ``None`` if unparseable."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            out = cons
            parsed = False
            for value in test.values:
                new = self._apply_test(value, env, out)
                if new is not None:
                    out, parsed = new, True
            return out if parsed else None
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            tag = self._seg_expr(test.operand, env)
            if tag is not None and tag[0] == "tail":
                out = cons.copy()
                out.exact_len = tag[1]
                return out
            return None
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        left, op, right = test.left, test.ops[0], test.comparators[0]
        if isinstance(left, ast.Attribute) and left.attr == "method" \
                and isinstance(left.value, ast.Name) \
                and env.get(left.value.id) == ("request",) \
                and isinstance(op, ast.Eq):
            method = _const_str(right)
            if method is None:
                return None
            out = cons.copy()
            out.method = method
            return out
        if isinstance(left, ast.Call) and isinstance(left.func, ast.Name) \
                and left.func.id == "len" and len(left.args) == 1:
            tag = self._seg_expr(left.args[0], env)
            length = _const_int(right)
            if tag is None or length is None:
                return None
            base = tag[1] if tag[0] == "tail" else 0
            if tag[0] not in {"tuple", "tail"}:
                return None
            out = cons.copy()
            if isinstance(op, ast.Eq):
                out.exact_len = base + length
            elif isinstance(op, (ast.GtE, ast.Gt)):
                out.min_len = max(out.min_len, base + length)
            else:
                return None
            return out
        if not isinstance(op, ast.Eq):
            return None
        tag = self._seg_expr(left, env)
        if tag is None:
            return None
        if tag[0] == "item":
            literal = _const_str(right)
            if literal is None:
                return None
            out = cons.copy()
            out.literals[tag[1]] = literal
            return out
        if tag[0] in {"tuple", "tail"} and isinstance(right, ast.Tuple):
            values = [_const_str(elt) for elt in right.elts]
            if any(value is None for value in values):
                return None
            base = tag[1] if tag[0] == "tail" else 0
            out = cons.copy()
            out.exact_len = base + len(values)
            for offset, value in enumerate(values):
                out.literals[base + offset] = value
            return out
        return None

    # -- walking -----------------------------------------------------

    def extract(self, route_fn) -> dict:
        env: dict = {}
        params = route_fn.param_names()
        if params:
            env[params[0]] = ("request",)
        self._walk(route_fn.node.body, env, _Constraints(), depth=0)
        return self.routes

    def _walk(self, stmts, env, cons: _Constraints, depth: int) -> None:
        if depth > 4:
            return
        env = dict(env)
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                self._bind(stmt, env)
            elif isinstance(stmt, ast.FunctionDef):
                env[stmt.name] = ("def", stmt)
            elif isinstance(stmt, ast.If):
                inside = self._apply_test(stmt.test, env, cons)
                self._walk(stmt.body, env,
                           inside if inside is not None else cons, depth)
                if stmt.orelse:
                    self._walk(stmt.orelse, env, cons, depth)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self._terminal(stmt, env, cons, depth)

    def _terminal(self, stmt, env, cons: _Constraints, depth: int) -> None:
        value = stmt.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
                and func.value.id == "self":
            seg_args = [arg for arg in value.args
                        if isinstance(arg, ast.Name)
                        and env.get(arg.id) == ("tuple",)]
            target = self.index.functions.get(
                (self.module.dotted_name, f"{self.class_name}.{func.attr}")
            )
            if seg_args and target is not None:
                sub_env: dict = {}
                for param, arg in zip(target.param_names(), value.args):
                    if isinstance(arg, ast.Name) \
                            and env.get(arg.id) in {("request",), ("tuple",)}:
                        sub_env[param] = env[arg.id]
                self._walk(target.node.body, sub_env, cons, depth + 1)
                return
            dispatch = self._timed_dispatch(value, env)
            if dispatch is not None:
                operation, handler = dispatch
                self._record(stmt, cons, operation=operation,
                             request=(),
                             response=self._handler_response(handler),
                             statuses=(200,))
                return
            if target is not None:
                operation, request, response = \
                    self._method_details(target.node, env)
                self._record(stmt, cons, operation=operation,
                             request=request, response=response,
                             statuses=self._closure_statuses(target.key))
                return
        if isinstance(func, ast.Name):
            body = next((kw.value for kw in value.keywords
                         if kw.arg == "body"), None)
            self._record(stmt, cons, operation=None, request=(),
                         response=_dict_str_keys(body), statuses=(200,))

    def _timed_dispatch(self, call: ast.Call, env):
        """``(operation, handler expr/def)`` of a timed dispatch call.

        Matches ``self.<anything>(..., "operation", handler)`` where the
        handler is a lambda or a locally defined function — the router
        idiom for operations with no dedicated method.
        """
        operation = next((text for arg in call.args
                          if (text := _const_str(arg)) is not None), None)
        handler = None
        for arg in call.args:
            if isinstance(arg, ast.Lambda):
                handler = arg
            elif isinstance(arg, ast.Name) and env.get(arg.id, ())[:1] == ("def",):
                handler = env[arg.id][1]
        if operation is None or handler is None:
            return None
        self.operations.add(operation)
        return operation, handler

    def _handler_response(self, handler) -> tuple:
        """Response keys of a lambda or inner-def handler."""
        if isinstance(handler, ast.Lambda):
            return self._response_of_expr(handler.body)
        keys: set = set()
        for node in ast.walk(handler):
            if isinstance(node, ast.Return) and node.value is not None:
                keys.update(self._response_of_expr(node.value))
        return tuple(sorted(keys))

    def _response_of_expr(self, expr) -> tuple:
        if isinstance(expr, ast.Dict):
            return _dict_str_keys(expr)
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            info, _ = self.index.resolve_function(
                self.module.dotted_name, expr.func.id
            )
            if info is not None:
                keys: set = set()
                for node in ast.walk(info.node):
                    if isinstance(node, ast.Return) \
                            and isinstance(node.value, ast.Dict):
                        keys.update(_dict_str_keys(node.value))
                return tuple(sorted(keys))
        return ()

    def _method_details(self, fdef, env) -> tuple:
        """``(operation, request keys, response keys)`` of a handler method."""
        body_names: set = set()
        for node in ast.walk(fdef):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call) \
                    and isinstance(node.value.func, ast.Attribute) \
                    and node.value.func.attr == "json":
                body_names.add(node.targets[0].id)
        request = tuple(sorted(_read_keys(fdef, body_names)))

        local_env = dict(env)
        for stmt in ast.walk(fdef):
            if isinstance(stmt, ast.FunctionDef) and stmt is not fdef:
                local_env[stmt.name] = ("def", stmt)
        operation, response = None, ()
        for node in ast.walk(fdef):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "self":
                dispatch = self._timed_dispatch(node, local_env)
                if dispatch is not None:
                    operation = dispatch[0]
                    response = self._handler_response(dispatch[1])
            elif isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Call) \
                    and isinstance(node.value.func, ast.Name):
                body = next((kw.value for kw in node.value.keywords
                             if kw.arg == "body"), None)
                if body is not None:
                    response = _dict_str_keys(body)
        return operation, request, response

    def _closure_statuses(self, start_key) -> tuple:
        """200 plus the statuses of error kinds raised in the closure."""
        statuses = {200}
        seen = {start_key}
        frontier = [start_key]
        while frontier and len(seen) <= 64:
            key = frontier.pop()
            info = self.index.functions.get(key)
            if info is None or key[0] not in self.index.modules:
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Raise) \
                        and isinstance(node.exc, ast.Call) \
                        and isinstance(node.exc.func, ast.Name) \
                        and node.exc.func.id in self.model.error_names:
                    statuses.add(
                        self.model.status_for_kind(node.exc.func.id))
            for site in self.index.calls.get(key, ()):
                if site.target is not None and site.target not in seen:
                    seen.add(site.target)
                    frontier.append(site.target)
        return tuple(sorted(statuses))

    def _record(self, stmt, cons: _Constraints, operation, request,
                response, statuses) -> None:
        length = cons.exact_len
        if length is None:
            if not cons.literals:
                return
            length = max(cons.literals) + 1
        parts = [cons.literals.get(i, "*") for i in range(length)]
        key = f"{cons.method or '*'} /" + "/".join(parts)
        self.routes[key] = {
            "operation": operation,
            "request": tuple(request),
            "response": tuple(response),
            "statuses": tuple(statuses),
            "line": stmt.lineno,
        }


def _gateway_metrics(extractor: _RouteExtractor, classdef) -> dict:
    """Operation names, sample prefix and summary keys of one gateway."""
    prefix = None
    for node in ast.walk(classdef):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "record_sample" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.JoinedStr) and arg.values \
                    and isinstance(arg.values[0], ast.Constant):
                prefix = str(arg.values[0].value)
            else:
                prefix = _const_str(arg)
    summary_keys: tuple = ()
    for key, route in extractor.routes.items():
        if key.endswith("/metrics/summary"):
            summary_keys = route["response"]
    return {
        "operations": tuple(sorted(extractor.operations)),
        "sample_prefix": prefix,
        "summary_keys": summary_keys,
    }


# ----------------------------------------------------------------------
# Client expectations
# ----------------------------------------------------------------------

def _client_prefix(index: FlowIndex, module, class_name: str) -> str:
    init = index.functions.get((module.dotted_name, f"{class_name}.__init__"))
    if init is None:
        return ""
    for node in ast.walk(init.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Attribute) \
                and node.targets[0].attr == "_prefix":
            template = _render_template(node.value)
            if template is not None:
                return template
    return ""


def _derive_client(index: FlowIndex, module, classdef) -> ClientModel:
    client = ClientModel(
        module_name=module.dotted_name,
        relpath=module.relpath,
        class_name=classdef.name,
        line=classdef.lineno,
    )
    prefix = _client_prefix(index, module, classdef.name)
    for key in sorted(index.functions):
        info = index.functions[key]
        if key[0] != module.dotted_name \
                or info.class_name != classdef.name \
                or info.name.startswith("_"):
            continue
        request_call = None
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "_request" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "self":
                request_call = node
                break
        if request_call is None or len(request_call.args) < 2:
            continue
        method = _const_str(request_call.args[0])
        path = _render_template(request_call.args[1])
        if method is None or path is None:
            continue
        absolute = any(
            kw.arg == "absolute" and isinstance(kw.value, ast.Constant)
            and kw.value.value is True for kw in request_call.keywords
        )
        full_path = path if absolute else prefix + path
        payload = _payload_keys(info.node, request_call)
        reads = _response_reads(index, module, info.node, request_call)
        client.entries[info.name] = {
            "method": method,
            "path": full_path,
            "payload": payload,
            "reads": reads,
            "line": request_call.lineno,
        }
    return client


def _payload_keys(fdef, request_call: ast.Call) -> tuple:
    if len(request_call.args) < 3:
        return ()
    payload = request_call.args[2]
    if isinstance(payload, ast.Dict):
        return _dict_str_keys(payload)
    if not isinstance(payload, ast.Name):
        return ()
    keys: set = set()
    for node in ast.walk(fdef):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name) and target.id == payload.id \
                and isinstance(node.value, ast.Dict):
            keys.update(_dict_str_keys(node.value))
        elif isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == payload.id:
            key = _const_str(_subscript_index(target))
            if key is not None:
                keys.add(key)
    return tuple(sorted(keys))


def _response_reads(index: FlowIndex, module, fdef,
                    request_call: ast.Call) -> tuple:
    """Response keys a client method reads off the ``_request`` result."""
    result_names: set = set()
    for node in ast.walk(fdef):
        if isinstance(node, ast.Assign) and node.value is request_call \
                and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            result_names.add(node.targets[0].id)
    keys = _read_keys(fdef, result_names)
    for node in ast.walk(fdef):
        # ``self._request(...)["key"]`` — read straight off the call.
        if isinstance(node, ast.Subscript) and node.value is request_call:
            key = _const_str(_subscript_index(node))
            if key is not None:
                keys.add(key)
        # The result handed whole to a resolved decoder: the decoder's
        # reads of its first parameter are this method's reads.
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and len(node.args) == 1 \
                and isinstance(node.args[0], ast.Name) \
                and node.args[0].id in result_names:
            info, _ = index.resolve_function(module.dotted_name,
                                             node.func.id)
            if info is not None:
                params = info.param_names()
                if params:
                    keys.update(_read_keys(info.node, {params[0]}))
    return tuple(sorted(keys))


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------

def _find_taxonomy(module) -> TaxonomyModel | None:
    status_node = module.top_level_assign("ERROR_STATUS")
    kind_node = module.top_level_assign("KIND_TO_ERROR")
    if not isinstance(status_node, ast.Dict) \
            or not isinstance(kind_node, ast.Dict):
        return None
    taxonomy = TaxonomyModel(
        module_name=module.dotted_name,
        relpath=module.relpath,
        line=status_node.lineno,
    )
    for key, value in zip(status_node.keys, status_node.values):
        kind, status = _const_str(key), _const_int(value)
        if kind is not None and status is not None:
            taxonomy.error_status[kind] = (status, key.lineno)
    for key, value in zip(kind_node.keys, kind_node.values):
        kind = _const_str(key)
        if kind is None:
            continue
        if isinstance(value, ast.Name):
            taxonomy.kind_to_error[kind] = (value.id, key.lineno)
        elif isinstance(value, ast.Attribute):
            taxonomy.kind_to_error[kind] = (value.attr, key.lineno)
    return taxonomy


def _collect_error_sites(model: WireModel) -> None:
    for module in model.index.project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) \
                        and isinstance(exc.func, ast.Name):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name in model.error_names:
                    model.raised_kinds.setdefault(name, []).append(
                        (module.relpath, node.lineno))
            elif isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name in model.error_names:
                    model.constructed_kinds.setdefault(name, []).append(
                        (module.relpath, node.lineno))
    for sites in model.raised_kinds.values():
        sites.sort()
    for sites in model.constructed_kinds.values():
        sites.sort()


# ----------------------------------------------------------------------
# Resource lifecycle (W503)
# ----------------------------------------------------------------------

@dataclass
class _Tracked:
    """One acquired resource name inside one function."""

    name: str
    kind: str
    line: int
    col: int
    is_thread: bool = False
    started: bool = False


def _acquisition_kind(call: ast.Call,
                      server_names=frozenset()) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    if name == "open":
        # Only the builtin (or ``path.open``) counts, and only outside
        # a ``with``; matched by name like everything else here.
        return "file"
    if name == "Thread":
        return "thread"
    if name in server_names:
        return "server"
    return _ACQUIRE_NAMES.get(name)


class _ResourceScanner:
    """W503: resources acquired without exception-path protection."""

    def __init__(self, model: WireModel, module):
        self.model = model
        self.module = module

    def scan(self, fdef) -> None:
        self.tracked: dict[str, _Tracked] = {}
        self.aliases: dict[str, str] = {}
        self._collect(fdef)
        if not self.tracked:
            return
        self._mark_aliases_and_starts(fdef)
        self.escaped = self._escapes(fdef)
        self._released_somewhere = {
            name: self._releases_in(fdef, name) for name in self.tracked
        }
        self._analyze_block(fdef.body, enclosing_tries=[])

    # -- collection --------------------------------------------------

    def _collect(self, fdef) -> None:
        protected: set = set()
        for node in ast.walk(fdef):
            if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
                for item in node.items:
                    protected.add(id(item.context_expr))
        for node in ast.walk(fdef):
            if isinstance(node, ast.FunctionDef) and node is not fdef:
                continue  # nested defs are scanned as their own functions
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            value = node.targets[0], node.value
            target, expr = value
            names: list = []
            if isinstance(target, ast.Name):
                names = [target.id]
            elif isinstance(target, ast.Tuple) and all(
                    isinstance(elt, ast.Name) for elt in target.elts):
                names = [elt.id for elt in target.elts]
            if not names:
                continue
            call = None
            if isinstance(expr, ast.Call) and id(expr) not in protected:
                call = expr
            elif isinstance(expr, ast.ListComp) \
                    and isinstance(expr.elt, ast.Call):
                call = expr.elt
            if call is None:
                continue
            kind = _acquisition_kind(call, self.model.server_names)
            if kind is None:
                continue
            for name in names:
                self.tracked[name] = _Tracked(
                    name=name, kind=kind, line=node.lineno,
                    col=node.col_offset, is_thread=(kind == "thread"),
                )

    def _mark_aliases_and_starts(self, fdef) -> None:
        for node in ast.walk(fdef):
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and isinstance(node.target, ast.Name) \
                    and isinstance(node.iter, ast.Name) \
                    and node.iter.id in self.tracked:
                self.aliases[node.target.id] = node.iter.id
        for node in ast.walk(fdef):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "start" \
                    and isinstance(node.func.value, ast.Name):
                owner = self._owner(node.func.value.id)
                if owner is not None:
                    self.tracked[owner].started = True

    def _owner(self, name: str) -> str | None:
        if name in self.tracked:
            return name
        return self.aliases.get(name)

    def _escapes(self, fdef) -> set:
        escaped: set = set()
        for node in ast.walk(fdef):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) \
                    and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id in self.tracked:
                        escaped.add(sub.id)
            elif isinstance(node, ast.Assign):
                stores_out = any(
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    for target in node.targets
                )
                if stores_out:
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) \
                                and sub.id in self.tracked:
                            escaped.add(sub.id)
        return escaped

    # -- protection analysis -----------------------------------------

    def _releases_in(self, node, name: str) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr in _RELEASE_ATTRS \
                    and isinstance(sub.func.value, ast.Name) \
                    and self._owner(sub.func.value.id) == name:
                return True
        return False

    def _risky(self, stmts) -> bool:
        """Any call in ``stmts`` that could raise past the resource."""
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and isinstance(func.value, ast.Name) \
                        and self._owner(func.value.id) is not None:
                    continue  # protocol call on a tracked resource
                if _acquisition_kind(node,
                                     self.model.server_names) is not None:
                    continue  # sibling acquisition, reported on its own
                return True
        return False

    def _analyze_block(self, stmts, enclosing_tries) -> None:
        for i, stmt in enumerate(stmts):
            for name in self._acquired_by(stmt):
                self._check(name, stmts, i, enclosing_tries)
            if isinstance(stmt, ast.Try):
                self._analyze_block(stmt.body, enclosing_tries + [stmt])
                for handler in stmt.handlers:
                    self._analyze_block(handler.body, enclosing_tries)
                self._analyze_block(stmt.orelse, enclosing_tries)
                self._analyze_block(stmt.finalbody, enclosing_tries)
            elif isinstance(stmt, (ast.If,)):
                self._analyze_block(stmt.body, enclosing_tries)
                self._analyze_block(stmt.orelse, enclosing_tries)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._analyze_block(stmt.body, enclosing_tries)
                self._analyze_block(stmt.orelse, enclosing_tries)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._analyze_block(stmt.body, enclosing_tries)

    def _acquired_by(self, stmt) -> list:
        if not isinstance(stmt, ast.Assign):
            return []
        return [name for name, info in self.tracked.items()
                if info.line == stmt.lineno]

    def _check(self, name, block, i, enclosing_tries) -> None:
        info = self.tracked[name]
        if name in self.escaped:
            return
        if info.is_thread and not info.started:
            return  # an unstarted Thread object holds no OS resource
        for guard in enclosing_tries:
            protected = guard.finalbody + [h for h in guard.handlers]
            if any(self._releases_in(node, name) for node in protected):
                return
        for j in range(i + 1, len(block)):
            stmt = block[j]
            release_in_cleanup = isinstance(stmt, ast.Try) and any(
                self._releases_in(node, name)
                for node in stmt.finalbody + list(stmt.handlers)
            )
            if release_in_cleanup or self._releases_in(stmt, name):
                if self._risky(block[i + 1:j]):
                    self._report(
                        info,
                        f"{info.kind} `{name}` is released only on the "
                        "success path: calls between the acquisition and "
                        "the release/try-finally can raise and leak it",
                    )
                return
        # A release elsewhere in the function (a different nesting
        # level, e.g. a sibling handler) is accepted conservatively;
        # only a resource with no release at all is reported here.
        if not self._released_somewhere.get(name, False):
            self._report(
                info,
                f"{info.kind} `{name}` is acquired but never released, "
                "returned, or stored; close it in a finally block or "
                "use a context manager",
            )

    def _report(self, info: _Tracked, message: str) -> None:
        self.model.resource_sites.append(
            (self.module.relpath, info.line, info.col, message))


def _scan_resources(model: WireModel) -> None:
    for key in sorted(model.index.functions):
        module = model.index.modules.get(key[0])
        if module is None or module not in model.index.project.modules:
            continue
        scanner = _ResourceScanner(model, module)
        scanner.scan(model.index.functions[key].node)


# ----------------------------------------------------------------------
# JSON wire-safety (W504)
# ----------------------------------------------------------------------

def _np_scalar_call(node) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    path = dotted_path(node.func)
    if path is not None and len(path) == 2 \
            and path[0] in {"np", "numpy"} and path[1] in _NP_SCALARS:
        return ".".join(path)
    return None


def _nonfinite_literal(node) -> str | None:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "float" and node.args:
        text = _const_str(node.args[0])
        if text is not None and text.strip("+-").lower() in {"nan", "inf",
                                                             "infinity"}:
            return f"float({text!r})"
    path = dotted_path(node)
    if path is not None and len(path) == 2 and path[0] in {"np", "numpy"} \
            and path[1] in {"nan", "inf"}:
        return ".".join(path)
    return None


def _scan_encode_sites(model: WireModel, shape_model) -> None:
    serving_modules = {
        module.dotted_name for module in model.index.project.modules
        if "serving" in module.dotted_name.split(".")
    }
    for key in sorted(model.index.functions):
        if key[0] not in serving_modules:
            continue
        info = model.index.functions[key]
        module = model.index.modules.get(key[0])
        if module is None:
            continue
        facts = {}
        shaped = shape_model.functions.get(key)
        if shaped is not None:
            facts = shaped.facts
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            path = dotted_path(func)
            if isinstance(func, ast.Name) and func.id == "encode_array" \
                    and node.args:
                _check_encode_value(model, module, node.args[0], facts,
                                    site="encode_array",
                                    arrays_expected=True)
            elif path == ("json", "dumps") and node.args:
                _check_encode_value(model, module, node.args[0], facts,
                                    site="json.dumps",
                                    arrays_expected=False)
            elif isinstance(func, ast.Name) and func.id == "Response":
                body = next((kw.value for kw in node.keywords
                             if kw.arg == "body"), None)
                if isinstance(body, ast.Dict):
                    for value in body.values:
                        _check_encode_value(model, module, value, facts,
                                            site="Response body",
                                            arrays_expected=False)


def _check_encode_value(model: WireModel, module, value, facts,
                        site: str, arrays_expected: bool) -> None:
    def report(message: str) -> None:
        model.encode_sites.append(
            (module.relpath, value.lineno, value.col_offset, message))

    if isinstance(value, (ast.Set, ast.SetComp)):
        report(f"set literal reaches {site}; JSON has no set type — "
               "encode a sorted list instead")
        return
    scalar = _np_scalar_call(value)
    if scalar is not None:
        report(f"numpy scalar {scalar}(...) reaches {site}; "
               "json.dumps rejects numpy scalar types — call .item() "
               "or float()/int() first")
        return
    nonfinite = _nonfinite_literal(value)
    if nonfinite is not None:
        report(f"non-finite float {nonfinite} reaches {site}; it "
               "serializes as bare NaN/Infinity, which strict JSON "
               "decoders reject")
        return
    if isinstance(value, ast.Name):
        fact = facts.get(value.id)
        if fact is None:
            return
        if fact.dtype == "object":
            report(f"object-dtype array `{value.id}` reaches {site}; "
                   "tolist() yields arbitrary Python objects "
                   "json.dumps cannot encode")
        elif not arrays_expected and fact.is_array():
            report(f"ndarray `{value.id}` reaches {site} without "
                   "encode_array(); json.dumps rejects ndarrays")
    elif isinstance(value, ast.Dict) and not arrays_expected:
        for sub in value.values:
            _check_encode_value(model, module, sub, facts, site,
                                arrays_expected)


# ----------------------------------------------------------------------
# Blocking calls in handler threads (W505)
# ----------------------------------------------------------------------

def _blocking_reason(node: ast.Call) -> str | None:
    path = dotted_path(node.func)
    if path == ("time", "sleep"):
        return "time.sleep() blocks the handler thread"
    if path == ("select", "select"):
        return "select.select() blocks the handler thread"
    if path is not None and len(path) == 2 and path[0] == "subprocess" \
            and path[1] in _SUBPROCESS_BLOCKERS:
        return f"subprocess.{path[1]}() blocks on a child process"
    if isinstance(node.func, ast.Name) and node.func.id == "input":
        return "input() blocks on stdin"
    if isinstance(node.func, ast.Attribute) and node.func.attr == "wait" \
            and not node.args and not node.keywords:
        return ("`.wait()` with no timeout can block this handler "
                "thread forever")
    return None


def _scan_blocking(model: WireModel) -> None:
    for gateway in model.gateways:
        roots = [
            key for key, info in model.index.functions.items()
            if key[0] == gateway.module_name
            and info.class_name == gateway.class_name
        ]
        seen = set(roots)
        frontier = list(roots)
        while frontier and len(seen) <= 128:
            key = frontier.pop()
            info = model.index.functions.get(key)
            if info is None or key[0] not in model.index.modules:
                continue
            module = model.index.modules[key[0]]
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    reason = _blocking_reason(node)
                    if reason is not None:
                        model.blocking_sites.append((
                            module.relpath, node.lineno, node.col_offset,
                            f"{reason}; the soft-timeout middleware only "
                            "answers after the handler returns "
                            f"[reachable from {gateway.class_name}]",
                        ))
            for site in model.index.calls.get(key, ()):
                if site.target is not None and site.target not in seen:
                    seen.add(site.target)
                    frontier.append(site.target)
    model.blocking_sites.sort()


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------

def build_wire_model(index: FlowIndex, shape_model) -> WireModel:
    """Extract every wire fact the W-rules need, in one pass."""
    model = WireModel(index=index, shape_model=shape_model)
    model.error_names = (
        index.project.subclasses_of(["ReproError"]) | {"ReproError"}
    )
    model.server_names = index.project.subclasses_of(
        ["HTTPServer", "ThreadingHTTPServer"]
    )

    for dotted in sorted(index.modules):
        module = index.modules[dotted]
        if module not in index.project.modules:
            continue  # context modules inform resolution, not findings
        taxonomy = _find_taxonomy(module)
        if taxonomy is not None:
            model.taxonomies.append(taxonomy)
        for (mod_name, class_name), classdef in sorted(index.classes.items()):
            if mod_name != dotted:
                continue
            route_fn = index.functions.get((dotted, f"{class_name}._route"))
            if route_fn is not None:
                extractor = _RouteExtractor(model, index, module, class_name)
                extractor.extract(route_fn)
                model.gateways.append(GatewayModel(
                    module_name=dotted,
                    relpath=module.relpath,
                    class_name=class_name,
                    line=classdef.lineno,
                    routes=extractor.routes,
                    metrics=_gateway_metrics(extractor, classdef),
                ))
            if (dotted, f"{class_name}._request") in index.functions:
                model.clients.append(
                    _derive_client(index, module, classdef))

    _collect_error_sites(model)
    _scan_resources(model)
    _scan_encode_sites(model, shape_model)
    _scan_blocking(model)
    model.resource_sites.sort()
    model.encode_sites.sort()
    return model
