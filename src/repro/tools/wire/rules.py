"""The W-rules: static wire-contract findings over the shared wire model.

Each rule queries the :class:`~repro.tools.wire.wiremodel.WireModel`
built once per run and injected by the runner (mirroring how the
S-rules receive the shape model).  All six are project rules, but every
violation is anchored to the file and line of the offending route,
mapping, or acquisition, so the shared suppression machinery applies
unchanged.

The catalogue:

* **W501** — wire-contract conformance: the route table derived from
  the server's routing code and the expectations derived from the
  client must agree with each other and with the checked-in
  ``wire_spec.py``.
* **W502** — error-taxonomy completeness and round-trip: every raised
  ``ReproError`` kind maps through ``ERROR_STATUS``/``KIND_TO_ERROR``
  back to the same class; unmapped raises and dead mappings flagged.
* **W503** — resource lifecycle: sockets/servers/executors/started
  threads/files acquired without ``with``/``try: finally`` protection
  on exception paths.
* **W504** — JSON wire-safety: object-dtype arrays, numpy scalars,
  sets and non-finite floats reaching a protocol encode site.
* **W505** — blocking calls reachable from a gateway handler: the
  soft-timeout middleware only answers after the handler returns, so
  an indefinite block escapes it.
* **W506** — ``/metrics/summary`` drift: operation names, the latency
  sample prefix and the summary keys must match the spec's metrics
  section.

Every rule is a silent no-op when its subject is absent (no gateway,
no client, no taxonomy), so the analyzer stays quiet on trees that
have no serving layer at all.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.tools.lint.engine import Project, Rule, Violation
from repro.tools.wire.spec import (
    DEFAULT_SPEC_PATH,
    derive_wire_spec,
    load_spec,
)
from repro.tools.wire.wiremodel import WireModel

__all__ = [
    "BlockingHandlerRule",
    "EncodeSafetyRule",
    "ErrorTaxonomyRule",
    "MetricsSpecRule",
    "ResourceLifecycleRule",
    "RouteConformanceRule",
    "WireRule",
    "default_wire_rules",
]


class WireRule(Rule):
    """Base class for W-rules; the runner injects the wire model."""

    def __init__(self, model: WireModel | None = None):
        self.model = model

    def _site_violations(self, sites) -> Iterable[Violation]:
        for relpath, line, col, message in sites:
            yield Violation(
                code=self.code, message=message,
                path=relpath, line=line, col=col,
            )


class _SpecRule(WireRule):
    """A W-rule that also diffs a derivation against ``wire_spec.py``."""

    def __init__(self, model: WireModel | None = None,
                 spec_path: Path = DEFAULT_SPEC_PATH):
        super().__init__(model)
        self.spec_path = spec_path

    def _spec_relpath(self) -> str:
        for module in self.model.index.modules.values():
            try:
                if module.path.resolve() == self.spec_path.resolve():
                    return module.relpath
            except OSError:  # pragma: no cover - resolve on a dead path
                continue
        return str(self.spec_path)


class RouteConformanceRule(_SpecRule):
    """W501: derived routes/client expectations vs each other and spec."""

    code = "W501"
    name = "wire-contract"
    description = (
        "The route table derived from the server's routing code "
        "(paths, methods, statuses, request/response JSON fields) and "
        "the expectations derived from the HTTP client must agree "
        "with each other and with the checked-in wire_spec.py; run "
        "`repro wire --update-spec` to record an intentional change."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Diff derived routes and client expectations against the spec."""
        model = self.model
        if not model.gateways and not model.clients:
            return
        routes = model.routes()
        anchors = {}
        for gateway in model.gateways:
            for key, route in gateway.routes.items():
                anchors[key] = (gateway.relpath, route["line"])

        # Client/server cross-consistency needs no spec: a client
        # method must target a derived route and stay inside its
        # request/response fields.
        if model.gateways:
            for client in model.clients:
                for name, entry in sorted(client.entries.items()):
                    key = f"{entry['method']} {entry['path']}"
                    route = routes.get(key)
                    if route is None:
                        yield Violation(
                            code=self.code,
                            message=(
                                f"client method {name}() targets "
                                f"`{key}`, which matches no route "
                                "derived from the server"
                            ),
                            path=client.relpath, line=entry["line"],
                        )
                        continue
                    extra = sorted(
                        set(entry["payload"]) - set(route["request"]))
                    if extra and route["request"]:
                        yield Violation(
                            code=self.code,
                            message=(
                                f"client method {name}() sends payload "
                                f"key(s) {', '.join(extra)} that the "
                                f"`{key}` handler never reads"
                            ),
                            path=client.relpath, line=entry["line"],
                        )
                    unread = sorted(
                        set(entry["reads"]) - set(route["response"]))
                    if unread:
                        yield Violation(
                            code=self.code,
                            message=(
                                f"client method {name}() reads key(s) "
                                f"{', '.join(unread)} absent from the "
                                f"`{key}` response"
                            ),
                            path=client.relpath, line=entry["line"],
                        )

        spec = load_spec(self.spec_path)
        if spec is None:
            yield Violation(
                code=self.code,
                message=(
                    "wire spec is missing or unreadable at "
                    f"{self.spec_path}; run `repro wire --update-spec`"
                ),
                path=self._spec_relpath(), line=1,
            )
            return
        derived = derive_wire_spec(model)
        spec_relpath = self._spec_relpath()

        spec_routes = spec.get("routes", {})
        for key in sorted(derived["routes"]):
            relpath, line = anchors.get(key, (spec_relpath, 1))
            if key not in spec_routes:
                yield Violation(
                    code=self.code,
                    message=(
                        f"route `{key}` is not in the wire spec; run "
                        "`repro wire --update-spec` to record it"
                    ),
                    path=relpath, line=line,
                )
            elif spec_routes[key] != derived["routes"][key]:
                changed = sorted(
                    field for field in
                    set(spec_routes[key]) | set(derived["routes"][key])
                    if spec_routes[key].get(field)
                    != derived["routes"][key].get(field)
                )
                yield Violation(
                    code=self.code,
                    message=(
                        f"derived contract of route `{key}` disagrees "
                        f"with the spec on {', '.join(changed)}; restore "
                        "the recorded contract or run `repro wire "
                        "--update-spec` to accept the change"
                    ),
                    path=relpath, line=line,
                )
        for key in sorted(set(spec_routes) - set(derived["routes"])):
            yield Violation(
                code=self.code,
                message=(
                    f"spec route `{key}` matches no route derived from "
                    "the server (renamed or removed); run `repro wire "
                    "--update-spec` to drop it"
                ),
                path=spec_relpath, line=1,
            )

        spec_client = spec.get("client", {})
        entries = model.client_entries()
        entry_anchors = {}
        for client in model.clients:
            for name, entry in client.entries.items():
                entry_anchors[name] = (client.relpath, entry["line"])
        for name in sorted(derived["client"]):
            relpath, line = entry_anchors.get(name, (spec_relpath, 1))
            if name not in spec_client:
                yield Violation(
                    code=self.code,
                    message=(
                        f"client method {name}() is not in the wire "
                        "spec; run `repro wire --update-spec` to "
                        "record it"
                    ),
                    path=relpath, line=line,
                )
            elif spec_client[name] != derived["client"][name]:
                changed = sorted(
                    field for field in
                    set(spec_client[name]) | set(derived["client"][name])
                    if spec_client[name].get(field)
                    != derived["client"][name].get(field)
                )
                yield Violation(
                    code=self.code,
                    message=(
                        f"derived expectation of client method {name}() "
                        f"disagrees with the spec on {', '.join(changed)}; "
                        "run `repro wire --update-spec` to accept the "
                        "change"
                    ),
                    path=relpath, line=line,
                )
        for name in sorted(set(spec_client) - set(entries)):
            yield Violation(
                code=self.code,
                message=(
                    f"spec client method {name}() matches no derived "
                    "client method (renamed or removed); run `repro "
                    "wire --update-spec` to drop it"
                ),
                path=spec_relpath, line=1,
            )


class ErrorTaxonomyRule(_SpecRule):
    """W502: ERROR_STATUS/KIND_TO_ERROR completeness and round-trip."""

    code = "W502"
    name = "error-taxonomy"
    description = (
        "Every ReproError kind raised anywhere in the analyzed tree "
        "must map through KIND_TO_ERROR back to the same class so the "
        "client re-raises what the server raised; ERROR_STATUS and "
        "KIND_TO_ERROR must cover the same kinds, dead mappings (never "
        "raised or constructed) are flagged, and the status table must "
        "match the spec's errors section."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Prove the taxonomy complete, alive, and round-trippable."""
        model = self.model
        if not model.taxonomies:
            return
        for taxonomy in model.taxonomies:
            status_kinds = set(taxonomy.error_status)
            mapped_kinds = set(taxonomy.kind_to_error)
            for kind in sorted(status_kinds - mapped_kinds):
                yield Violation(
                    code=self.code,
                    message=(
                        f"error kind {kind} has a status in ERROR_STATUS "
                        "but no KIND_TO_ERROR entry: the client cannot "
                        "restore the class the server raised"
                    ),
                    path=taxonomy.relpath,
                    line=taxonomy.error_status[kind][1],
                )
            for kind in sorted(mapped_kinds - status_kinds):
                yield Violation(
                    code=self.code,
                    message=(
                        f"error kind {kind} is in KIND_TO_ERROR but has "
                        "no ERROR_STATUS entry: the server would fall "
                        "back to a base-class status for it"
                    ),
                    path=taxonomy.relpath,
                    line=taxonomy.kind_to_error[kind][1],
                )
            for kind in sorted(mapped_kinds):
                value, line = taxonomy.kind_to_error[kind]
                if value != kind:
                    yield Violation(
                        code=self.code,
                        message=(
                            f"KIND_TO_ERROR[{kind!r}] maps to {value}: "
                            "the wire round-trip must restore the same "
                            "exception class it serialized"
                        ),
                        path=taxonomy.relpath, line=line,
                    )
            # Dead mapping: a kind the taxonomy promises to restore but
            # nothing in the tree ever raises *or constructs*
            # (constructions count: DeadlineExceededError is built by
            # the soft-timeout middleware and raised by the client).
            alive = set(model.raised_kinds) | set(model.constructed_kinds)
            for kind in sorted(mapped_kinds & status_kinds):
                if kind == "ReproError":
                    continue  # documented MRO fallback for unknown kinds
                if kind not in alive and kind in model.error_names:
                    yield Violation(
                        code=self.code,
                        message=(
                            f"mapped error kind {kind} is never raised "
                            "or constructed in the analyzed tree; drop "
                            "the dead mapping or wire the error up"
                        ),
                        path=taxonomy.relpath,
                        line=taxonomy.kind_to_error[kind][1],
                    )

        mapped_anywhere = set()
        for taxonomy in model.taxonomies:
            mapped_anywhere |= set(taxonomy.kind_to_error)
        for kind in sorted(set(model.raised_kinds) & model.error_names):
            # Private kinds (leading underscore) are internal control
            # flow by convention — caught where they are raised, never
            # serialized — so only public kinds need wire mappings.
            if kind in mapped_anywhere or kind.startswith("_"):
                continue
            relpath, line = model.raised_kinds[kind][0]
            yield Violation(
                code=self.code,
                message=(
                    f"{kind} is raised here but has no KIND_TO_ERROR "
                    "mapping: over the wire it degrades to its nearest "
                    "mapped base class and the client re-raises the "
                    "wrong type"
                ),
                path=relpath, line=line,
            )

        spec = load_spec(self.spec_path)
        if spec is None or "errors" not in spec:
            return
        derived = derive_wire_spec(model)["errors"]
        spec_errors = spec["errors"]
        for taxonomy in model.taxonomies:
            for kind in sorted(set(derived) | set(spec_errors)):
                if derived.get(kind) == spec_errors.get(kind):
                    continue
                line = taxonomy.error_status.get(kind, (0, taxonomy.line))[1]
                yield Violation(
                    code=self.code,
                    message=(
                        f"error kind {kind} maps to status "
                        f"{derived.get(kind)} but the wire spec records "
                        f"{spec_errors.get(kind)}; run `repro wire "
                        "--update-spec` to accept the change"
                    ),
                    path=taxonomy.relpath, line=line,
                )


class ResourceLifecycleRule(WireRule):
    """W503: resources acquired without exception-path protection."""

    code = "W503"
    name = "resource-lifecycle"
    description = (
        "A socket, server, executor, started thread, connection or "
        "file acquired without a context manager must be released in "
        "a finally block (or an enclosing try's cleanup) that no "
        "raising call can bypass; resources that are returned, "
        "yielded, or stored on an object transfer ownership and are "
        "exempt."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report every unprotected acquisition the scanner found."""
        yield from self._site_violations(self.model.resource_sites)


class EncodeSafetyRule(WireRule):
    """W504: non-JSON-serializable values reaching an encode site."""

    code = "W504"
    name = "json-wire-safety"
    description = (
        "Values reaching a protocol encode site (encode_array, "
        "json.dumps, a Response body) must survive json.dumps: "
        "object-dtype arrays (from the shape analyzer's dtype "
        "lattice), numpy scalars, sets and non-finite float literals "
        "are flagged in serving modules."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report every unsafe value the encode-site scan found."""
        yield from self._site_violations(self.model.encode_sites)


class BlockingHandlerRule(WireRule):
    """W505: indefinitely blocking calls reachable from a handler."""

    code = "W505"
    name = "blocking-handler"
    description = (
        "The soft-timeout middleware can only answer after the "
        "handler returns, so time.sleep, no-timeout .wait(), "
        "subprocess, input() or select.select reachable from a "
        "gateway method blocks a serving thread past every deadline."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report blocking calls in the gateway's resolved call closure."""
        yield from self._site_violations(self.model.blocking_sites)


class MetricsSpecRule(_SpecRule):
    """W506: /metrics/summary drift vs the spec's metrics section."""

    code = "W506"
    name = "metrics-spec"
    description = (
        "The timed operation names, the latency-sample key prefix and "
        "the /metrics/summary document keys derived from the gateway "
        "must match the wire spec's metrics section, so dashboards "
        "and the bench harness never chase renamed metrics; run "
        "`repro wire --update-spec` to accept an intentional rename."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Diff each gateway's metrics surface against the spec."""
        model = self.model
        if not model.gateways:
            return
        spec = load_spec(self.spec_path)
        if spec is None or "metrics" not in spec or not spec["metrics"]:
            return
        expected = spec["metrics"]
        for gateway in model.gateways:
            derived = {
                "operations": tuple(gateway.metrics.get("operations", ())),
                "sample_prefix": gateway.metrics.get("sample_prefix"),
                "summary_keys": tuple(
                    gateway.metrics.get("summary_keys", ())),
            }
            changed = sorted(
                field for field in set(derived) | set(expected)
                if derived.get(field) != expected.get(field)
            )
            if changed:
                yield Violation(
                    code=self.code,
                    message=(
                        f"metrics surface of {gateway.class_name} "
                        "disagrees with the wire spec on "
                        f"{', '.join(changed)}; restore the recorded "
                        "names or run `repro wire --update-spec` to "
                        "accept the rename"
                    ),
                    path=gateway.relpath, line=gateway.line,
                )


def default_wire_rules(model: WireModel | None = None,
                       spec_path: Path | None = None) -> list:
    """The six W-rules, in code order, sharing one wire model."""
    return [
        RouteConformanceRule(model, spec_path or DEFAULT_SPEC_PATH),
        ErrorTaxonomyRule(model, spec_path or DEFAULT_SPEC_PATH),
        ResourceLifecycleRule(model),
        EncodeSafetyRule(model),
        BlockingHandlerRule(model),
        MetricsSpecRule(model, spec_path or DEFAULT_SPEC_PATH),
    ]
