"""``python -m repro.tools.wire`` — run the wire analyzer."""

from repro.tools.wire.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
