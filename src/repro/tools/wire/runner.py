"""Driver for one ``repro wire`` run.

Mirrors the shape runner end to end: files are parsed once through the
memoized :mod:`repro.tools.indexing` facade (so lint/flow/race/perf/
shape runs in the same process share the parse and the flow index),
the wire model is built once — and memoized on the shared index entry,
so repeated wire runs share it too — injected into every W-rule, and
the findings flow through the lint engine's suppression and reporting
machinery unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

# Importing the lint rules fills RULE_REGISTRY, so wire runs recognize
# R-code suppressions as known companion codes.
import repro.tools.lint.rules  # noqa: F401  (registration side effect)
from repro.tools.flow.runner import detect_context_paths
from repro.tools.indexing import load_indexed_project
from repro.tools.lint.engine import (
    COMPANION_CODES,
    ENGINE_CODE,
    RULE_REGISTRY,
    LintResult,
    Violation,
    apply_suppressions,
    suppression_violations,
)
from repro.tools.wire.rules import default_wire_rules

__all__ = [
    "run_wire",
]


def run_wire(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
    context_paths: Sequence | None = None,
    spec_path: Path | None = None,
) -> LintResult:
    """Run the W-rules over ``paths``; mirrors ``run_shape``'s contract.

    ``rules=None`` runs every W-rule; pass a subset (bound to a wire
    model or not — unbound rules get the shared one injected) to focus
    a run.  ``spec_path`` points the spec rules (W501/W502/W506) at an
    alternate checked-in spec (the fixture tests use this; the default
    is the real one).
    """
    if context_paths is None:
        context_paths = detect_context_paths(paths)
    loaded = load_indexed_project(paths, root=root,
                                  context_paths=context_paths)
    project = loaded.project
    violations: list[Violation] = list(loaded.parse_violations)
    model = loaded.wire_model()

    if rules is None:
        rules = default_wire_rules(model, spec_path=spec_path)
    for rule in rules:
        if getattr(rule, "model", None) is None:
            rule.model = model
        if spec_path is not None and hasattr(rule, "spec_path"):
            rule.spec_path = spec_path

    known_codes = (
        {rule.code for rule in rules}
        | set(RULE_REGISTRY)
        | set(COMPANION_CODES)
        | {ENGINE_CODE}
    )
    for module in project.modules:
        violations.extend(suppression_violations(module, known_codes))
        for rule in rules:
            violations.extend(rule.check_module(module, project))
    for rule in rules:
        violations.extend(rule.check_project(project))

    modules_by_path = {m.relpath: m for m in project.modules}
    violations = apply_suppressions(violations, modules_by_path)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintResult(violations=violations, n_files=loaded.n_files)
