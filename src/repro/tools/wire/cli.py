"""Command-line front end: ``repro wire`` / ``python -m repro.tools.wire``.

Exit codes follow the shared taxonomy of :mod:`repro.tools.exitcodes`:

* ``0`` — clean (suppressed findings allowed, or ``--update-spec`` ran);
* ``1`` — at least one unsuppressed violation;
* ``2`` — usage error (nonexistent path, no files found);
* ``3`` — the analyzer itself crashed (traceback on stderr).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.tools.exitcodes import EXIT_USAGE, run_guarded
from repro.tools.lint.reporters import REPORTERS
from repro.tools.wire.rules import default_wire_rules
from repro.tools.wire.spec import DEFAULT_SPEC_PATH

__all__ = [
    "DEFAULT_TARGET",
    "build_parser",
    "configure_parser",
    "main",
    "run_wire_command",
]

#: Default analysis target: the package's own source tree.
DEFAULT_TARGET = Path(__file__).resolve().parents[2]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the wire arguments to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include justified suppressions in the report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the wire rule codes and exit",
    )
    parser.add_argument(
        "--spec", type=Path, metavar="PATH", default=DEFAULT_SPEC_PATH,
        help="wire spec to check against (default: the checked-in "
             "wire_spec.py)",
    )
    parser.add_argument(
        "--update-spec", action="store_true",
        help="rewrite the wire spec from the analyzed tree instead of "
             "checking against it",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """Build the standalone parser for ``python -m repro.tools.wire``."""
    parser = argparse.ArgumentParser(
        prog="repro wire",
        description="static wire-contract, error-taxonomy & "
                    "resource-lifecycle analyzer for the MLaaS "
                    "reproduction",
    )
    return configure_parser(parser)


def _print_rules(out) -> int:
    for rule in default_wire_rules():
        print(f"{rule.code}  {rule.name:<22} {rule.description}", file=out)
    return 0


def run_wire_command(args: argparse.Namespace, out=None) -> int:
    """Execute a parsed wire invocation; returns the exit code."""
    out = out or sys.stdout
    if args.list_rules:
        return _print_rules(out)
    paths = args.paths or [DEFAULT_TARGET]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}",
                  file=sys.stderr)
            return EXIT_USAGE
    from repro.tools.wire.runner import run_wire

    if args.update_spec:
        from repro.tools.indexing import load_indexed_project
        from repro.tools.wire.spec import derive_wire_spec, write_spec

        loaded = load_indexed_project(paths, root=Path.cwd())
        if loaded.n_files == 0:
            print("error: no python files found under the given paths",
                  file=sys.stderr)
            return EXIT_USAGE
        spec = derive_wire_spec(loaded.wire_model())
        write_spec(spec, args.spec)
        print(f"wrote derived wire contract ({len(spec['routes'])} "
              f"route(s), {len(spec['client'])} client method(s), "
              f"{len(spec['errors'])} error kind(s)) to {args.spec}",
              file=out)
        return 0

    result = run_wire(paths, root=Path.cwd(), spec_path=args.spec)
    if result.n_files == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return EXIT_USAGE
    reporter = REPORTERS[args.format]
    print(reporter(result, show_suppressed=args.show_suppressed), file=out)
    return result.exit_code


def main(argv=None, out=None) -> int:
    """Entry point for ``python -m repro.tools.wire``."""
    args = build_parser().parse_args(argv)
    return run_guarded(run_wire_command, args, out=out)
