"""``repro wire`` — static wire-contract, error-taxonomy & resource analyzer.

The paper's methodology exercises MLaaS platforms through their
service APIs, and the serving layer reproduces that client/server
boundary with a bit-identical-results guarantee enforced dynamically
by loopback tests.  This package is the sixth static-analysis pass
("W-rules") that proves the boundary's *contract* statically, the way
R003/P305/S405 pin Table 1, complexity, and array contracts to
checked-in specs.  It extends the shared flow index with a **wire
model** (:mod:`repro.tools.wire.wiremodel`) — the route table derived
symbolically from the server's routing conditionals, the client's
expectations per public method, the ``ERROR_STATUS``/``KIND_TO_ERROR``
taxonomy with every raise/construction site, unprotected resource
acquisitions, unsafe JSON encode sites (reusing the shape analyzer's
dtype lattice), and blocking calls in the gateway's call closure — and
runs six rules over it:

* **W501 wire-contract** — derived routes and client expectations must
  agree with each other and with the checked-in ``wire_spec.py``
  (refresh with ``--update-spec``);
* **W502 error-taxonomy** — every raised ``ReproError`` kind maps
  through the taxonomy back to the same class; unmapped raises, dead
  mappings, broken round-trips and spec drift are flagged;
* **W503 resource-lifecycle** — sockets/servers/executors/started
  threads/files acquired without context-manager or try/finally
  protection on exception paths;
* **W504 json-wire-safety** — object-dtype arrays, numpy scalars, sets
  and non-finite floats reaching a protocol encode site;
* **W505 blocking-handler** — indefinitely blocking calls reachable
  from a gateway handler, which escape the soft-timeout middleware;
* **W506 metrics-spec** — ``/metrics/summary`` operation names, sample
  prefix and document keys vs the spec's metrics section.

Importable API::

    from repro.tools.wire import wire_paths
    result = wire_paths(["src/repro"])
    assert result.exit_code == 0, result.violations

Command line::

    repro wire [PATHS...] [--format text|json]
    repro wire --update-spec
    python -m repro.tools.wire

Suppressions share the lint engine's comment syntax — a justified
suppression states the lifecycle or contract fact the analyzer cannot
see::

    conn = pool.lease()  # repro: disable=W503 -- pool closes its leases

The analysis reuses the lint engine (files parsed once, same reporters
and exit codes) and the flow package's shared indexes through the
memoized :mod:`repro.tools.indexing` facade, so all six analyzers in
one process parse the project once; the wire model itself is memoized
on the shared index entry and consumes the shape model, so one wire
run warms both.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.tools.lint.engine import LintResult
from repro.tools.wire.rules import default_wire_rules
from repro.tools.wire.runner import run_wire
from repro.tools.wire.wiremodel import WireModel, build_wire_model

__all__ = [
    "LintResult",
    "WireModel",
    "build_wire_model",
    "default_wire_rules",
    "run_wire",
    "wire_paths",
]


def wire_paths(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
    context_paths: Sequence | None = None,
    spec_path: Path | None = None,
) -> LintResult:
    """Analyze files/directories; see :func:`repro.tools.wire.runner.run_wire`."""
    return run_wire(paths, rules=rules, root=root,
                    context_paths=context_paths, spec_path=spec_path)
