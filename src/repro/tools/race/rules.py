"""The C-rules: concurrency hazards over the shared concurrency model.

Each rule queries the :class:`~repro.tools.race.concurrency.ConcurrencyIndex`
built once per run and injected by the runner (mirroring how the F-rules
receive the flow index).  All six are project rules — their findings come
from the model, not from re-walking individual files — but every
violation is anchored to the file and line of the offending construct,
so the shared suppression machinery applies unchanged.
"""

from __future__ import annotations

from typing import Iterable

from repro.tools.lint.engine import Project, Rule, Violation
from repro.tools.race.concurrency import ConcurrencyIndex, FunctionFacts

__all__ = [
    "BlockingUnderLockRule",
    "CheckThenActRule",
    "LockOrderRule",
    "ProcessCaptureRule",
    "RaceRule",
    "SharedRngRule",
    "UnguardedSharedWriteRule",
    "default_race_rules",
]


class RaceRule(Rule):
    """Base class for C-rules; the runner injects the concurrency index."""

    def __init__(self, con: ConcurrencyIndex | None = None):
        self.con = con

    def _violation(self, facts: FunctionFacts, line: int, col: int,
                   message: str) -> Violation:
        return Violation(
            code=self.code,
            message=f"{message} [{facts.qualname or '<module>'}]",
            path=facts.relpath,
            line=line,
            col=col,
        )


def _held_names(held) -> str:
    return ", ".join(str(lock) for lock in held)


class LockOrderRule(RaceRule):
    """C201: the lock-acquisition order must be globally consistent."""

    code = "C201"
    name = "lock-order"
    description = (
        "Lock-acquisition graph across the call graph must be acyclic, "
        "and non-reentrant locks must never be re-acquired while held."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report re-acquisitions and cross-path lock-order cycles."""
        con = self.con
        acquires = con.transitive_acquires()
        edges: dict = {}  # (outer LockId, inner LockId) -> (facts, line, col)

        for facts in con.facts.values():
            for acq in facts.acquisitions:
                if acq.lock in acq.held and not con.reentrant(acq.lock):
                    yield self._violation(
                        facts, acq.lineno, acq.col,
                        f"non-reentrant lock {acq.lock} re-acquired while "
                        "already held (self-deadlock)",
                    )
                for outer in acq.held:
                    if outer != acq.lock:
                        edges.setdefault((outer, acq.lock),
                                         (facts, acq.lineno, acq.col))
            for call in facts.locked_calls:
                if not call.held or call.target is None:
                    continue
                for inner in acquires.get(call.target, ()):
                    for outer in call.held:
                        if outer == inner:
                            if not con.reentrant(inner):
                                yield self._violation(
                                    facts, call.lineno, call.col,
                                    f"call to {call.repr}() may re-acquire "
                                    f"non-reentrant lock {inner} already "
                                    "held here (self-deadlock)",
                                )
                        else:
                            edges.setdefault((outer, inner),
                                             (facts, call.lineno, call.col))

        adjacency: dict = {}
        for outer, inner in edges:
            adjacency.setdefault(outer, set()).add(inner)
            adjacency.setdefault(inner, set())
        for component in _cycles(adjacency):
            anchor = min(
                (edges[pair] for pair in edges
                 if pair[0] in component and pair[1] in component),
                key=lambda entry: (entry[0].relpath, entry[1]),
            )
            facts, line, col = anchor
            ordering = " -> ".join(sorted(str(lock) for lock in component))
            yield self._violation(
                facts, line, col,
                f"lock-order inversion: {ordering} are acquired in "
                "conflicting orders on different code paths (deadlock "
                "when the paths interleave)",
            )


def _cycles(adjacency: dict) -> list:
    """Strongly connected components with >1 node (Tarjan, iterative)."""
    index_counter = [0]
    stack: list = []
    lowlink: dict = {}
    number: dict = {}
    on_stack: set = set()
    components: list = []

    def visit(root):
        work = [(root, iter(sorted(adjacency[root], key=str)))]
        number[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in number:
                    number[child] = lowlink[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (child, iter(sorted(adjacency[child], key=str))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], number[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == number[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(component)

    for node in sorted(adjacency, key=str):
        if node not in number:
            visit(node)
    return components


class UnguardedSharedWriteRule(RaceRule):
    """C202: worker threads must hold a lock when writing shared state."""

    code = "C202"
    name = "unguarded-shared-write"
    description = (
        "State reachable from a thread worker (closures, self attributes, "
        "module globals) must only be written while holding a lock."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report off-lock writes to shared state in thread workers."""
        for facts in self.con.facts.values():
            if not self.con.is_thread_target(facts):
                continue
            if facts.qualname.endswith("__init__"):
                continue  # construction happens-before any thread start
            for mutation in facts.mutations:
                if mutation.held:
                    continue
                yield self._violation(
                    facts, mutation.lineno, mutation.col,
                    f"thread worker writes shared state {mutation.root!r} "
                    "without holding a lock",
                )


class CheckThenActRule(RaceRule):
    """C203: membership checks and stores on shared dicts must be atomic."""

    code = "C203"
    name = "check-then-act"
    description = (
        "'if key not in d: d[key] = ...' (or the .get()/is-None spelling) "
        "on a thread-shared mapping is not atomic; guard it with the "
        "owning lock or use dict.setdefault()."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report non-atomic check-then-act on thread-shared mappings."""
        con = self.con
        for facts in con.facts.values():
            shared_class = (
                facts.class_name is not None
                and (facts.module_name, facts.class_name)
                in con.lock_owner_classes
            )
            for cta in facts.check_then_acts:
                if cta.held:
                    continue
                if cta.via_self:
                    if not shared_class:
                        continue
                elif not con.is_thread_target(facts):
                    continue
                yield self._violation(
                    facts, cta.lineno, cta.col,
                    f"non-atomic check-then-act on shared mapping "
                    f"{cta.root!r}: another thread can interleave between "
                    "the check and the store; hold the owning lock or use "
                    "setdefault()",
                )


class ProcessCaptureRule(RaceRule):
    """C204: nothing thread-local may cross a process-pool boundary."""

    code = "C204"
    name = "process-capture"
    description = (
        "Callables and arguments shipped to a ProcessPoolExecutor must be "
        "picklable module-level functions; locks, RNG Generators, open "
        "handles, queues, and closures cannot cross the fork/spawn "
        "boundary."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report unpicklable captures crossing process-pool boundaries."""
        for facts in self.con.facts.values():
            for sub in facts.submissions:
                if sub.boundary != "process":
                    continue
                if sub.func_form in ("lambda", "closure"):
                    yield self._violation(
                        facts, sub.lineno, sub.col,
                        f"{sub.func_form} {sub.func_repr!r} submitted to a "
                        "process pool cannot be pickled; use a module-level "
                        "function",
                    )
                elif sub.func_form == "bound-method" and (
                        facts.module_name, facts.class_name or "",
                ) in self.con.lock_owner_classes:
                    yield self._violation(
                        facts, sub.lineno, sub.col,
                        f"bound method {sub.func_repr!r} submitted to a "
                        "process pool pickles its instance, which owns a "
                        "lock; use a module-level function",
                    )
                for repr_, kind in sub.unsafe_args:
                    yield self._violation(
                        facts, sub.lineno, sub.col,
                        f"argument {repr_!r} of kind {kind!r} cannot "
                        "safely cross the process boundary (unpicklable "
                        "or process-local state)",
                    )


class BlockingUnderLockRule(RaceRule):
    """C205: no blocking operations while holding a lock."""

    code = "C205"
    name = "blocking-under-lock"
    description = (
        "Sleeps, joins, Future.result, queue and file I/O while holding a "
        "lock serialize every other thread on that lock (directly or "
        "through any resolvable callee)."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report operations that may block while a lock is held."""
        con = self.con
        blocks = con.blocking_summary()
        for facts in con.facts.values():
            for op in facts.blocking_ops:
                if op.held:
                    yield self._violation(
                        facts, op.lineno, op.col,
                        f"blocking {op.what} while holding "
                        f"{_held_names(op.held)}",
                    )
            for call in facts.locked_calls:
                if (call.held and call.target is not None
                        and blocks.get(call.target, False)):
                    target_name = f"{call.target[0]}:{call.target[1]}"
                    yield self._violation(
                        facts, call.lineno, call.col,
                        f"call to {target_name} may block (sleep/join/IO "
                        f"in its body or callees) while holding "
                        f"{_held_names(call.held)}",
                    )


class SharedRngRule(RaceRule):
    """C206: one RNG object must not be reachable from concurrent workers."""

    code = "C206"
    name = "shared-rng"
    description = (
        "A single random Generator drawn from by multiple concurrent "
        "workers destroys bit-reproducibility (and, unlocked, its state "
        "updates race); derive per-task seeds instead."
    )

    def check_project(self, project: Project) -> Iterable[Violation]:
        """Report RNG objects reachable from multiple concurrent workers."""
        con = self.con
        for facts in con.facts.values():
            is_target = con.is_thread_target(facts)
            shared_class = (
                facts.class_name is not None
                and (facts.module_name, facts.class_name)
                in con.lock_owner_classes
            )
            for use in facts.rng_uses:
                if is_target:
                    # Even lock-guarded draws interleave in scheduling
                    # order inside a worker: the stream is nondeterministic.
                    yield self._violation(
                        facts, use.lineno, use.col,
                        f"thread worker draws from shared generator "
                        f"{use.root!r} ({use.shared_via}); the draw order "
                        "depends on thread scheduling — derive a per-task "
                        "seed instead",
                    )
                elif shared_class and not use.held:
                    yield self._violation(
                        facts, use.lineno, use.col,
                        f"draw from {use.root!r} outside the owning lock "
                        "in a lock-owning (thread-shared) class: "
                        "concurrent draws corrupt generator state",
                    )
            for sub in facts.submissions:
                if sub.boundary != "thread":
                    continue
                for repr_, kind in sub.unsafe_args:
                    if kind == "rng":
                        yield self._violation(
                            facts, sub.lineno, sub.col,
                            f"generator {repr_!r} passed to a thread "
                            "worker is shared across workers; pass a seed "
                            "and construct the generator inside the worker",
                        )


def default_race_rules(con: ConcurrencyIndex | None = None) -> list:
    """Every C-rule, optionally bound to a concurrency index."""
    return [
        LockOrderRule(con),
        UnguardedSharedWriteRule(con),
        CheckThenActRule(con),
        ProcessCaptureRule(con),
        BlockingUnderLockRule(con),
        SharedRngRule(con),
    ]
