"""Command-line front end: ``repro race`` / ``python -m repro.tools.race``.

Same exit-code taxonomy as ``repro lint`` and ``repro flow``
(:mod:`repro.tools.exitcodes`):

* ``0`` — clean (suppressed findings allowed);
* ``1`` — at least one unsuppressed violation;
* ``2`` — usage error (nonexistent path, no files found);
* ``3`` — the analyzer itself crashed (traceback on stderr).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.tools.lint.reporters import REPORTERS
from repro.tools.race.rules import default_race_rules

__all__ = [
    "DEFAULT_TARGET",
    "build_parser",
    "configure_parser",
    "main",
    "run_race_command",
]

#: Default analysis target: the package's own source tree.
DEFAULT_TARGET = Path(__file__).resolve().parents[2]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the race arguments to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include justified suppressions in the report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the race rule codes and exit",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """Build the standalone parser for ``python -m repro.tools.race``."""
    parser = argparse.ArgumentParser(
        prog="repro race",
        description="static concurrency and shared-state analyzer "
                    "for the MLaaS reproduction",
    )
    return configure_parser(parser)


def _print_rules(out) -> int:
    for rule in default_race_rules():
        print(f"{rule.code}  {rule.name:<22} {rule.description}", file=out)
    return 0


def run_race_command(args: argparse.Namespace, out=None) -> int:
    """Execute a parsed race invocation; returns the exit code."""
    out = out or sys.stdout
    if args.list_rules:
        return _print_rules(out)
    paths = args.paths or [DEFAULT_TARGET]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}", file=sys.stderr)
            return 2
    from repro.tools.race.runner import run_race

    result = run_race(paths, root=Path.cwd())
    if result.n_files == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return 2
    reporter = REPORTERS[args.format]
    print(reporter(result, show_suppressed=args.show_suppressed), file=out)
    return result.exit_code


def main(argv=None, out=None) -> int:
    """Entry point for ``python -m repro.tools.race``."""
    from repro.tools.exitcodes import run_guarded

    args = build_parser().parse_args(argv)
    return run_guarded(run_race_command, args, out=out)
