"""Driver for one ``repro race`` run.

Mirrors the flow runner end to end: files are parsed once through the
memoized :mod:`repro.tools.indexing` facade (so a ``repro flow`` run in
the same process shares the parse and the flow index), the concurrency
model is built once, injected into every C-rule, and the findings flow
through the lint engine's suppression and reporting machinery unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

# Importing the lint rules fills RULE_REGISTRY, so race runs recognize
# R-code suppressions as known companion codes.
import repro.tools.lint.rules  # noqa: F401  (registration side effect)
from repro.tools.flow.runner import detect_context_paths
from repro.tools.indexing import load_indexed_project
from repro.tools.lint.engine import (
    COMPANION_CODES,
    ENGINE_CODE,
    RULE_REGISTRY,
    LintResult,
    Violation,
    apply_suppressions,
    suppression_violations,
)
from repro.tools.race.concurrency import build_concurrency
from repro.tools.race.rules import default_race_rules

__all__ = [
    "run_race",
]


def run_race(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
    context_paths: Sequence | None = None,
) -> LintResult:
    """Run the C-rules over ``paths``; mirrors ``run_lint``'s contract.

    ``rules=None`` runs every C-rule; pass a subset (bound to a
    concurrency index or not — unbound rules get the shared one
    injected) to focus a run.
    """
    if context_paths is None:
        context_paths = detect_context_paths(paths)
    loaded = load_indexed_project(paths, root=root,
                                  context_paths=context_paths)
    project = loaded.project
    violations: list[Violation] = list(loaded.parse_violations)
    con = build_concurrency(loaded.index)

    if rules is None:
        rules = default_race_rules(con)
    for rule in rules:
        if getattr(rule, "con", None) is None:
            rule.con = con

    known_codes = (
        {rule.code for rule in rules}
        | set(RULE_REGISTRY)
        | set(COMPANION_CODES)
        | {ENGINE_CODE}
    )
    for module in project.modules:
        violations.extend(suppression_violations(module, known_codes))
        for rule in rules:
            violations.extend(rule.check_module(module, project))
    for rule in rules:
        violations.extend(rule.check_project(project))

    modules_by_path = {m.relpath: m for m in project.modules}
    violations = apply_suppressions(violations, modules_by_path)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintResult(violations=violations, n_files=loaded.n_files)
