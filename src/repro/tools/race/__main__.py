"""``python -m repro.tools.race`` — run the concurrency analyzer."""

from repro.tools.race.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
