"""``repro race`` — static concurrency & shared-state analyzer.

PRs 3–4 made the reproduction genuinely concurrent: a thread-pooled
:class:`~repro.service.scheduler.CampaignScheduler` with locks, bounded
queues, and rate limiters, and a ``ProcessPoolExecutor``-backed parallel
``GridSearchCV``.  Both assert a *bit-identical-to-serial* determinism
contract — exactly the guarantee that silently dies the day someone
mutates shared state off-lock or ships one RNG to many workers.  This
package is the third static-analysis pass ("C-rules") that guards that
contract at lint time, before a race shows up as a one-in-a-thousand
nondeterministic campaign result:

* **C201 lock-order** — the lock-acquisition graph built across the call
  graph must be acyclic, and a non-reentrant lock must never be
  re-acquired while held (both are deadlocks waiting for traffic);
* **C202 unguarded-shared-write** — state captured by a thread worker
  (closures, ``self`` attributes) must only be written while a lock is
  held (thread-safe queues are exempt);
* **C203 check-then-act** — ``if k not in d: d[k] = ...`` (and the
  ``.get``/``is None`` spelling) on thread-shared dicts must happen
  under a lock or via an atomic primitive;
* **C204 process-capture** — callables and arguments crossing a
  ``ProcessPoolExecutor`` boundary must not capture locks, RNG
  ``Generator`` objects, open handles, or closures;
* **C205 blocking-under-lock** — no sleeps, joins, ``Future.result``,
  or file I/O while holding a lock (directly or through any resolvable
  callee);
* **C206 shared-rng** — one ``Generator`` object must never be reachable
  from multiple concurrent workers (the determinism-killer; derive
  per-task seeds instead).

Importable API::

    from repro.tools.race import race_paths
    result = race_paths(["src/repro"])
    assert result.exit_code == 0, result.violations

Command line::

    repro race [PATHS...] [--format text|json]
    python -m repro.tools.race

Suppressions share the lint engine's comment syntax — a justified
suppression states the invariant the analyzer cannot see::

    self._counters[name] = ...  # repro: disable=C203 -- callers hold self._lock

The analysis reuses the lint engine (files parsed once, same reporters
and exit codes) and the flow package's shared symbol/import/call-graph
indexes through the memoized :mod:`repro.tools.indexing` facade, so
``repro flow`` and ``repro race`` in one process index the project once.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.tools.race.concurrency import ConcurrencyIndex, build_concurrency
from repro.tools.race.rules import default_race_rules
from repro.tools.race.runner import run_race
from repro.tools.lint.engine import LintResult

__all__ = [
    "ConcurrencyIndex",
    "LintResult",
    "build_concurrency",
    "default_race_rules",
    "race_paths",
    "run_race",
]


def race_paths(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
    context_paths: Sequence | None = None,
) -> LintResult:
    """Analyze files/directories; see :func:`repro.tools.race.runner.run_race`."""
    return run_race(paths, rules=rules, root=root,
                    context_paths=context_paths)
