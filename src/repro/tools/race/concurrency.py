"""Concurrency model extraction for the C-rules.

This module turns the flow package's shared indexes into the structures
the race rules query: which values are locks, queues, executors, RNGs,
or open handles; which functions run on worker threads; what every
function acquires, writes, and calls *while holding which locks*.

The model is built per function scope (including nested ``def``\\ s — the
closure-worker pattern ``threading.Thread(target=worker)`` is the
service layer's bread and butter) by a single AST walk that tracks the
lexical stack of held locks through ``with`` statements.  Identity is
static: ``self._lock`` of a class is one :class:`LockId` regardless of
how many instances exist at runtime, which is the standard
approximation for lock-order analysis (two instances' locks can still
deadlock if two code paths order them differently).

Like the flow indexes, the model is deliberately *approximate* and errs
toward silence: a value whose kind cannot be traced to a known
constructor (``threading.Lock``, ``queue.Queue``,
``ProcessPoolExecutor``, ``np.random.default_rng``, ``open``, ...)
has no kind and triggers no rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.tools.flow.graph import FlowIndex, dotted_path

__all__ = [
    "Acquisition",
    "BlockingOp",
    "CheckThenAct",
    "ConcurrencyIndex",
    "FunctionFacts",
    "LockId",
    "LockedCall",
    "Mutation",
    "PoolSubmission",
    "RngUse",
    "build_concurrency",
]

#: Constructor final-name -> value kind.  Final-name matching is the
#: same approximation the lint rules use for base classes: distinctive
#: names resolve regardless of import alias, anything ambiguous stays
#: unclassified.
_CTOR_KINDS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Semaphore": "rlock",          # counting: re-acquire may legally succeed
    "BoundedSemaphore": "rlock",
    "Condition": "condition",
    "Queue": "queue",
    "LifoQueue": "queue",
    "PriorityQueue": "queue",
    "SimpleQueue": "queue",
    "deque": "queue",              # appends/pops are documented thread-safe
    "ThreadPoolExecutor": "thread_pool",
    "ProcessPoolExecutor": "process_pool",
    "default_rng": "rng",
    "RandomState": "rng",
}

#: Kinds that behave as locks in ``with`` statements.
_LOCK_KINDS = frozenset({"lock", "rlock", "condition"})

#: Kinds that must never cross a ``ProcessPoolExecutor`` boundary:
#: locks and conditions are unpicklable or meaningless in the child,
#: a shared ``Generator`` forks its state, handles and pools are
#: process-local resources.
_UNSAFE_PICKLE_KINDS = frozenset({
    "lock", "rlock", "condition", "queue", "rng", "file",
    "thread_pool", "process_pool",
})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "reverse", "rotate", "sort", "update", "write", "writelines",
})

#: Attribute-call names that block the calling thread.  ``join`` only
#: counts with zero positional args (``",".join(xs)`` is string join),
#: ``get``/``put`` only on queue-kind receivers, and ``wait`` only when
#: the receiver is a lock *other than* one currently held (waiting on a
#: condition you hold is the sanctioned protocol — it releases the lock).
_IO_ATTRS = frozenset({
    "read_bytes", "read_text", "save", "write_bytes", "write_text",
})


@dataclass(frozen=True)
class LockId:
    """Static identity of one lock: where it is bound, not which instance."""

    module: str
    owner: str  # class name, function qualname, or "" for module scope
    name: str

    def __str__(self) -> str:
        prefix = f"{self.owner}." if self.owner else ""
        return f"{self.module}:{prefix}{self.name}"


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition (``with`` item or bare ``.acquire()``)."""

    lock: LockId
    held: tuple  # LockIds already held at this point
    lineno: int
    col: int


@dataclass(frozen=True)
class LockedCall:
    """One call site, annotated with the locks held around it."""

    held: tuple
    target: tuple | None  # FlowIndex function key when resolvable
    lineno: int
    col: int
    repr: str


@dataclass(frozen=True)
class BlockingOp:
    """A directly blocking operation (sleep/join/result/file/queue I/O)."""

    held: tuple
    what: str
    lineno: int
    col: int


@dataclass(frozen=True)
class Mutation:
    """A write to state the function does not own (closure/self/global)."""

    root: str          # source text of the mutated container
    via_self: bool     # the root is a ``self`` attribute
    held: tuple
    lineno: int
    col: int


@dataclass(frozen=True)
class CheckThenAct:
    """A non-atomic ``check membership, then store`` on a dict."""

    root: str
    via_self: bool
    held: tuple
    lineno: int
    col: int


@dataclass(frozen=True)
class PoolSubmission:
    """A callable handed to a Thread/ThreadPool/ProcessPool boundary."""

    boundary: str      # "thread" | "process"
    func_repr: str
    func_form: str     # "lambda" | "closure" | "bound-method" | "name" | "other"
    func_target: tuple | None  # resolved FlowIndex key for plain names
    unsafe_args: tuple  # ((repr, kind), ...) arguments with unsafe kinds
    lineno: int
    col: int


@dataclass(frozen=True)
class RngUse:
    """A draw from an RNG object the function does not privately own."""

    root: str
    shared_via: str    # "closure" | "self-attr" | "module-global"
    held: tuple
    lineno: int
    col: int


@dataclass
class FunctionFacts:
    """Everything the C-rules need to know about one function scope."""

    module_name: str
    qualname: str
    class_name: str | None = None
    relpath: str = ""
    is_thread_target: bool = False
    lineno: int = 0
    acquisitions: list = field(default_factory=list)
    locked_calls: list = field(default_factory=list)
    blocking_ops: list = field(default_factory=list)
    mutations: list = field(default_factory=list)
    check_then_acts: list = field(default_factory=list)
    submissions: list = field(default_factory=list)
    rng_uses: list = field(default_factory=list)
    acquired: set = field(default_factory=set)  # every LockId taken here
    nested: dict = field(default_factory=dict)  # local def name -> FunctionFacts

    @property
    def key(self) -> tuple:
        return (self.module_name, self.qualname)


@dataclass
class ConcurrencyIndex:
    """Project-wide concurrency model shared by every C-rule."""

    index: FlowIndex
    facts: dict = field(default_factory=dict)           # key -> FunctionFacts
    facts_by_module: dict = field(default_factory=dict)  # dotted -> [facts]
    lock_kinds: dict = field(default_factory=dict)       # LockId -> kind
    lock_owner_classes: set = field(default_factory=set)  # (module, class)
    thread_target_keys: set = field(default_factory=set)  # resolved fn keys

    def is_thread_target(self, facts: FunctionFacts) -> bool:
        """Whether this scope runs on a worker thread."""
        return facts.is_thread_target or facts.key in self.thread_target_keys

    def reentrant(self, lock: LockId) -> bool:
        """Whether re-acquiring ``lock`` while held is legal."""
        return self.lock_kinds.get(lock) != "lock"

    def transitive_acquires(self) -> dict:
        """Fixpoint map: function key -> every LockId it may acquire."""
        acquires = {key: set(f.acquired) for key, f in self.facts.items()}
        edges = {
            key: {c.target for c in f.locked_calls if c.target is not None}
            for key, f in self.facts.items()
        }
        changed = True
        while changed:
            changed = False
            for key, targets in edges.items():
                for target in targets:
                    extra = acquires.get(target, ())
                    if not acquires[key].issuperset(extra):
                        acquires[key] |= extra
                        changed = True
        return acquires

    def blocking_summary(self) -> dict:
        """Fixpoint map: function key -> may this function block?"""
        blocks = {key: bool(f.blocking_ops) for key, f in self.facts.items()}
        edges = {
            key: {c.target for c in f.locked_calls if c.target is not None}
            for key, f in self.facts.items()
        }
        changed = True
        while changed:
            changed = False
            for key, targets in edges.items():
                if blocks[key]:
                    continue
                if any(blocks.get(target, False) for target in targets):
                    blocks[key] = True
                    changed = True
        return blocks


# ---------------------------------------------------------------------------
# Kind inference
# ---------------------------------------------------------------------------


def _ctor_kind(node: ast.expr) -> str | None:
    """Kind created by a constructor-call expression, if recognizable."""
    if not isinstance(node, ast.Call):
        return None
    path = dotted_path(node.func)
    if path is None:
        return None
    final = path[-1]
    if final == "open" and len(path) == 1:
        return "file"
    if final == "Generator":
        # np.random.Generator(...) only; bare ``Generator`` is typing.
        return "rng" if "random" in path[:-1] else None
    return _CTOR_KINDS.get(final)


class _Scope:
    """One lexical function (or module-body) scope with kind bindings."""

    def __init__(self, module, qualname, class_name, parent, model):
        self.module = module          # ModuleInfo
        self.qualname = qualname
        self.class_name = class_name
        self.parent = parent          # _Scope | None
        self.model = model            # _ModuleModel
        self.local_names: set = set()
        self.local_kinds: dict = {}
        self.local_locks: dict = {}

    # -- chained lookups -------------------------------------------------

    def is_local(self, name: str) -> bool:
        return name in self.local_names

    def kind_of_name(self, name: str) -> str | None:
        scope = self
        while scope is not None:
            if name in scope.local_kinds:
                return scope.local_kinds[name]
            if name in scope.local_names:
                return None  # shadowed by an unclassified local
            scope = scope.parent
        return self.model.module_kinds.get(name)

    def lock_of_name(self, name: str):
        scope = self
        while scope is not None:
            if name in scope.local_locks:
                return scope.local_locks[name]
            if name in scope.local_names:
                return None
            scope = scope.parent
        return self.model.module_locks.get(name)

    def enclosing_class(self) -> str | None:
        scope = self
        while scope is not None:
            if scope.class_name is not None:
                return scope.class_name
            scope = scope.parent
        return None

    def kind_of_expr(self, node: ast.expr) -> str | None:
        """Kind of an arbitrary expression, where statically known."""
        kind = _ctor_kind(node)
        if kind is not None:
            return kind
        if isinstance(node, ast.Name):
            return self.kind_of_name(node.id)
        if isinstance(node, ast.Attribute) and _is_self(node.value):
            cls = self.enclosing_class()
            if cls is not None:
                return self.model.attr_kinds.get((cls, node.attr))
        return None

    def lock_of_expr(self, node: ast.expr):
        """LockId of an expression, where statically known."""
        if isinstance(node, ast.Name):
            return self.lock_of_name(node.id)
        if isinstance(node, ast.Attribute) and _is_self(node.value):
            cls = self.enclosing_class()
            if cls is not None:
                return self.model.attr_locks.get((cls, node.attr))
        if _ctor_kind(node) in _LOCK_KINDS:
            # ``with threading.Lock():`` — an anonymous, per-use lock.
            return LockId(self.model.name, self.qualname,
                          f"<anon:{node.lineno}>")
        return None


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


class _ModuleModel:
    """Per-module kind maps: module globals and class instance attrs."""

    def __init__(self, module, con: ConcurrencyIndex):
        self.name = module.dotted_name
        self.module = module
        self.con = con
        self.module_kinds: dict = {}
        self.module_locks: dict = {}
        self.attr_kinds: dict = {}   # (class, attr) -> kind
        self.attr_locks: dict = {}   # (class, attr) -> LockId

    def collect(self) -> None:
        for node in self.module.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                self._classify(node.targets[0].id, node.value, owner="",
                               kinds=self.module_kinds,
                               locks=self.module_locks)
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)

    def _collect_class(self, cls: ast.ClassDef) -> None:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(item):
                if not (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1):
                    continue
                target = stmt.targets[0]
                if (isinstance(target, ast.Attribute)
                        and _is_self(target.value)):
                    self._classify(
                        target.attr, stmt.value, owner=cls.name,
                        kinds=self.attr_kinds, locks=self.attr_locks,
                        key=(cls.name, target.attr),
                    )

    def _classify(self, name, value, owner, kinds, locks, key=None) -> None:
        key = key if key is not None else name
        kind = _ctor_kind(value)
        if kind is None:
            return
        kinds[key] = kind
        if kind in _LOCK_KINDS:
            lock = LockId(self.name, owner, name)
            # ``threading.Condition(existing_lock)`` guards the *same*
            # underlying lock: alias the identity, keep the underlying
            # (possibly non-reentrant) kind.
            if (kind == "condition" and isinstance(value, ast.Call)
                    and value.args):
                aliased = self._module_level_lock(value.args[0])
                if aliased is not None:
                    locks[key] = aliased
                    return
                self.con.lock_kinds[lock] = "rlock"  # default internal RLock
            else:
                self.con.lock_kinds[lock] = \
                    "rlock" if kind == "condition" else kind
            locks[key] = lock
            if owner:
                self.con.lock_owner_classes.add((self.name, owner))

    def _module_level_lock(self, node: ast.expr):
        if isinstance(node, ast.Name):
            return self.module_locks.get(node.id)
        return None


# ---------------------------------------------------------------------------
# The fact-collecting walker
# ---------------------------------------------------------------------------


def _stored_names(body) -> set:
    """Every name bound in ``body``, not descending into nested defs."""
    names: set = set()
    for stmt in body:
        for node in _own_nodes(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                names.difference_update(node.names)
    return names


def _own_nodes(stmt) -> Iterator[ast.AST]:
    """Walk a statement without entering nested function/class bodies."""
    stack = [stmt]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)) and node is not stmt:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node is stmt:
            continue  # the def statement itself binds a name, nothing more
        stack.extend(ast.iter_child_nodes(node))


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every call in an expression, skipping deferred (lambda) bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Lambda, ast.FunctionDef,
                                ast.AsyncFunctionDef)):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def _chain_root(node: ast.expr):
    """Root of a subscript/attribute chain: ('name', n) or ('self', attr)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if isinstance(node, ast.Attribute) and _is_self(node.value):
            return ("self", node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        return ("name", node.id)
    return None


class _FunctionWalker:
    """Collect :class:`FunctionFacts` for one scope (and its nested defs)."""

    def __init__(self, scope: _Scope, facts: FunctionFacts,
                 con: ConcurrencyIndex, call_targets: dict):
        self.scope = scope
        self.facts = facts
        self.con = con
        self.call_targets = call_targets

    # -- scope preparation ----------------------------------------------

    def prepare(self, body, params=()) -> None:
        self.scope.local_names = _stored_names(body) | set(params)
        for stmt in body:
            for node in _own_nodes(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    self._bind_local(node.targets[0].id, node.value)
                elif isinstance(node, ast.withitem) \
                        and isinstance(node.optional_vars, ast.Name):
                    self._bind_local(node.optional_vars.id,
                                     node.context_expr)

    def _bind_local(self, name: str, value: ast.expr) -> None:
        kind = _ctor_kind(value)
        if kind is None:
            return
        self.scope.local_kinds[name] = kind
        if kind in _LOCK_KINDS:
            if kind == "condition" and isinstance(value, ast.Call) \
                    and value.args:
                aliased = self.scope.lock_of_expr(value.args[0])
                if aliased is not None:
                    self.scope.local_locks[name] = aliased
                    return
            lock = LockId(self.scope.model.name, self.scope.qualname, name)
            self.con.lock_kinds[lock] = "rlock" if kind == "condition" \
                else kind
            self.scope.local_locks[name] = lock

    # -- statement walk --------------------------------------------------

    def walk(self, body, held=()) -> None:
        recent_gets: dict = {}
        for stmt in body:
            self._walk_stmt(stmt, held, recent_gets)

    def _walk_stmt(self, stmt, held, recent_gets) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._nested_function(stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            return  # nested classes: out of scope for the model
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt, held)
            return

        # Compound statements: scan only their expression parts here, then
        # recurse into the bodies (scanning the whole node would record
        # every call in the body twice).
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, held)
            self._track_check_then_act(stmt, held, recent_gets)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, held)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, held)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.Try, *(
                (ast.TryStar,) if hasattr(ast, "TryStar") else ()))):
            self.walk(stmt.body, held)
            for handler in stmt.handlers:
                self.walk(handler.body, held)
            self.walk(stmt.orelse, held)
            self.walk(stmt.finalbody, held)
            return
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            self._scan_expr(stmt.subject, held)
            for case in stmt.cases:
                self.walk(case.body, held)
            return

        # Simple statements: scan everything (lambdas excluded).
        self._scan_expr(stmt, held)
        self._record_writes(stmt, held)
        self._track_check_then_act(stmt, held, recent_gets)

    def _scan_expr(self, node, held) -> None:
        for call in _calls_in(node):
            self._record_call(call, held)

    def _walk_with(self, stmt, held) -> None:
        new_held = list(held)
        for item in stmt.items:
            for node in _calls_in(item.context_expr):
                self._record_call(node, tuple(new_held))
            lock = self.scope.lock_of_expr(item.context_expr)
            if lock is not None:
                self.facts.acquisitions.append(Acquisition(
                    lock=lock, held=tuple(new_held),
                    lineno=stmt.lineno, col=stmt.col_offset,
                ))
                self.facts.acquired.add(lock)
                new_held.append(lock)
        self.walk(stmt.body, tuple(new_held))

    def _nested_function(self, node) -> None:
        child_scope = _Scope(
            self.scope.module,
            f"{self.scope.qualname}.<locals>.{node.name}",
            None, self.scope, self.scope.model,
        )
        child = FunctionFacts(
            module_name=self.scope.model.name,
            qualname=child_scope.qualname,
            class_name=self.scope.enclosing_class(),
            relpath=self.facts.relpath,
            lineno=node.lineno,
        )
        walker = _FunctionWalker(child_scope, child, self.con,
                                 self.call_targets)
        params = [a.arg for a in (*node.args.posonlyargs, *node.args.args,
                                  *node.args.kwonlyargs)]
        walker.prepare(node.body, params)
        walker.walk(node.body)
        self.facts.nested[node.name] = child
        self.con.facts[child.key] = child
        self.con.facts_by_module.setdefault(
            self.scope.model.name, []).append(child)

    # -- per-node fact recording ----------------------------------------

    def _record_call(self, node: ast.Call, held) -> None:
        self._record_blocking(node, held)
        self._record_submission(node, held)
        self._record_mutating_method(node, held)
        self._record_rng_draw(node, held)
        target = self.call_targets.get(id(node))
        self.facts.locked_calls.append(LockedCall(
            held=tuple(held), target=target,
            lineno=node.lineno, col=node.col_offset,
            repr=_safe_unparse(node.func),
        ))
        # Bare ``lock.acquire()`` — tracked as an acquisition without a
        # region (the release point is not statically known).
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "acquire":
            lock = self.scope.lock_of_expr(node.func.value)
            if lock is not None:
                self.facts.acquisitions.append(Acquisition(
                    lock=lock, held=tuple(held),
                    lineno=node.lineno, col=node.col_offset,
                ))
                self.facts.acquired.add(lock)

    def _record_blocking(self, node: ast.Call, held) -> None:
        what = self._blocking_kind(node, held)
        if what is not None:
            self.facts.blocking_ops.append(BlockingOp(
                held=tuple(held), what=what,
                lineno=node.lineno, col=node.col_offset,
            ))

    def _blocking_kind(self, node: ast.Call, held) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open" and not self.scope.is_local("open"):
                return "open()"
            binding = self.con.index.bindings.get(
                self.scope.model.name, {}).get(func.id)
            if binding is not None and binding.module == "time" \
                    and binding.symbol == "sleep":
                return "time.sleep()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr == "sleep":
            return f"{_safe_unparse(func)}()"
        if attr == "join" and not node.args:
            return f"{_safe_unparse(func)}()"
        if attr == "result" and len(node.args) <= 1:
            return f"{_safe_unparse(func)}()"
        if attr in _IO_ATTRS:
            return f"{_safe_unparse(func)}()"
        if attr in ("get", "put") \
                and self.scope.kind_of_expr(func.value) == "queue":
            return f"{_safe_unparse(func)}()"
        if attr == "wait":
            receiver = self.scope.lock_of_expr(func.value)
            # ``cv.wait()`` while *holding* cv releases it — that is the
            # sanctioned condition protocol, not a blocking hazard.
            # Waiting on a different condition keeps every held lock
            # pinned for the duration of the wait.
            if receiver is not None and held and receiver not in held:
                return f"{_safe_unparse(func)}()"
        return None

    def _record_submission(self, node: ast.Call, held) -> None:
        func = node.func
        boundary = None
        submitted = None
        args: list = []
        path = dotted_path(func)
        if path is not None and path[-1] == "Thread":
            boundary = "thread"
            for keyword in node.keywords:
                if keyword.arg == "target":
                    submitted = keyword.value
                elif keyword.arg == "args" and isinstance(
                        keyword.value, (ast.Tuple, ast.List)):
                    args = list(keyword.value.elts)
        elif isinstance(func, ast.Attribute) and func.attr in ("submit", "map"):
            receiver_kind = self.scope.kind_of_expr(func.value)
            if receiver_kind == "thread_pool":
                boundary = "thread"
            elif receiver_kind == "process_pool":
                boundary = "process"
            if boundary is not None and node.args:
                submitted = node.args[0]
                args = list(node.args[1:])
        elif _ctor_kind(node) == "process_pool":
            # ProcessPoolExecutor(initializer=..., initargs=(...)) ships
            # the initializer and its args to every child process.
            boundary = "process"
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    submitted = keyword.value
                elif keyword.arg == "initargs" and isinstance(
                        keyword.value, (ast.Tuple, ast.List)):
                    args = list(keyword.value.elts)
            if submitted is None and not args:
                return
        if boundary is None or submitted is None:
            return
        self.facts.submissions.append(PoolSubmission(
            boundary=boundary,
            func_repr=_safe_unparse(submitted),
            func_form=self._callable_form(submitted),
            func_target=self._callable_target(submitted),
            unsafe_args=tuple(
                (_safe_unparse(arg), kind)
                for arg in args
                if (kind := self.scope.kind_of_expr(arg)) is not None
                and kind in _UNSAFE_PICKLE_KINDS
            ),
            lineno=node.lineno, col=node.col_offset,
        ))

    def _callable_form(self, node: ast.expr) -> str:
        if isinstance(node, ast.Lambda):
            return "lambda"
        if isinstance(node, ast.Name):
            if node.id in self.facts.nested:
                return "closure"
            return "name"
        if isinstance(node, ast.Attribute) and _is_self(node.value):
            return "bound-method"
        return "other"

    def _callable_target(self, node: ast.expr) -> tuple | None:
        if isinstance(node, ast.Name):
            info, _ = self.con.index.resolve_function(
                self.scope.model.name, node.id)
            if info is not None:
                return info.key
        if isinstance(node, ast.Attribute) and _is_self(node.value):
            cls = self.scope.enclosing_class()
            if cls is not None:
                return (self.scope.model.name, f"{cls}.{node.attr}")
        return None

    def _record_mutating_method(self, node: ast.Call, held) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return
        self._record_shared_write(func.value, held,
                                  lineno=node.lineno, col=node.col_offset)

    def _record_writes(self, stmt, held) -> None:
        targets: list = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_shared_write(
                    target, held, lineno=stmt.lineno, col=stmt.col_offset,
                )
            elif isinstance(target, ast.Name) \
                    and isinstance(stmt, ast.AugAssign) \
                    and not self.scope.is_local(target.id):
                self.facts.mutations.append(Mutation(
                    root=target.id, via_self=False, held=tuple(held),
                    lineno=stmt.lineno, col=stmt.col_offset,
                ))

    def _record_shared_write(self, container: ast.expr, held,
                             lineno: int, col: int) -> None:
        root = _chain_root(container)
        if root is None:
            return
        kind, name = root
        if kind == "name":
            if self.scope.is_local(name):
                return
            root_kind = self.scope.kind_of_name(name)
            if root_kind == "queue" or root_kind in _LOCK_KINDS:
                return  # thread-safe by design
            self.facts.mutations.append(Mutation(
                root=_safe_unparse(container), via_self=False,
                held=tuple(held), lineno=lineno, col=col,
            ))
        else:
            attr_kind = self.scope.kind_of_expr(
                ast.Attribute(value=ast.Name(id="self", ctx=ast.Load()),
                              attr=name, ctx=ast.Load()))
            if attr_kind == "queue" or attr_kind in _LOCK_KINDS:
                return
            self.facts.mutations.append(Mutation(
                root=_safe_unparse(container), via_self=True,
                held=tuple(held), lineno=lineno, col=col,
            ))

    def _record_rng_draw(self, node: ast.Call, held) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        shared_via = None
        if isinstance(receiver, ast.Name):
            if self.scope.kind_of_name(receiver.id) != "rng":
                return
            if self.scope.is_local(receiver.id):
                return  # privately owned generator
            shared_via = "closure" if self.scope.parent is not None \
                else "module-global"
            if receiver.id in self.scope.model.module_kinds:
                shared_via = "module-global"
        elif isinstance(receiver, ast.Attribute) and _is_self(receiver.value):
            cls = self.scope.enclosing_class()
            if cls is None or self.scope.model.attr_kinds.get(
                    (cls, receiver.attr)) != "rng":
                return
            shared_via = "self-attr"
        if shared_via is None:
            return
        self.facts.rng_uses.append(RngUse(
            root=_safe_unparse(receiver), shared_via=shared_via,
            held=tuple(held), lineno=node.lineno, col=node.col_offset,
        ))

    # -- check-then-act tracking ----------------------------------------

    def _track_check_then_act(self, stmt, held, recent_gets) -> None:
        if isinstance(stmt, ast.Assign):
            is_get = (isinstance(stmt.value, ast.Call)
                      and isinstance(stmt.value.func, ast.Attribute)
                      and stmt.value.func.attr == "get")
            root = _chain_root(stmt.value.func.value) if is_get else None
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                if root is not None:
                    recent_gets[target.id] = (
                        root, _safe_unparse(stmt.value.func.value),
                    )
                else:
                    recent_gets.pop(target.id, None)  # rebound: stale
            return
        if not isinstance(stmt, ast.If):
            return
        container = self._checked_container(stmt.test, recent_gets)
        if container is None:
            return
        root, root_repr = container
        if self._stores_into(stmt.body, root_repr):
            self.facts.check_then_acts.append(CheckThenAct(
                root=root_repr, via_self=root[0] == "self",
                held=tuple(held), lineno=stmt.lineno, col=stmt.col_offset,
            ))

    def _checked_container(self, test: ast.expr, recent_gets):
        # Form 1: ``if key not in container:``
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], ast.NotIn):
            root = _chain_root(test.comparators[0])
            if root is not None and self._is_shared_root(root):
                return root, _safe_unparse(test.comparators[0])
        # Form 2: ``x = container.get(k)`` ... ``if x is None:`` / ``if not x:``
        checked = None
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], ast.Is) \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None \
                and isinstance(test.left, ast.Name):
            checked = test.left.id
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) \
                and isinstance(test.operand, ast.Name):
            checked = test.operand.id
        if checked is not None and checked in recent_gets:
            root, root_repr = recent_gets[checked]
            if self._is_shared_root(root):
                return root, root_repr
        return None

    def _is_shared_root(self, root) -> bool:
        kind, name = root
        if kind == "self":
            return True  # rule decides via lock ownership of the class
        return not self.scope.is_local(name)

    def _stores_into(self, body, root_repr: str) -> bool:
        for stmt in body:
            for node in _own_nodes(stmt):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    if isinstance(target, ast.Subscript) \
                            and _safe_unparse(target.value) == root_repr:
                        return True
        return False


def _safe_unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic nodes
        return "<expr>"


# ---------------------------------------------------------------------------
# Index construction
# ---------------------------------------------------------------------------


def _call_target_map(index: FlowIndex) -> dict:
    """Map ``id(call node)`` -> resolved in-project function key."""
    targets: dict = {}
    for sites in index.calls.values():
        for site in sites:
            if site.target is not None:
                targets[id(site.node)] = site.target
    return targets


def _analyze_function(model, con, call_targets, info) -> None:
    scope = _Scope(model.module, info.qualname, info.class_name, None, model)
    facts = FunctionFacts(
        module_name=model.name,
        qualname=info.qualname,
        class_name=info.class_name,
        relpath=model.module.relpath,
        lineno=info.node.lineno,
    )
    walker = _FunctionWalker(scope, facts, con, call_targets)
    params = [a.arg for a in (*info.node.args.posonlyargs,
                              *info.node.args.args,
                              *info.node.args.kwonlyargs)]
    walker.prepare(info.node.body, params)
    walker.walk(info.node.body)
    con.facts[facts.key] = facts
    con.facts_by_module.setdefault(model.name, []).append(facts)


def _resolve_thread_targets(con: ConcurrencyIndex) -> None:
    """Mark every function that is handed to a thread boundary."""
    for facts in list(con.facts.values()):
        for submission in facts.submissions:
            if submission.boundary != "thread":
                continue
            nested = facts.nested.get(submission.func_repr)
            if nested is not None:
                nested.is_thread_target = True
                continue
            if submission.func_target is not None:
                con.thread_target_keys.add(submission.func_target)
                target = con.facts.get(submission.func_target)
                if target is not None:
                    target.is_thread_target = True


def build_concurrency(index: FlowIndex) -> ConcurrencyIndex:
    """Build the project-wide concurrency model from the flow index."""
    con = ConcurrencyIndex(index=index)
    call_targets = _call_target_map(index)
    for module in index.project.modules:
        model = _ModuleModel(module, con)
        model.collect()
        for info in index.functions.values():
            if info.module_name == module.dotted_name:
                _analyze_function(model, con, call_targets, info)
    _resolve_thread_targets(con)
    return con
