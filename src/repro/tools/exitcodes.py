"""Shared exit-code taxonomy for the analyzer command lines.

All five static-analysis front ends (``repro lint``, ``repro flow``,
``repro race``, ``repro perf``, ``repro shape``) report outcomes with
the same four exit codes, so CI scripts and the dogfood gates can
interpret any of them without per-tool special cases:

* :data:`EXIT_CLEAN` (0) — the run completed and found nothing
  unsuppressed (or performed a maintenance action such as
  ``--update-spec``);
* :data:`EXIT_FINDINGS` (1) — the run completed and at least one
  unsuppressed violation remains;
* :data:`EXIT_USAGE` (2) — the invocation was unusable (unknown flag,
  nonexistent path, no Python files found);
* :data:`EXIT_CRASH` (3) — the analyzer itself failed.  A crash must
  never masquerade as "findings" or as "clean": CI treats 1 as a
  reviewable report and 0 as a green gate, and both readings would be
  wrong for a traceback.

:func:`run_guarded` is the one place the crash mapping happens; every
tool ``main`` routes its command function through it.
"""

from __future__ import annotations

import sys
import traceback

__all__ = [
    "EXIT_CLEAN",
    "EXIT_CRASH",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "run_guarded",
]

#: The run completed; nothing unsuppressed was found.
EXIT_CLEAN = 0
#: The run completed; at least one unsuppressed violation was reported.
EXIT_FINDINGS = 1
#: The invocation could not be executed (bad arguments, no input files).
EXIT_USAGE = 2
#: The analyzer itself crashed; the traceback goes to stderr.
EXIT_CRASH = 3


def run_guarded(command, args, out=None) -> int:
    """Run ``command(args, out=out)``, mapping analyzer crashes to 3.

    ``SystemExit`` (argparse usage errors already carry exit code 2) and
    ``KeyboardInterrupt`` propagate untouched; any other exception is an
    analyzer bug, reported with its traceback on stderr and mapped to
    :data:`EXIT_CRASH` so automation never mistakes it for a finding
    report or a clean pass.
    """
    try:
        return command(args, out=out)
    except (SystemExit, KeyboardInterrupt):
        raise
    except Exception:  # repro: disable=R004 -- crash boundary: the failure is fully reported (traceback on stderr) and encoded in the EXIT_CRASH return value
        traceback.print_exc(file=sys.stderr)
        print("internal error: the analyzer crashed (exit code "
              f"{EXIT_CRASH}); the traceback above is a bug report",
              file=sys.stderr)
        return EXIT_CRASH
