"""The cross-module rule families of ``repro flow``.

=====  ====================  ==================================================
Code   Name                  Invariant protected
=====  ====================  ==================================================
F101   layering              The dependency DAG in ``layers_spec``: no module
                             imports a layer above its own, and the
                             import-time module graph is acyclic.
F102   leakage-taint         Values derived from held-out test folds never
                             reach ``fit``/``fit_transform`` through any
                             (interprocedural) path.
F103   seed-flow             A caller holding a ``random_state``/``seed``
                             must thread it into every in-project callee
                             that accepts ``random_state`` (R001 across
                             call boundaries).
F104   dead-code             Module-level symbols must be reachable from
                             ``__all__``, the CLI, benchmarks, examples,
                             or tests.
F105   api-drift             The exported API surface (names, signatures,
                             estimator params) matches ``api_spec.json``;
                             intentional changes go through
                             ``repro flow --update-spec``.
=====  ====================  ==================================================

Unlike the single-file R-rules, every F-rule needs the shared
:class:`~repro.tools.flow.graph.FlowIndex`; the runner builds it once and
binds it onto each rule before the check pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.flow import apispec
from repro.tools.flow.graph import FlowIndex, import_bindings
from repro.tools.flow.layers_spec import LAYERS, layer_of
from repro.tools.flow.taint import analyze_project_taint
from repro.tools.lint.engine import ModuleInfo, Project, Rule, Violation

__all__ = [
    "ApiDriftRule",
    "DeadCodeRule",
    "FlowRule",
    "LayeringRule",
    "LeakageTaintRule",
    "SeedFlowRule",
    "default_flow_rules",
]

#: Decorators that do not publish a symbol anywhere (so a decorated def
#: can still be dead).  Any *other* decorator is assumed to register its
#: target somewhere (``@register_rule`` and friends), which roots it.
_INERT_DECORATORS = frozenset({
    "abstractmethod", "cached_property", "classmethod", "contextmanager",
    "dataclass", "lru_cache", "overload", "property", "staticmethod",
    "total_ordering", "wraps",
})


class FlowRule(Rule):
    """Base class for flow rules; the runner injects the shared index."""

    def __init__(self, index: FlowIndex | None = None):
        self.index = index

    def _module(self, module_name: str) -> ModuleInfo | None:
        return self.index.modules.get(module_name)

    def _violation(self, module_name: str, lineno: int, col: int,
                   message: str) -> Violation | None:
        module = self._module(module_name)
        if module is None:
            return None
        return Violation(
            code=self.code, message=message, path=module.relpath,
            line=lineno, col=col,
        )


# ---------------------------------------------------------------------------
# F101 — layering
# ---------------------------------------------------------------------------


class LayeringRule(FlowRule):
    """Enforce the dependency DAG declared in ``layers_spec``."""

    code = "F101"
    name = "layering"
    description = (
        "modules may import only their own or lower layers of the "
        "layers_spec DAG; the import-time module graph must be acyclic"
    )

    def __init__(self, index: FlowIndex | None = None, layers=None):
        super().__init__(index)
        self.layers = layers if layers is not None else LAYERS

    def _layer_of(self, module_name: str) -> int | None:
        if self.layers is LAYERS:
            return layer_of(module_name)
        best = None
        for position, layer in enumerate(self.layers):
            for package in layer.packages:
                if (module_name == package
                        or module_name.startswith(package + ".")):
                    if best is None or len(package) > best[0]:
                        best = (len(package), position)
        return None if best is None else best[1]

    def check_project(self, project: Project) -> Iterator[Violation]:
        """Report upward imports and import-time cycles."""
        yield from self._check_direction()
        yield from self._check_cycles()

    def _check_direction(self) -> Iterator[Violation]:
        for edge in self.index.import_edges:
            source_layer = self._layer_of(edge.source)
            target_layer = self._layer_of(edge.target)
            if source_layer is None or target_layer is None:
                continue
            if target_layer > source_layer:
                violation = self._violation(
                    edge.source, edge.lineno, edge.col,
                    f"upward import: {edge.source} (layer "
                    f"'{self.layers[source_layer].name}') imports "
                    f"{edge.target} (layer "
                    f"'{self.layers[target_layer].name}'); dependencies "
                    "must point down the DAG in "
                    "repro.tools.flow.layers_spec",
                )
                if violation is not None:
                    yield violation

    def _check_cycles(self) -> Iterator[Violation]:
        graph: dict[str, set] = {}
        anchors: dict[tuple, tuple] = {}
        for edge in self.index.import_edges:
            if edge.deferred or edge.source == edge.target:
                continue
            graph.setdefault(edge.source, set()).add(edge.target)
            graph.setdefault(edge.target, set())
            anchors.setdefault((edge.source, edge.target),
                               (edge.lineno, edge.col))
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            cycle = sorted(component)
            first = cycle[0]
            lineno, col = 1, 0
            for target in graph.get(first, ()):
                if target in component:
                    lineno, col = anchors.get((first, target), (1, 0))
                    break
            violation = self._violation(
                first, lineno, col,
                "import cycle at import time: "
                + " <-> ".join(cycle)
                + "; break it by moving one import into the function "
                "that needs it",
            )
            if violation is not None:
                yield violation


def _strongly_connected(graph: dict) -> list:
    """Tarjan's SCC algorithm, iterative, deterministic order."""
    index_counter = [0]
    stack: list[str] = []
    on_stack: set = set()
    indexes: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    result: list = []

    for start in sorted(graph):
        if start in indexes:
            continue
        work = [(start, iter(sorted(graph.get(start, ()))))]
        indexes[start] = lowlinks[start] = index_counter[0]
        index_counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indexes:
                    indexes[successor] = lowlinks[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(graph.get(successor, ()))))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)
    return result


# ---------------------------------------------------------------------------
# F102 — leakage taint
# ---------------------------------------------------------------------------


class LeakageTaintRule(FlowRule):
    """Held-out test data must never reach training (see ``taint``)."""

    code = "F102"
    name = "leakage-taint"
    description = (
        "values derived from test folds (train_test_split/KFold outputs, "
        "X_test/y_test) must not reach fit/fit_transform through any "
        "interprocedural path"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        """Report every place held-out data reaches a training sink."""
        for finding in analyze_project_taint(self.index):
            violation = self._violation(
                finding.module_name, finding.lineno, finding.col,
                finding.message,
            )
            if violation is not None:
                yield violation


# ---------------------------------------------------------------------------
# F103 — seed flow
# ---------------------------------------------------------------------------

_SEED_NAMES = frozenset({"random_state", "seed"})


class SeedFlowRule(FlowRule):
    """Callers holding a seed must thread it into stochastic callees."""

    code = "F103"
    name = "seed-flow"
    description = (
        "a function with a random_state/seed parameter must pass "
        "random_state to every in-project callee that accepts one"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        """Report call sites that drop the caller's seed."""
        for caller_key, sites in sorted(self.index.calls.items()):
            caller = self.index.functions.get(caller_key)
            if caller is None:  # module body: no caller seed to thread
                continue
            caller_params = set(caller.all_param_names(skip_self=False))
            held = sorted(_SEED_NAMES & caller_params)
            if not held:
                continue
            for site in sites:
                yield from self._check_site(caller, held, site)

    def _check_site(self, caller, held, site) -> Iterator[Violation]:
        if site.target is None:
            return
        callee = self.index.functions.get(site.target)
        if callee is None:
            return
        callee_params = callee.all_param_names()
        if "random_state" not in callee_params:
            return
        if self._binds_random_state(site.node, callee):
            return
        what = (f"class {site.target_class}" if site.target_class
                else f"{site.target[0]}:{callee.qualname}")
        violation = self._violation(
            caller.module_name, site.node.lineno, site.node.col_offset,
            f"stochastic callee {what} accepts random_state but this call "
            f"does not thread the caller's {'/'.join(held)}; an unthreaded "
            "seed breaks the experiment's determinism chain (extends R001 "
            "across calls)",
        )
        if violation is not None:
            yield violation

    @staticmethod
    def _binds_random_state(node: ast.Call, callee) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "random_state":
                return True
            if keyword.arg is None:  # **kwargs: not statically checkable
                return True
        positional = callee.param_names()
        if "random_state" in positional:
            return len(node.args) > positional.index("random_state")
        return False


# ---------------------------------------------------------------------------
# F104 — dead code
# ---------------------------------------------------------------------------


class DeadCodeRule(FlowRule):
    """Module-level symbols must be reachable from the public surface."""

    code = "F104"
    name = "dead-code"
    description = (
        "module-level functions/classes/constants unreachable from "
        "__all__, the CLI, benchmarks, examples, or tests are dead"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        """Report symbols the liveness worklist never reaches."""
        alive = self._roots()
        queue = list(alive)
        while queue:
            key = queue.pop()
            for referenced in self._symbol_refs(key):
                if referenced not in alive:
                    alive.add(referenced)
                    queue.append(referenced)
        for key in sorted(self.index.symbols):
            symbol = self.index.symbols[key]
            if symbol.kind == "import" or key in alive:
                continue
            if symbol.name.startswith("__"):
                continue
            violation = self._violation(
                symbol.module_name, symbol.lineno, symbol.col,
                f"dead code: {symbol.kind} {symbol.name!r} is unreachable "
                "from __all__, the CLI, benchmarks, examples, or tests; "
                "delete it or wire it in",
            )
            if violation is not None:
                yield violation

    # -- roots ----------------------------------------------------------

    def _roots(self) -> set:
        roots: set = set()
        for module_name, module in self.index.modules.items():
            for export in apispec._literal_all(module.tree) or ():
                resolved = self.index.resolve_symbol(module_name, export)
                if resolved is not None:
                    roots.add(resolved.key)
            roots.update(self._module_body_refs(module))
            roots.update(self._decorated_defs(module))
        for context in self.index.context_modules:
            roots.update(self._context_refs(context))
        return roots

    def _module_body_refs(self, module: ModuleInfo) -> Iterator[tuple]:
        """References executed at import time (outside any def)."""
        module_name = module.dotted_name
        for top in module.tree.body:
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                nodes: list = list(top.decorator_list)
                if isinstance(top, ast.ClassDef):
                    nodes.extend(top.bases)
            elif isinstance(top, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                # Only the value side: the assignment's own target Name
                # must not root the symbol it defines.
                nodes = [top.value] if top.value is not None else []
            else:
                nodes = [top]
            for node in nodes:
                yield from self._expr_refs(module_name, node)

    def _decorated_defs(self, module: ModuleInfo) -> Iterator[tuple]:
        """Defs with a side-effectful decorator register themselves."""
        for top in module.tree.body:
            if not isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                continue
            for decorator in top.decorator_list:
                target = decorator.func if isinstance(decorator, ast.Call) \
                    else decorator
                final = target.attr if isinstance(target, ast.Attribute) \
                    else getattr(target, "id", None)
                if final is not None and final not in _INERT_DECORATORS:
                    yield (module.dotted_name, top.name)
                    break

    def _context_refs(self, context: ModuleInfo) -> Iterator[tuple]:
        """Symbols a benchmark/example/test module reaches into."""
        bindings = import_bindings(context)
        for binding in bindings.values():
            if binding.symbol is None:
                continue
            target = binding.module
            if target in self.index.modules:
                resolved = self.index.resolve_symbol(target, binding.symbol)
                if resolved is not None:
                    yield resolved.key
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attribute_chain(node)
            if chain is None:
                continue
            base, attrs = chain
            binding = bindings.get(base)
            if binding is None or binding.symbol is not None:
                continue
            yield from self._chase_module_attrs(binding.module, attrs)

    def _chase_module_attrs(self, module_name: str, attrs: tuple) -> Iterator[tuple]:
        current = module_name
        for position, attr in enumerate(attrs):
            nested = f"{current}.{attr}"
            if nested in self.index.modules:
                current = nested
                continue
            if current in self.index.modules:
                resolved = self.index.resolve_symbol(current, attr)
                if resolved is not None:
                    yield resolved.key
            return

    # -- reference edges -------------------------------------------------

    def _symbol_refs(self, key: tuple) -> Iterator[tuple]:
        module_name, name = key
        module = self.index.modules.get(module_name)
        symbol = self.index.symbols.get(key)
        if module is None or symbol is None:
            return
        node = self._def_node(module, symbol)
        if node is None:
            return
        yield from self._expr_refs(module_name, node, skip_name=name)

    @staticmethod
    def _def_node(module: ModuleInfo, symbol) -> ast.AST | None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if node.name == symbol.name:
                    return node
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and target.id == symbol.name):
                        return node
        return None

    def _expr_refs(self, module_name: str, node: ast.AST,
                   skip_name: str | None = None) -> Iterator[tuple]:
        bindings = self.index.bindings.get(module_name, {})
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                if child.id == skip_name:
                    continue
                resolved = self.index.resolve_symbol(module_name, child.id)
                if resolved is not None:
                    yield resolved.key
            elif isinstance(child, ast.Attribute):
                chain = _attribute_chain(child)
                if chain is None:
                    continue
                base, attrs = chain
                binding = bindings.get(base)
                if binding is not None and binding.symbol is None:
                    yield from self._chase_module_attrs(binding.module, attrs)


def _attribute_chain(node: ast.Attribute) -> tuple | None:
    """``a.b.c`` -> ("a", ("b", "c")); None for computed bases."""
    attrs: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        return current.id, tuple(reversed(attrs))
    return None


# ---------------------------------------------------------------------------
# F105 — API drift
# ---------------------------------------------------------------------------


class ApiDriftRule(FlowRule):
    """The exported API surface must match the checked-in spec."""

    code = "F105"
    name = "api-drift"
    description = (
        "exported names, signatures, and estimator params must match "
        "api_spec.json; use 'repro flow --update-spec' for intentional "
        "changes"
    )

    def __init__(self, index: FlowIndex | None = None, spec_path=None):
        super().__init__(index)
        self.spec_path = spec_path or apispec.DEFAULT_SPEC_PATH

    def check_project(self, project: Project) -> Iterator[Violation]:
        """Diff the tree's API surface against the checked-in spec."""
        current = apispec.extract_surface(self.index)
        spec = apispec.load_spec(self.spec_path)
        if spec is None:
            if current["modules"]:
                anchor = min(
                    current["modules"],
                    key=lambda name: self.index.modules[name].relpath,
                )
                violation = self._violation(
                    anchor, 1, 0,
                    f"no API spec at {self.spec_path}; run "
                    "'repro flow --update-spec' to record the surface",
                )
                if violation is not None:
                    yield violation
            return
        for module_name, symbol, message in apispec.diff_surfaces(spec, current):
            if module_name is None or module_name not in self.index.modules:
                # The module vanished: anchor at the spec file itself.
                yield Violation(
                    code=self.code, message=message,
                    path=str(self.spec_path), line=1,
                )
                continue
            lineno, col = self._anchor(module_name, symbol)
            violation = self._violation(module_name, lineno, col, message)
            if violation is not None:
                yield violation

    def _anchor(self, module_name: str, symbol: str | None) -> tuple:
        if symbol is not None:
            local = self.index.symbols.get((module_name, symbol))
            if local is not None:
                return local.lineno, local.col
        module = self.index.modules[module_name]
        for node in module.tree.body:
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "__all__"):
                return node.lineno, node.col_offset
        return 1, 0


def default_flow_rules(index: FlowIndex | None = None, spec_path=None) -> list:
    """One instance of every flow rule, in code order."""
    return [
        LayeringRule(index),
        LeakageTaintRule(index),
        SeedFlowRule(index),
        DeadCodeRule(index),
        ApiDriftRule(index, spec_path=spec_path),
    ]
