"""``repro flow`` — project-wide data-flow & architecture analyzer.

Where ``repro lint`` checks files one at a time, ``repro flow`` parses the
whole project into shared indexes (symbol table, import graph, approximate
call graph — see :mod:`repro.tools.flow.graph`) and runs five cross-module
rule families over them:

* **F101 layering** — the dependency DAG in
  :mod:`repro.tools.flow.layers_spec` (no upward imports, no import-time
  cycles);
* **F102 leakage-taint** — values derived from held-out test folds never
  reach ``fit``/``fit_transform`` through any interprocedural path;
* **F103 seed-flow** — callers holding a ``random_state``/``seed`` thread
  it into every stochastic callee (R001 across call boundaries);
* **F104 dead-code** — module-level symbols are reachable from
  ``__all__``, the CLI, benchmarks, examples, or tests;
* **F105 api-drift** — the exported API surface matches the checked-in
  ``api_spec.json`` (update with ``repro flow --update-spec``).

Importable API::

    from repro.tools.flow import flow_paths
    result = flow_paths(["src/repro"])
    assert result.exit_code == 0, result.violations

Command line::

    repro flow [PATHS...] [--format text|json] [--update-spec]
    python -m repro.tools.flow

Suppressions share the lint engine's comment syntax::

    tricky()  # repro: disable=F102 -- calibration split, not evaluation
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.tools.flow.graph import FlowIndex, build_index
from repro.tools.flow.layers_spec import LAYERS, Layer, layer_of
from repro.tools.flow.rules import default_flow_rules
from repro.tools.flow.runner import build_flow_index, run_flow
from repro.tools.lint.engine import LintResult

__all__ = [
    "FlowIndex",
    "LAYERS",
    "Layer",
    "LintResult",
    "build_flow_index",
    "build_index",
    "default_flow_rules",
    "flow_paths",
    "layer_of",
    "run_flow",
]


def flow_paths(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
    spec_path: Path | None = None,
    context_paths: Sequence | None = None,
) -> LintResult:
    """Analyze files/directories; see :func:`repro.tools.flow.runner.run_flow`."""
    return run_flow(
        paths, rules=rules, root=root,
        spec_path=spec_path, context_paths=context_paths,
    )
